"""Sanitizer overhead benchmark: shadow logging vs. the bare backend.

The execution sanitizer (``validate="sanitize"``) logs every shadow
access and post/wait event and replays the log against the loop's
required true-dependence pairs after the run.  That is only usable as a
routine validation mode if the tax stays bounded, so this benchmark
times the same ≥50k-iteration sparse triangular solve (the Table-1
substrate, shared with ``bench-multiproc``) through the threaded and
vectorized backends bare and wrapped in :class:`SanitizingRunner`, and
asserts the sanitized wall clock stays within ``MAX_OVERHEAD`` (5x) of
the bare one at full problem size.

Every sanitized run must come back violation-free (the schedule is
correct; a report would be a bug in the backend or the detector) and
bitwise equal to the sequential oracle.  ``--small`` (the CI smoke
size) asserts correctness and cleanliness only — at tiny ``n`` constant
costs swamp the ratio, same policy as ``bench-multiproc``.

Run: ``python -m repro bench-sanitize [--small] [--json] [nx]``.  Every
run writes ``BENCH_sanitize.json`` (override with ``--out=``) with flat
``records`` rows plus an observed sanitized run's telemetry blob, whose
metrics carry the ``sanitize_events`` / ``sanitize_pairs_checked`` /
``sanitize_violations`` counters.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backends import ThreadedRunner, VectorizedRunner
from repro.bench.bench_multiproc import _build_loop
from repro.bench.reporting import format_table
from repro.sanitize import SanitizingRunner

__all__ = [
    "MAX_OVERHEAD",
    "SanitizeBenchResult",
    "run_bench_sanitize",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of BENCH_multiproc.
BENCH_JSON = "BENCH_sanitize.json"

#: Acceptance ceiling: sanitized wall clock per backend may cost at most
#: this multiple of the bare run at full problem size.
MAX_OVERHEAD = 5.0


@dataclass
class SanitizeBenchResult:
    """Bare-vs-sanitized timings on the sparse forward-substitution loop."""

    nx: int
    ny: int
    n: int
    nnz: int
    threads: int
    sequential_seconds: float
    #: Flat rows: ``{"backend", "sanitized", "wall_seconds",
    #: "warm_seconds", "ok", "events", "pairs_checked", "violations"}``
    #: (counter keys only on sanitized rows).
    rows: list[dict] = field(default_factory=list)
    telemetry: dict | None = None

    def _wall(self, backend: str, sanitized: bool) -> float:
        row = next(
            r
            for r in self.rows
            if r["backend"] == backend and r["sanitized"] is sanitized
        )
        return min(row["wall_seconds"], row.get("warm_seconds", float("inf")))

    def overhead(self, backend: str) -> float:
        """Sanitized/bare wall-clock ratio for one backend, taking each
        side's best of the cold and warm runs so a transient stall on
        one timing (noisy CI neighbors) cannot trip the ceiling."""
        return self._wall(backend, True) / self._wall(backend, False)

    def check(self) -> None:
        """Correctness and cleanliness always; the overhead ceiling only
        at full size (``n >= 50_000``)."""
        bad = [r for r in self.rows if not r["ok"]]
        if bad:
            raise AssertionError(
                f"{len(bad)} run(s) diverged from the sequential oracle: "
                + ", ".join(r["backend"] for r in bad)
            )
        noisy = [r for r in self.rows if r.get("violations")]
        if noisy:
            raise AssertionError(
                "sanitizer reported violations on a correct schedule: "
                + ", ".join(r["backend"] for r in noisy)
            )
        if self.n < 50_000:
            return
        for backend in ("threaded", "vectorized"):
            ratio = self.overhead(backend)
            if ratio > MAX_OVERHEAD:
                raise AssertionError(
                    f"sanitizer overhead on {backend} is {ratio:.2f}x "
                    f"(> {MAX_OVERHEAD:.0f}x) on n={self.n}"
                )

    def report(self) -> str:
        ms = 1e3
        body: list[tuple] = [
            (
                "sequential",
                "",
                self.sequential_seconds * ms,
                "",
                "",
                "",
                "oracle",
            )
        ]
        for r in self.rows:
            body.append(
                (
                    r["backend"],
                    "yes" if r["sanitized"] else "no",
                    r["wall_seconds"] * ms,
                    r["warm_seconds"] * ms,
                    r.get("events", ""),
                    r.get("pairs_checked", ""),
                    "ok" if r["ok"] else "DIVERGED",
                )
            )
        table = format_table(
            [
                "backend",
                "sanitized",
                "cold (ms)",
                "warm (ms)",
                "events",
                "pairs",
                "check",
            ],
            body,
            title=(
                f"sanitizer benchmark — trisolve(ILU0(five_point("
                f"{self.nx}x{self.ny}))), n={self.n}, nnz={self.nnz}"
            ),
        )
        tail = "".join(
            f"\noverhead [{b}]: {self.overhead(b):.2f}x "
            f"(ceiling {MAX_OVERHEAD:.0f}x)"
            for b in ("threaded", "vectorized")
        )
        return table + tail

    def as_dict(self) -> dict:
        return {
            "nx": self.nx,
            "ny": self.ny,
            "n": self.n,
            "nnz": self.nnz,
            "threads": self.threads,
            "sequential_seconds": self.sequential_seconds,
            "max_overhead": MAX_OVERHEAD,
            "overhead": {
                b: self.overhead(b) for b in ("threaded", "vectorized")
            },
            "rows": self.rows,
        }


def run_bench_sanitize(
    nx: int = 224, ny: int | None = None, *, threads: int = 4
) -> SanitizeBenchResult:
    """Time bare vs. sanitized runs of forward substitution over ILU(0)
    of a ``nx x ny`` five-point Laplacian (224x224 -> n=50176, the
    smallest default clearing the ≥50k acceptance bar)."""
    ny = nx if ny is None else ny
    loop, nnz = _build_loop(nx, ny)
    n = loop.n

    t0 = time.perf_counter()
    reference = loop.run_sequential()
    sequential_seconds = time.perf_counter() - t0

    result = SanitizeBenchResult(
        nx=nx,
        ny=ny,
        n=n,
        nnz=nnz,
        threads=threads,
        sequential_seconds=sequential_seconds,
    )

    def build(backend: str):
        if backend == "threaded":
            return ThreadedRunner(threads=threads)
        return VectorizedRunner()

    def timed(runner) -> tuple[float, object]:
        t0 = time.perf_counter()
        out = runner.run(loop)
        return time.perf_counter() - t0, out

    for backend in ("threaded", "vectorized"):
        cold, out = timed(build(backend))
        warm, out2 = timed(build(backend))
        result.rows.append(
            {
                "backend": backend,
                "sanitized": False,
                "wall_seconds": cold,
                "warm_seconds": warm,
                "ok": bool(
                    np.array_equal(out.y, reference)
                    and np.array_equal(out2.y, reference)
                ),
            }
        )

        cold, out = timed(SanitizingRunner(build(backend)))
        warm, out2 = timed(SanitizingRunner(build(backend)))
        report = out.extras["sanitize"]
        result.rows.append(
            {
                "backend": backend,
                "sanitized": True,
                "wall_seconds": cold,
                "warm_seconds": warm,
                "ok": bool(
                    np.array_equal(out.y, reference)
                    and np.array_equal(out2.y, reference)
                ),
                "events": report["events"],
                "pairs_checked": report["pairs_checked"],
                "violations": report["total_violations"]
                + out2.extras["sanitize"]["total_violations"],
            }
        )

    # One observed sanitized run for the artifact's telemetry blob —
    # outside the timed rows, since span recording is not free.  Its
    # metrics carry the sanitize_* counters.
    from repro.backends import make_runner
    from repro.passes.spec import PlanSpec

    observed = make_runner(
        spec=PlanSpec(
            backend="threaded",
            processors=threads,
            validate="sanitize",
            observe=True,
        )
    )
    out = observed.run(loop)
    telemetry = out.telemetry
    assert telemetry is not None
    result.telemetry = telemetry.as_dict()
    return result


def write_bench_json(
    result: SanitizeBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact: flat ``records`` rows (the
    stable cross-PR schema shared with the other ``BENCH_*`` artifacts),
    the ``detail`` dict, and the observed run's ``telemetry`` blob."""
    path = Path(path)
    records = [
        {
            "n": result.n,
            "backend": "sequential",
            "wall_seconds": result.sequential_seconds,
        }
    ]
    for row in result.rows:
        records.append({"n": result.n, **row})
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-sanitize",
        "records": records,
        "detail": result.as_dict(),
        "telemetry": result.telemetry,
    }
    return write_artifact(payload, path)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    nx = int(numeric[0]) if numeric else (48 if small else 224)
    result = run_bench_sanitize(nx)
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\ncheck: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
