"""Inspector-elision benchmark: runtime inspector vs. symbolic proof.

The paper's §2.3 observes that a *linear* subscript needs no runtime
inspector at all — the writer of every element is a closed form.  The
symbolic engine (:mod:`repro.analysis`) generalizes that observation into
proof-carrying verdicts, and ``analyze="symbolic"`` on the vectorized
backend consumes them to elide the inspector entirely.  This benchmark
measures what that elision buys on proven-affine workloads:

- **preprocessing wall clock** — ``build_inspector_record`` (the full
  runtime inspector + wavefront pipeline) vs. ``analyze_loop`` +
  ``build_symbolic_record`` (proof search + closed-form construction),
  each timed cold (no cache);
- **end-to-end wall clock** — a cold ``run()`` through the vectorized
  backend with and without ``analyze="symbolic"``;
- **the accounting** — telemetry counters proving the elided path did
  zero inspector iterations and recorded one elision per loop.

Shape assertions (never raw speed — CI machines are noisy): the elided
path's output is bitwise-equal to the full-inspector path's, its
``inspector_iterations`` counter is exactly zero, and every workload's
verdict is elidable.

Run: ``python -m repro bench-elision [--small] [--json] [n]``.  Every run
writes the machine-readable ``BENCH_elision.json`` (override with
``--out=``), schema-checked in CI by ``python -m repro.bench.schema``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis import analyze_loop, build_symbolic_record
from repro.backends import make_runner
from repro.backends.cache import InspectorCache, build_inspector_record
from repro.bench.reporting import format_table
from repro.ir.loop import IrregularLoop
from repro.passes.spec import PlanSpec
from repro.workloads.synthetic import chain_loop
from repro.workloads.testloop import make_test_loop

__all__ = [
    "ElisionCase",
    "ElisionBenchResult",
    "run_bench_elision",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of the other BENCH_*.
BENCH_JSON = "BENCH_elision.json"


@dataclass
class ElisionCase:
    """One workload's inspector-vs-symbolic comparison."""

    workload: str
    n: int
    verdict_kind: str
    verdict_distance: int | None
    inspect_pre_seconds: float
    symbolic_pre_seconds: float
    inspect_run_seconds: float
    symbolic_run_seconds: float
    inspector_iterations_full: int
    inspector_iterations_elided: int
    inspector_elisions: int
    outputs_equal: bool

    @property
    def pre_speedup(self) -> float:
        """Preprocessing speedup of the symbolic path (>1 is a win)."""
        if self.symbolic_pre_seconds <= 0.0:
            return float("inf")
        return self.inspect_pre_seconds / self.symbolic_pre_seconds

    def check(self) -> None:
        """Shape assertions: correctness and accounting, never speed."""
        if not self.outputs_equal:
            raise AssertionError(
                f"{self.workload}: elided output diverged from the "
                f"full-inspector output"
            )
        if self.inspector_iterations_elided != 0:
            raise AssertionError(
                f"{self.workload}: elided path still ran "
                f"{self.inspector_iterations_elided} inspector iterations"
            )
        if self.inspector_iterations_full != self.n:
            raise AssertionError(
                f"{self.workload}: full path inspected "
                f"{self.inspector_iterations_full} of {self.n} iterations"
            )
        if self.inspector_elisions < 1:
            raise AssertionError(
                f"{self.workload}: no inspector elision was recorded"
            )

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "n": self.n,
            "verdict_kind": self.verdict_kind,
            "verdict_distance": self.verdict_distance,
            "inspect_pre_seconds": self.inspect_pre_seconds,
            "symbolic_pre_seconds": self.symbolic_pre_seconds,
            "inspect_run_seconds": self.inspect_run_seconds,
            "symbolic_run_seconds": self.symbolic_run_seconds,
            "pre_speedup": self.pre_speedup,
            "inspector_iterations_full": self.inspector_iterations_full,
            "inspector_iterations_elided": self.inspector_iterations_elided,
            "inspector_elisions": self.inspector_elisions,
            "outputs_equal": self.outputs_equal,
        }


@dataclass
class ElisionBenchResult:
    """The full sweep, one :class:`ElisionCase` per proven workload."""

    n: int
    repeats: int
    cases: list[ElisionCase]

    def check(self) -> None:
        for case in self.cases:
            case.check()

    def report(self) -> str:
        ms = 1e3
        rows = [
            (
                c.workload,
                c.verdict_kind,
                c.inspect_pre_seconds * ms,
                c.symbolic_pre_seconds * ms,
                c.pre_speedup,
                c.inspector_iterations_elided,
            )
            for c in self.cases
        ]
        return format_table(
            [
                "workload",
                "verdict",
                "inspector pre (ms)",
                "symbolic pre (ms)",
                "speedup",
                "elided iters",
            ],
            rows,
            title=(
                f"inspector elision benchmark — n={self.n}, "
                f"best of {self.repeats}"
            ),
        )

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "repeats": self.repeats,
            "cases": [c.as_dict() for c in self.cases],
        }


def _best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall clock for ``fn()`` (cold each time)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _counters(result) -> dict:
    telemetry = result.telemetry
    assert telemetry is not None
    return telemetry.metrics.as_dict()["counters"]


def _bench_case(
    workload: str, loop: IrregularLoop, repeats: int
) -> ElisionCase:
    verdict = analyze_loop(loop)
    if not verdict.elidable:
        raise AssertionError(
            f"{workload}: expected an elidable verdict, got {verdict.kind}"
        )

    # Preprocessing only, both paths cold (no cache involved).
    inspect_pre = _best(lambda: build_inspector_record(loop), repeats)
    symbolic_pre = _best(
        lambda: build_symbolic_record(loop, analyze_loop(loop)), repeats
    )

    # End-to-end cold runs; fresh cache per trial so neither path hits.
    def run_full():
        runner = make_runner(
            spec=PlanSpec(backend="vectorized", observe=True),
            cache=InspectorCache(),
        )
        return runner.run(loop)

    def run_elided():
        runner = make_runner(
            spec=PlanSpec(
                backend="vectorized", observe=True, analyze="symbolic"
            ),
            cache=InspectorCache(),
        )
        return runner.run(loop)

    full = run_full()
    elided = run_elided()
    inspect_run = _best(run_full, repeats)
    symbolic_run = _best(run_elided, repeats)

    full_counters = _counters(full)
    elided_counters = _counters(elided)
    return ElisionCase(
        workload=workload,
        n=loop.n,
        verdict_kind=verdict.kind,
        verdict_distance=verdict.distance,
        inspect_pre_seconds=inspect_pre,
        symbolic_pre_seconds=symbolic_pre,
        inspect_run_seconds=inspect_run,
        symbolic_run_seconds=symbolic_run,
        inspector_iterations_full=int(
            full_counters.get("inspector_iterations", 0)
        ),
        inspector_iterations_elided=int(
            elided_counters.get("inspector_iterations", 0)
        ),
        inspector_elisions=int(
            elided_counters.get("inspector_elisions", 0)
        ),
        outputs_equal=bool(np.array_equal(full.y, elided.y)),
    )


def run_bench_elision(n: int = 100_000, repeats: int = 3) -> ElisionBenchResult:
    """Sweep the three proven-affine workload shapes.

    ``chain`` is the constant-distance recurrence (§2.3's linear-subscript
    case), ``figure4-dep`` the paper's test loop with true dependences
    (injective write, mixed distances), ``figure4-indep`` the odd-``L``
    variant the engine proves DOALL.
    """
    cases = [
        _bench_case("chain-d3", chain_loop(n, 3), repeats),
        _bench_case("figure4-dep", make_test_loop(n=n, m=2, l=8), repeats),
        _bench_case("figure4-indep", make_test_loop(n=n, m=2, l=7), repeats),
    ]
    return ElisionBenchResult(n=n, repeats=repeats, cases=cases)


def write_bench_json(
    result: ElisionBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact: flat ``records`` rows (two per
    workload — full-inspector and symbolic — the stable cross-PR schema
    shared with the other ``BENCH_*.json``) plus the ``detail`` dict."""
    path = Path(path)
    records = []
    for case in result.cases:
        records.append(
            {
                "n": case.n,
                "workload": case.workload,
                "backend": "vectorized-inspector",
                "wall_seconds": case.inspect_run_seconds,
                "preprocess_seconds": case.inspect_pre_seconds,
            }
        )
        records.append(
            {
                "n": case.n,
                "workload": case.workload,
                "backend": "vectorized-symbolic",
                "wall_seconds": case.symbolic_run_seconds,
                "preprocess_seconds": case.symbolic_pre_seconds,
            }
        )
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-elision",
        "records": records,
        "detail": result.as_dict(),
    }
    return write_artifact(payload, path)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    n = int(numeric[0]) if numeric else (5_000 if small else 100_000)
    result = run_bench_elision(n=n)
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\nshape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
