"""Benchmark harness: the paper's experiments and our ablations.

Every table and figure of the paper's evaluation section has a module here
that regenerates it (DESIGN.md §5):

- :mod:`repro.bench.figure6` — Figure 6 (test-loop efficiencies vs ``L``);
  run with ``python -m repro.bench.figure6``.
- :mod:`repro.bench.table1` — Table 1 (sparse triangular solve times);
  run with ``python -m repro.bench.table1``.
- :mod:`repro.bench.ablations` — chunk size, schedule policy, strip-mine
  block, linear-subscript variant, bus contention, processor sweep,
  coherence/locality, inspector amortization (A–G).
- :mod:`repro.bench.amortized_table` — "Table 2": per-solve cost over
  repeated solves (``python -m repro.bench.amortized_table``).
- :mod:`repro.bench.krylov_fraction` — the §3.2 Krylov motivation
  (``python -m repro.bench.krylov_fraction``).
- :mod:`repro.bench.bench_vectorized` — measured wall clock: sequential
  vs. threaded vs. vectorized backends plus the inspector-cache
  amortization curve (``python -m repro.bench.bench_vectorized``).
- :mod:`repro.bench.bench_multiproc` — the cross-backend wall-clock race
  on a ≥50k-iteration sparse triangular solve: threaded vs. vectorized
  vs. multiproc over worker counts and chunk sizes
  (``python -m repro.bench.bench_multiproc``).
- :mod:`repro.bench.model` — closed-form performance model validated
  against the simulator.

The pytest-benchmark entry points in ``benchmarks/`` call into these
modules; the modules themselves are also directly runnable for interactive
use.
"""

from repro.bench.amortized_table import AmortizedTableResult, run_amortized_table
from repro.bench.bench_multiproc import (
    MultiprocBenchResult,
    run_bench_multiproc,
)
from repro.bench.bench_vectorized import (
    VectorizedBenchResult,
    run_bench_vectorized,
)
from repro.bench.figure6 import Figure6Result, run_figure6
from repro.bench.harness import ExperimentRow, check_monotone_nondecreasing
from repro.bench.krylov_fraction import KrylovFractionResult, run_krylov_fraction
from repro.bench.model import (
    predict_chain_loop,
    predict_dependence_free,
    predict_figure4,
)
from repro.bench.table1 import Table1Result, run_table1

__all__ = [
    "run_figure6",
    "Figure6Result",
    "run_table1",
    "Table1Result",
    "run_amortized_table",
    "AmortizedTableResult",
    "run_krylov_fraction",
    "KrylovFractionResult",
    "run_bench_vectorized",
    "VectorizedBenchResult",
    "run_bench_multiproc",
    "MultiprocBenchResult",
    "predict_figure4",
    "predict_chain_loop",
    "predict_dependence_free",
    "ExperimentRow",
    "check_monotone_nondecreasing",
]
