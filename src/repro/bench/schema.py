"""Schema validation for the ``BENCH_*.json`` benchmark artifacts.

CI writes one artifact per tracked benchmark (``BENCH_vectorized.json``,
``BENCH_threaded.json``) so the perf trajectory is diffable across PRs.
An artifact nobody can parse is worse than none — downstream tooling
silently drops it and the trajectory gets a hole — so the CI job runs
``python -m repro.bench.schema BENCH_*.json`` and *fails* if a file is
missing or malformed.

The contract (:func:`validate_bench_payload`):

- ``benchmark`` — non-empty string naming the benchmark;
- ``records`` — non-empty list of flat rows, each with a ``backend``
  string and a non-negative numeric ``wall_seconds`` (the stable cross-PR
  schema; extra row keys are allowed);
- ``detail`` — a dict of benchmark-specific depth;
- ``telemetry`` — optional; when present it must pass
  :func:`~repro.obs.telemetry.validate_telemetry`, i.e. the same schema
  every backend's ``RunResult.telemetry`` carries;
- ``meta`` — optional provenance stamp (required on artifacts written
  through :func:`repro.bench.registry.write_artifact`): git SHA, ISO
  date, machine fingerprint.

The append-only ``BENCH_history.jsonl`` trajectory has its own row
contract (:func:`validate_history_row`): every row is one flat
measurement carrying the stable grouping keys (``benchmark``,
``backend``, ``n``), a ``wall_seconds`` number, and the same provenance
fields.  The CLI validates ``.jsonl`` files row by row, so the CI gate
covers both artifact kinds with one command.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.errors import TelemetryError
from repro.obs.telemetry import validate_telemetry

__all__ = [
    "validate_bench_payload",
    "validate_meta",
    "validate_history_row",
    "main",
]


def _fail(message: str) -> None:
    raise TelemetryError(f"invalid benchmark artifact: {message}")


def validate_bench_payload(payload: object) -> dict:
    """Check one parsed ``BENCH_*.json`` payload; return it or raise
    :class:`~repro.errors.TelemetryError` naming the first violation."""
    if not isinstance(payload, dict):
        _fail(f"expected a dict, got {type(payload).__name__}")
    name = payload.get("benchmark")
    if not isinstance(name, str) or not name:
        _fail("'benchmark' must be a non-empty string")

    records = payload.get("records")
    if not isinstance(records, list) or not records:
        _fail("'records' must be a non-empty list")
    for pos, row in enumerate(records):
        if not isinstance(row, dict):
            _fail(f"records[{pos}] is not a dict")
        backend = row.get("backend")
        if not isinstance(backend, str) or not backend:
            _fail(f"records[{pos}].backend must be a non-empty string")
        wall = row.get("wall_seconds")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            _fail(f"records[{pos}].wall_seconds must be a number")
        if wall < 0:
            _fail(f"records[{pos}].wall_seconds is negative ({wall})")

    if not isinstance(payload.get("detail"), dict):
        _fail("'detail' must be a dict")

    telemetry = payload.get("telemetry")
    if telemetry is not None:
        validate_telemetry(telemetry)

    meta = payload.get("meta")
    if meta is not None:
        validate_meta(meta, where="'meta'")
    return payload  # type: ignore[return-value]


def validate_meta(meta: object, where: str = "meta") -> dict:
    """Check one provenance stamp (the ``meta`` block / history-row
    provenance fields share this shape)."""
    if not isinstance(meta, dict):
        _fail(f"{where} must be a dict")
    sha = meta.get("git_sha")
    if not isinstance(sha, str) or not sha:
        _fail(f"{where}.git_sha must be a non-empty string")
    date = meta.get("date")
    if not isinstance(date, str) or not date:
        _fail(f"{where}.date must be a non-empty ISO-8601 string")
    machine = meta.get("machine")
    if not isinstance(machine, dict):
        _fail(f"{where}.machine must be a dict")
    cpus = machine.get("cpu_count")
    if not isinstance(cpus, int) or isinstance(cpus, bool) or cpus < 1:
        _fail(f"{where}.machine.cpu_count must be a positive int")
    if not isinstance(machine.get("python"), str):
        _fail(f"{where}.machine.python must be a string")
    return meta  # type: ignore[return-value]


def validate_history_row(row: object, pos: int | None = None) -> dict:
    """Check one ``BENCH_history.jsonl`` row; return it or raise
    :class:`~repro.errors.TelemetryError` naming the first violation."""
    where = f"history row {pos}" if pos is not None else "history row"
    if not isinstance(row, dict):
        _fail(f"{where} is not a dict")
    if not isinstance(row.get("benchmark"), str) or not row["benchmark"]:
        _fail(f"{where}: 'benchmark' must be a non-empty string")
    if not isinstance(row.get("backend"), str) or not row["backend"]:
        _fail(f"{where}: 'backend' must be a non-empty string")
    n = row.get("n")
    if n is not None and (not isinstance(n, int) or isinstance(n, bool)):
        _fail(f"{where}: 'n' must be an int or null")
    wall = row.get("wall_seconds")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool):
        _fail(f"{where}: 'wall_seconds' must be a number")
    if wall < 0:
        _fail(f"{where}: 'wall_seconds' is negative ({wall})")
    validate_meta(row, where=where)
    return row  # type: ignore[return-value]


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.schema ARTIFACT...`` — validate artifacts.

    Exit 0 only if every named file exists, parses as JSON, and passes
    :func:`validate_bench_payload`; exit 1 (with the reason) otherwise.
    """
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print(
            "usage: python -m repro.bench.schema "
            "BENCH_file.json|BENCH_history.jsonl ..."
        )
        return 2
    status = 0
    for name in args:
        path = Path(name)
        if not path.is_file():
            print(f"{name}: MISSING")
            status = 1
            continue
        if path.suffix == ".jsonl":
            try:
                rows = [
                    validate_history_row(json.loads(line), pos=pos + 1)
                    for pos, line in enumerate(
                        path.read_text(encoding="utf-8").splitlines()
                    )
                    if line.strip()
                ]
            except (json.JSONDecodeError, TelemetryError) as exc:
                print(f"{name}: INVALID — {exc}")
                status = 1
                continue
            if not rows:
                print(f"{name}: INVALID — history file has no rows")
                status = 1
                continue
            keys = {(r["benchmark"], r["backend"]) for r in rows}
            print(f"{name}: ok — {len(rows)} history row(s), {len(keys)} key(s)")
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            validate_bench_payload(payload)
        except (json.JSONDecodeError, TelemetryError) as exc:
            print(f"{name}: INVALID — {exc}")
            status = 1
            continue
        extra = " (+telemetry)" if payload.get("telemetry") else ""
        stamp = " (+meta)" if payload.get("meta") else ""
        print(
            f"{name}: ok — {payload['benchmark']}, "
            f"{len(payload['records'])} record(s){extra}{stamp}"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
