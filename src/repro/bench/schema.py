"""Schema validation for the ``BENCH_*.json`` benchmark artifacts.

CI writes one artifact per tracked benchmark (``BENCH_vectorized.json``,
``BENCH_threaded.json``) so the perf trajectory is diffable across PRs.
An artifact nobody can parse is worse than none — downstream tooling
silently drops it and the trajectory gets a hole — so the CI job runs
``python -m repro.bench.schema BENCH_*.json`` and *fails* if a file is
missing or malformed.

The contract (:func:`validate_bench_payload`):

- ``benchmark`` — non-empty string naming the benchmark;
- ``records`` — non-empty list of flat rows, each with a ``backend``
  string and a non-negative numeric ``wall_seconds`` (the stable cross-PR
  schema; extra row keys are allowed);
- ``detail`` — a dict of benchmark-specific depth;
- ``telemetry`` — optional; when present it must pass
  :func:`~repro.obs.telemetry.validate_telemetry`, i.e. the same schema
  every backend's ``RunResult.telemetry`` carries.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.errors import TelemetryError
from repro.obs.telemetry import validate_telemetry

__all__ = ["validate_bench_payload", "main"]


def _fail(message: str) -> None:
    raise TelemetryError(f"invalid benchmark artifact: {message}")


def validate_bench_payload(payload: object) -> dict:
    """Check one parsed ``BENCH_*.json`` payload; return it or raise
    :class:`~repro.errors.TelemetryError` naming the first violation."""
    if not isinstance(payload, dict):
        _fail(f"expected a dict, got {type(payload).__name__}")
    name = payload.get("benchmark")
    if not isinstance(name, str) or not name:
        _fail("'benchmark' must be a non-empty string")

    records = payload.get("records")
    if not isinstance(records, list) or not records:
        _fail("'records' must be a non-empty list")
    for pos, row in enumerate(records):
        if not isinstance(row, dict):
            _fail(f"records[{pos}] is not a dict")
        backend = row.get("backend")
        if not isinstance(backend, str) or not backend:
            _fail(f"records[{pos}].backend must be a non-empty string")
        wall = row.get("wall_seconds")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            _fail(f"records[{pos}].wall_seconds must be a number")
        if wall < 0:
            _fail(f"records[{pos}].wall_seconds is negative ({wall})")

    if not isinstance(payload.get("detail"), dict):
        _fail("'detail' must be a dict")

    telemetry = payload.get("telemetry")
    if telemetry is not None:
        validate_telemetry(telemetry)
    return payload  # type: ignore[return-value]


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.schema ARTIFACT...`` — validate artifacts.

    Exit 0 only if every named file exists, parses as JSON, and passes
    :func:`validate_bench_payload`; exit 1 (with the reason) otherwise.
    """
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.bench.schema BENCH_file.json ...")
        return 2
    status = 0
    for name in args:
        path = Path(name)
        if not path.is_file():
            print(f"{name}: MISSING")
            status = 1
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            validate_bench_payload(payload)
        except (json.JSONDecodeError, TelemetryError) as exc:
            print(f"{name}: INVALID — {exc}")
            status = 1
            continue
        extra = " (+telemetry)" if payload.get("telemetry") else ""
        print(
            f"{name}: ok — {payload['benchmark']}, "
            f"{len(payload['records'])} record(s){extra}"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
