"""Closed-form performance model of the preprocessed doacross.

The simulator executes the transformed loops event by event; this module
predicts the same makespans from closed forms — the kind of back-of-envelope
analysis §3.1 of the paper does in prose ("the efficiencies we see for those
L values reflect the overheads of...").  The model covers the two regimes a
cyclic chunk-1 executor exhibits:

- **throughput-bound**: no (binding) chain; the executor span is each
  processor's share of per-iteration work, and the total adds the
  inspector/postprocessor shares and three barriers.  Dependence-free loops
  (odd ``L``) land exactly here — the Figure-6 plateau.
- **chain-bound**: a uniform-distance recurrence paces execution.  After
  the binding wait only the *post-wake* work remains per chain link (flag
  check, the awaited term's consume, any later terms, the flag set), so
  ``chain span ≈ (n / d) · step``.  The executor span is the max of the
  two regimes.

Accuracy is a tested property: predictions must track the simulator within
a tight relative tolerance across the Figure-4 family and chain loops (see
``benchmarks/bench_model_validation.py`` for the predicted-vs-simulated
table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.machine.costs import CostModel, WorkProfile
from repro.workloads.testloop import dependence_distances

__all__ = [
    "ModelPrediction",
    "predict_dependence_free",
    "predict_figure4",
    "predict_chain_loop",
    "relative_error",
]


@dataclass(frozen=True)
class ModelPrediction:
    """Predicted cycle counts for one preprocessed-doacross run."""

    n: int
    processors: int
    inspector: int
    executor_throughput: int
    executor_chain: int
    postprocessor: int
    barriers: int
    sequential: int

    @property
    def executor(self) -> int:
        return max(self.executor_throughput, self.executor_chain)

    @property
    def total(self) -> int:
        return self.inspector + self.executor + self.postprocessor + self.barriers

    @property
    def efficiency(self) -> float:
        return self.sequential / (self.processors * self.total)

    @property
    def regime(self) -> str:
        return (
            "chain-bound"
            if self.executor_chain > self.executor_throughput
            else "throughput-bound"
        )


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _base_prediction(
    n: int,
    terms: int,
    processors: int,
    cm: CostModel,
    work: WorkProfile,
    chain_span: int,
) -> ModelPrediction:
    share = _ceil_div(n, processors)
    exec_iter = (
        cm.exec_iter_overhead
        + work.overhead
        + terms * (work.term + cm.dep_check)
        + cm.flag_set
    )
    return ModelPrediction(
        n=n,
        processors=processors,
        inspector=share * cm.pre_iter,
        executor_throughput=share * exec_iter,
        executor_chain=chain_span,
        postprocessor=share * cm.post_iter,
        barriers=3 * cm.barrier(processors),
        sequential=n * (work.overhead + terms * work.term),
    )


def predict_dependence_free(
    n: int,
    terms: int,
    processors: int,
    cost_model: CostModel | None = None,
    work: WorkProfile | None = None,
) -> ModelPrediction:
    """Prediction for a loop with no cross-iteration true dependencies
    (the Figure-6 odd-``L`` plateau)."""
    cm = cost_model if cost_model is not None else CostModel()
    return _base_prediction(
        n, terms, processors, cm, cm.effective_work(work), chain_span=0
    )


def predict_chain_loop(
    n: int,
    distance: int,
    processors: int,
    cost_model: CostModel | None = None,
    work: WorkProfile | None = None,
) -> ModelPrediction:
    """Prediction for ``y[i] += c·y[i−d]`` (one term per iteration,
    iterations ``< d`` term-free) under a cyclic chunk-1 schedule."""
    cm = cost_model if cost_model is not None else CostModel()
    w = cm.effective_work(work)
    step = cm.flag_check + w.term_consume + cm.flag_set
    # d independent chains of ~n/d links each, pipelined across processors
    # (needs P > d for full overlap; the simulator confirms the boundary).
    chain_span = _ceil_div(n, distance) * step if distance < n else 0
    # terms=1 slightly overstates sequential time (the first d iterations
    # are term-free); correct exactly.
    pred = _base_prediction(n, 1, processors, cm, w, chain_span)
    sequential = n * w.overhead + (n - distance) * w.term
    return ModelPrediction(
        n=pred.n,
        processors=pred.processors,
        inspector=pred.inspector,
        executor_throughput=pred.executor_throughput,
        executor_chain=pred.executor_chain,
        postprocessor=pred.postprocessor,
        barriers=pred.barriers,
        sequential=sequential,
    )


def predict_figure4(
    n: int,
    m: int,
    l: int,
    processors: int,
    cost_model: CostModel | None = None,
) -> ModelPrediction:
    """Prediction for the Figure-4/Figure-6 loop under cyclic chunk-1.

    For even ``L``, term ``j`` carries a true dependence of distance
    ``d_j = L/2 − j`` (when positive).  Each dependent term imposes a chain
    rate: iteration ``i`` cannot finish earlier than ``d_j`` links' worth
    of *post-wake tail* after iteration ``i − d_j`` — waking at term ``j``,
    executing every later term (satisfied waits included), and setting the
    flag.  The binding rate is the maximum of ``tail_j / d_j`` over the
    dependent terms; the chain span is ``n`` times that rate.
    """
    cm = cost_model if cost_model is not None else CostModel()
    w = cm.work
    distances = dependence_distances(m, l)
    if not distances:
        return predict_dependence_free(n, m, processors, cm)
    half = l // 2

    def is_true_dep(j: int) -> bool:
        return 1 <= half - j

    rate = 0.0
    for j in range(1, m + 1):
        if not is_true_dep(j):
            continue
        d_j = half - j
        tail = cm.flag_check + w.term_consume + cm.flag_set
        for later in range(j + 1, m + 1):
            tail += cm.dep_check + w.term
            if is_true_dep(later):
                tail += cm.flag_check  # satisfied wait still checks once
        rate = max(rate, tail / d_j)
    chain_span = int(n * rate)
    return _base_prediction(n, m, processors, cm, w, chain_span)


def relative_error(prediction: ModelPrediction, result: RunResult) -> float:
    """|predicted − simulated| / simulated, on total makespan."""
    if result.total_cycles == 0:
        return 0.0 if prediction.total == 0 else float("inf")
    return abs(prediction.total - result.total_cycles) / result.total_cycles
