"""Multiprocessing-backend benchmark: the cross-backend wall-clock race.

The multiproc backend is the repo's answer to "what does the paper's
busy-wait protocol cost on real OS processes?" — so its benchmark is a
*race*: run the same ≥50k-iteration sparse triangular solve (the Table-1
substrate: ILU(0) of a five-point Laplacian, forward substitution)
through sequential, threaded, vectorized, and multiproc at a sweep of
worker counts and chunk sizes, and report wall clock side by side.

Every cell is checked bitwise against the sequential oracle.  The speed
assertion — multiproc beats threaded at 4 workers — is only made at full
problem size (``n >= 50_000``), where the threaded backend's per-element
``Event`` allocation and GIL thrash dominate; ``--small`` (the CI smoke
size) asserts correctness only, since at tiny ``n`` the worker-pool
spin-up can exceed the whole solve.

Multiproc rows carry both the *cold* wall (first run: pool spin-up,
shared-memory session creation, inspector) and the *warm* wall (session
and classification caches hot — the amortized §3.1 regime); the recorded
``wall_seconds`` is the cold one, so the speed claim is conservative.

Run: ``python -m repro bench-multiproc [--small] [--json] [nx]``.  Every
run writes the machine-readable ``BENCH_multiproc.json`` (override with
``--out=``) carrying an observed multiproc run's full telemetry blob,
schema-checked in CI by ``python -m repro.bench.schema``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backends import MultiprocRunner, ThreadedRunner, VectorizedRunner
from repro.bench.reporting import format_table
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop

__all__ = [
    "MultiprocBenchResult",
    "run_bench_multiproc",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of BENCH_threaded.
BENCH_JSON = "BENCH_multiproc.json"

#: Chunk sizes swept per worker count, as divisors of ``n / workers``:
#: chunk = n // (workers * f) — from fine-grained (more pipelining,
#: more cross-chunk flags) to one block per worker (fewest waits).
_CHUNK_FACTORS = (16, 4, 1)


@dataclass
class MultiprocBenchResult:
    """One cross-backend race on the sparse forward-substitution loop."""

    nx: int
    ny: int
    n: int
    nnz: int
    threads: int
    sequential_seconds: float
    #: Flat rows: ``{"backend", "wall_seconds", "ok", ...}`` — multiproc
    #: rows add ``workers``, ``chunk``, and ``warm_seconds``.
    rows: list[dict] = field(default_factory=list)
    telemetry: dict | None = None

    @property
    def threaded_seconds(self) -> float:
        return next(
            r["wall_seconds"] for r in self.rows if r["backend"] == "threaded"
        )

    def multiproc_best(self, workers: int | None = None) -> dict | None:
        """Fastest multiproc row (cold wall), optionally at one worker
        count; ``None`` if no such row was measured."""
        rows = [
            r
            for r in self.rows
            if r["backend"] == "multiproc"
            and (workers is None or r["workers"] == workers)
        ]
        return min(rows, key=lambda r: r["wall_seconds"]) if rows else None

    @property
    def speedup_vs_threaded(self) -> float:
        """Cold-wall speedup of the best multiproc config over threaded."""
        best = self.multiproc_best()
        return self.threaded_seconds / best["wall_seconds"] if best else 0.0

    def check(self) -> None:
        """Correctness always; the speed claim only at full size."""
        bad = [r for r in self.rows if not r["ok"]]
        if bad:
            raise AssertionError(
                f"{len(bad)} run(s) diverged from the sequential oracle: "
                + ", ".join(r["backend"] for r in bad)
            )
        best4 = self.multiproc_best(workers=4)
        if self.n >= 50_000 and best4 is not None:
            if best4["wall_seconds"] >= self.threaded_seconds:
                raise AssertionError(
                    f"multiproc at 4 workers ({best4['wall_seconds']:.4f}s "
                    f"cold, chunk={best4['chunk']}) did not beat threaded "
                    f"({self.threaded_seconds:.4f}s) on n={self.n}"
                )

    def report(self) -> str:
        ms = 1e3
        body: list[tuple] = [
            ("sequential", "", "", self.sequential_seconds * ms, "", "oracle")
        ]
        for r in self.rows:
            body.append(
                (
                    r["backend"],
                    r.get("workers", ""),
                    r.get("chunk", ""),
                    r["wall_seconds"] * ms,
                    r["warm_seconds"] * ms if "warm_seconds" in r else "",
                    "ok" if r["ok"] else "DIVERGED",
                )
            )
        table = format_table(
            ["backend", "workers", "chunk", "cold (ms)", "warm (ms)", "check"],
            body,
            title=(
                f"multiproc benchmark — trisolve(ILU0(five_point("
                f"{self.nx}x{self.ny}))), n={self.n}, nnz={self.nnz}"
            ),
        )
        best = self.multiproc_best()
        tail = (
            f"\nbest multiproc: {best['workers']} workers, chunk="
            f"{best['chunk']} — {self.speedup_vs_threaded:.2f}x threaded"
            if best
            else ""
        )
        return table + tail

    def as_dict(self) -> dict:
        return {
            "nx": self.nx,
            "ny": self.ny,
            "n": self.n,
            "nnz": self.nnz,
            "threads": self.threads,
            "sequential_seconds": self.sequential_seconds,
            "speedup_vs_threaded": self.speedup_vs_threaded,
            "rows": self.rows,
        }


def _build_loop(nx: int, ny: int):
    A = five_point(nx, ny)
    L, _upper = ilu0(A)
    rhs = np.arange(1.0, A.n_rows + 1) / A.n_rows
    loop = lower_solve_loop(L, rhs, name=f"trisolve-{nx}x{ny}")
    return loop, L.nnz


def run_bench_multiproc(
    nx: int = 224,
    ny: int | None = None,
    *,
    threads: int = 4,
    worker_counts: tuple[int, ...] = (2, 4),
) -> MultiprocBenchResult:
    """Race the backends on forward substitution over ILU(0) of a
    ``nx x ny`` five-point Laplacian (224x224 -> n=50176, the smallest
    default clearing the ≥50k acceptance bar)."""
    ny = nx if ny is None else ny
    loop, nnz = _build_loop(nx, ny)
    n = loop.n

    t0 = time.perf_counter()
    reference = loop.run_sequential()
    sequential_seconds = time.perf_counter() - t0

    result = MultiprocBenchResult(
        nx=nx,
        ny=ny,
        n=n,
        nnz=nnz,
        threads=threads,
        sequential_seconds=sequential_seconds,
    )

    t0 = time.perf_counter()
    out = ThreadedRunner(threads=threads).run(loop)
    wall = time.perf_counter() - t0
    result.rows.append(
        {
            "backend": "threaded",
            "workers": threads,
            "wall_seconds": wall,
            "ok": bool(np.array_equal(out.y, reference)),
        }
    )

    t0 = time.perf_counter()
    out = VectorizedRunner().run(loop)
    wall = time.perf_counter() - t0
    result.rows.append(
        {
            "backend": "vectorized",
            "wall_seconds": wall,
            "ok": bool(np.array_equal(out.y, reference)),
        }
    )

    for workers in worker_counts:
        runner = MultiprocRunner(workers=workers)
        try:
            for factor in _CHUNK_FACTORS:
                chunk = max(1, n // (workers * factor))
                t0 = time.perf_counter()
                out = runner.run(loop, chunk=chunk)
                cold = time.perf_counter() - t0
                ok = bool(np.array_equal(out.y, reference))
                t0 = time.perf_counter()
                out = runner.run(loop, chunk=chunk)
                warm = time.perf_counter() - t0
                ok = ok and bool(np.array_equal(out.y, reference))
                result.rows.append(
                    {
                        "backend": "multiproc",
                        "workers": workers,
                        "chunk": chunk,
                        "wall_seconds": cold,
                        "warm_seconds": warm,
                        "ok": ok,
                    }
                )
        finally:
            runner.close()

    # One observed run for the artifact's telemetry blob (per-worker
    # compute/wait lanes, flag counters) — outside the timed race, since
    # span recording is not free.
    from repro.backends import make_runner
    from repro.passes.spec import PlanSpec

    observed = make_runner(
        spec=PlanSpec(
            backend="multiproc",
            processors=worker_counts[-1],
            observe=True,
        )
    )
    try:
        out = observed.run(loop)
        telemetry = out.telemetry
        assert telemetry is not None
        result.telemetry = telemetry.as_dict()
    finally:
        observed.inner.close()
    return result


def write_bench_json(
    result: MultiprocBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact: flat ``records`` rows (the
    stable cross-PR schema shared with the other ``BENCH_*`` artifacts),
    the ``detail`` dict, and an observed run's ``telemetry`` blob."""
    path = Path(path)
    records = [
        {
            "n": result.n,
            "backend": "sequential",
            "wall_seconds": result.sequential_seconds,
        }
    ]
    for row in result.rows:
        record = {"n": result.n, **row}
        records.append(record)
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-multiproc",
        "records": records,
        "detail": result.as_dict(),
        "telemetry": result.telemetry,
    }
    return write_artifact(payload, path)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    nx = int(numeric[0]) if numeric else (48 if small else 224)
    worker_counts = (2,) if small else (2, 4)
    result = run_bench_multiproc(nx, worker_counts=worker_counts)
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\ncheck: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
