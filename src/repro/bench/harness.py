"""Shared experiment-harness utilities.

The experiment modules produce lists of :class:`ExperimentRow` records (one
measured configuration each) and validate them with the shape checks below —
the acceptance criteria of DESIGN.md §2 expressed as code, so the benchmark
suite *fails* if the reproduction stops reproducing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.results import RunResult
from repro.core.serialize import result_to_dict

__all__ = [
    "ExperimentRow",
    "check_monotone_nondecreasing",
    "check_within",
    "geometric_mean",
    "rows_to_json",
    "parse_json_flag",
]


@dataclass
class ExperimentRow:
    """One measured configuration of an experiment."""

    label: str
    params: dict = field(default_factory=dict)
    result: RunResult | None = None
    metrics: dict = field(default_factory=dict)

    def metric(self, name: str) -> float:
        if name in self.metrics:
            return self.metrics[name]
        if self.result is not None and hasattr(self.result, name):
            return getattr(self.result, name)
        raise KeyError(f"row {self.label!r} has no metric {name!r}")


def check_monotone_nondecreasing(
    values: Sequence[float], tolerance: float = 0.0, label: str = "series"
) -> None:
    """Assert a series never drops by more than ``tolerance`` (absolute).

    Used for the Figure-6 even-``L`` efficiencies ("increase monotonically"
    in the paper's words; small plateau ties allowed).
    """
    for i in range(1, len(values)):
        if values[i] < values[i - 1] - tolerance:
            raise AssertionError(
                f"{label} not monotone non-decreasing at position {i}: "
                f"{values[i - 1]:.4f} -> {values[i]:.4f} "
                f"(tolerance {tolerance})"
            )


def check_within(
    value: float, lo: float, hi: float, label: str = "value"
) -> None:
    """Assert a scalar falls inside an acceptance band."""
    if not lo <= value <= hi:
        raise AssertionError(
            f"{label} = {value:.4f} outside acceptance band "
            f"[{lo:.4f}, {hi:.4f}]"
        )


def rows_to_json(rows: Sequence[ExperimentRow], indent: int = 2) -> str:
    """Serialize experiment rows as JSON: label, params, metrics, and the
    flattened run record where one is attached."""
    records = []
    for row in rows:
        record = {
            "label": row.label,
            "params": {
                k: v
                for k, v in row.params.items()
                if isinstance(v, (int, float, str, bool))
            },
            "metrics": {
                k: v
                for k, v in row.metrics.items()
                if isinstance(v, (int, float, str, bool))
            },
        }
        if row.result is not None:
            record["run"] = result_to_dict(row.result)
        records.append(record)
    return json.dumps(records, indent=indent, sort_keys=True)


def parse_json_flag(args: list[str]) -> tuple[list[str], str | None]:
    """Extract ``--json PATH`` from a CLI argument list.

    Returns ``(remaining_args, path_or_None)``; raises ``ValueError`` when
    the flag has no path."""
    if "--json" not in args:
        return list(args), None
    i = args.index("--json")
    if i + 1 >= len(args):
        raise ValueError("--json requires a file path")
    remaining = args[:i] + args[i + 2 :]
    return remaining, args[i + 1]


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
