"""Extension experiment: the Krylov motivation, quantified per problem.

Section 3.2's framing sentence — triangular solves "account for a large
fraction of the sequential execution time of linear solvers that use
Krylov methods" — plus the payoff the paper is implicitly after: if the
solves parallelize, the *whole solver* speeds up.  For each appendix
problem this experiment runs the appropriate ILU(0)-preconditioned Krylov
solver (CG for the SPD stencils, restarted GMRES for the nonsymmetric
SPE block operators) twice:

- with sequential triangular solves, measuring the preconditioner's
  fraction of total solver cycles;
- with the solves executed as doconsider-reordered preprocessed doacross
  loops on ``P`` simulated processors, measuring the solve and
  whole-solver speedups (identical numerics, asserted).

Run: ``python -m repro.bench.krylov_fraction [--small]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import ExperimentRow
from repro.bench.reporting import format_table
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.machine.costs import CostModel
from repro.sparse.krylov import IluPreconditioner, cg, gmres
from repro.sparse.spe import paper_problems

__all__ = ["KrylovFractionResult", "run_krylov_fraction", "main"]

#: Which solver applies to which problem (the SPE block operators are
#: nonsymmetric; the point stencils are SPD).
SOLVER_FOR = {
    "SPE2": "gmres",
    "SPE5": "gmres",
    "5-PT": "cg",
    "7-PT": "cg",
    "9-PT": "cg",
}


@dataclass
class KrylovFractionResult:
    """Per-problem Krylov measurements."""

    processors: int
    small: bool
    rows: list[ExperimentRow] = field(default_factory=list)

    def check_shape(self) -> None:
        """The paper's claim and its payoff, as assertions: solves dominate
        sequential solver time (fraction > 0.35 for every problem) and
        parallelizing them speeds up the whole solver (> 1.2× at full
        sizes)."""
        for r in self.rows:
            if r.metrics["precond_fraction_seq"] <= 0.35:
                raise AssertionError(
                    f"{r.label}: preconditioner fraction "
                    f"{r.metrics['precond_fraction_seq']:.2f} not 'large'"
                )
            floor = 1.0 if self.small else 1.2
            if r.metrics["solver_speedup"] < floor:
                raise AssertionError(
                    f"{r.label}: whole-solver speedup "
                    f"{r.metrics['solver_speedup']:.2f} below {floor}"
                )

    def report(self) -> str:
        return format_table(
            [
                "problem",
                "solver",
                "iters",
                "precond frac (seq)",
                "solve speedup",
                "solver speedup",
                "precond frac (par)",
            ],
            [
                (
                    r.label,
                    r.params["solver"],
                    r.params["iterations"],
                    r.metrics["precond_fraction_seq"],
                    r.metrics["solve_speedup"],
                    r.metrics["solver_speedup"],
                    r.metrics["precond_fraction_par"],
                )
                for r in self.rows
            ],
            title=(
                f"Krylov motivation — ILU(0)-preconditioned solvers, "
                f"triangular solves sequential vs parallel doacross "
                f"(P={self.processors}"
                f"{', reduced grids' if self.small else ''})"
            ),
        )


def _solve(solver: str, A, b, preconditioner, tol: float):
    if solver == "cg":
        return cg(A, b, preconditioner=preconditioner, tol=tol)
    return gmres(A, b, preconditioner=preconditioner, tol=tol)


def run_krylov_fraction(
    processors: int = 16,
    small: bool = False,
    tol: float = 1e-8,
    cost_model: CostModel | None = None,
) -> KrylovFractionResult:
    """Run the experiment over the five appendix problems."""
    cm = cost_model if cost_model is not None else CostModel()
    runner = Doconsider(
        doacross=PreprocessedDoacross(processors=processors, cost_model=cm)
    )
    out = KrylovFractionResult(processors=processors, small=small)

    for name, A in paper_problems(small=small).items():
        solver = SOLVER_FOR[name]
        rng = np.random.default_rng(13)
        b = rng.normal(size=A.n_rows)

        seq_pc = IluPreconditioner(A, cost_model=cm)
        x_seq, rep_seq = _solve(solver, A, b, seq_pc, tol)
        if not rep_seq.converged:
            raise AssertionError(f"{name}: sequential-{solver} diverged")

        par_pc = IluPreconditioner(A, cost_model=cm, runner=runner)
        x_par, rep_par = _solve(solver, A, b, par_pc, tol)
        if not np.allclose(x_seq, x_par, rtol=1e-9, atol=1e-12):
            raise AssertionError(
                f"{name}: parallel preconditioning changed the solution"
            )
        if rep_seq.iterations != rep_par.iterations:
            raise AssertionError(
                f"{name}: iteration counts diverged "
                f"({rep_seq.iterations} vs {rep_par.iterations})"
            )

        out.rows.append(
            ExperimentRow(
                label=name,
                params={
                    "solver": solver,
                    "n": A.n_rows,
                    "iterations": rep_seq.iterations,
                },
                metrics={
                    "precond_fraction_seq": rep_seq.precond_fraction,
                    "precond_fraction_par": rep_par.precond_fraction,
                    "solve_speedup": (
                        rep_seq.precond_cycles / rep_par.precond_cycles
                    ),
                    "solver_speedup": (
                        rep_seq.total_cycles / rep_par.total_cycles
                    ),
                },
            )
        )
    return out


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    result = run_krylov_fraction(small=small)
    print(result.report())
    result.check_shape()
    print("shape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
