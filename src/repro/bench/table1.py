"""Table 1: preprocessed doacross times for sparse triangular matrices.

Regenerates the paper's Table 1: for each of the five test problems (SPE2,
SPE5, 5-PT, 7-PT, 9-PT), the time of

- the **preprocessed doacross** in natural iteration order,
- the **preprocessed doacross after doconsider rearrangement** (wavefront
  order), and
- the **optimized sequential** solve,

all for the Figure-7 forward substitution on the unit-lower ILU(0) factor,
on 16 simulated processors.

Shape acceptance (DESIGN.md §2, enforced by :meth:`Table1Result.check_shape`):
for every matrix ``T_seq > T_plain ≥ T_reordered``; plain efficiencies land
in a low band and reordered efficiencies in a higher band (the paper reports
0.32–0.46 and 0.63–0.75 respectively).

Run interactively::

    python -m repro.bench.table1          # full paper sizes
    python -m repro.bench.table1 --small  # reduced grids (fast smoke)
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import ExperimentRow, check_within
from repro.bench.reporting import format_table
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.machine.costs import CostModel
from repro.sparse.ilu import ilu0
from repro.sparse.spe import paper_problems
from repro.sparse.trisolve import lower_solve_loop, solve_lower_unit

__all__ = ["Table1Result", "run_table1", "main", "PAPER_TABLE1"]

#: The paper's Table 1, for side-by-side reporting:
#: name -> (doacross_ms, rearranged_ms, sequential_ms).
PAPER_TABLE1 = {
    "SPE2": (34, 21, 223),
    "SPE5": (45, 23, 241),
    "5-PT": (37, 19, 192),
    "7-PT": (84, 56, 616),
    "9-PT": (97, 58, 698),
}

#: Acceptance bands for the measured efficiencies (full-size problems).
PLAIN_BAND = (0.20, 0.65)
REORDERED_BAND = (0.50, 0.80)


@dataclass
class Table1Result:
    """Measured rows of the Table-1 experiment."""

    processors: int
    small: bool
    rows: list[ExperimentRow] = field(default_factory=list)

    def row(self, name: str) -> ExperimentRow:
        for r in self.rows:
            if r.label == name:
                return r
        raise KeyError(name)

    # ------------------------------------------------------------------
    def check_shape(self) -> None:
        """Assert the paper's qualitative findings (raises on violation)."""
        for r in self.rows:
            seq = r.metrics["sequential_cycles"]
            plain = r.metrics["plain_cycles"]
            reordered = r.metrics["reordered_cycles"]
            if not seq > plain:
                raise AssertionError(
                    f"{r.label}: parallel ({plain}) not faster than "
                    f"sequential ({seq})"
                )
            if not plain >= reordered:
                raise AssertionError(
                    f"{r.label}: doconsider reordering ({reordered}) slower "
                    f"than natural order ({plain})"
                )
            if not self.small:
                check_within(
                    r.metrics["plain_efficiency"],
                    *PLAIN_BAND,
                    label=f"{r.label} plain efficiency",
                )
                check_within(
                    r.metrics["reordered_efficiency"],
                    *REORDERED_BAND,
                    label=f"{r.label} reordered efficiency",
                )

    # ------------------------------------------------------------------
    def report(self) -> str:
        table_rows = []
        for r in self.rows:
            paper = PAPER_TABLE1.get(r.label)
            table_rows.append(
                (
                    r.label,
                    r.params["n"],
                    r.params["lower_nnz"],
                    r.metrics["plain_ms"],
                    r.metrics["reordered_ms"],
                    r.metrics["sequential_ms"],
                    r.metrics["plain_efficiency"],
                    r.metrics["reordered_efficiency"],
                    r.params["n_levels"],
                    f"{paper[0]}/{paper[1]}/{paper[2]}" if paper else "-",
                )
            )
        return format_table(
            [
                "problem",
                "n",
                "L nnz",
                "doacross ms",
                "rearranged ms",
                "sequential ms",
                "eff plain",
                "eff reord",
                "levels",
                "paper ms (pl/re/seq)",
            ],
            table_rows,
            title=(
                f"Table 1 — preprocessed doacross times for sparse "
                f"triangular matrices (P={self.processors}"
                f"{', reduced grids' if self.small else ''}); simulated ms"
            ),
        )


def run_table1(
    processors: int = 16,
    small: bool = False,
    cost_model: CostModel | None = None,
    verify_values: bool = True,
) -> Table1Result:
    """Run the Table-1 experiment.

    ``small=True`` uses structurally identical reduced grids (fast smoke
    runs for tests); the full version uses the paper's exact sizes.
    """
    runner = PreprocessedDoacross(processors=processors, cost_model=cost_model)
    doconsider = Doconsider(doacross=runner)
    out = Table1Result(processors=processors, small=small)

    for name, A in paper_problems(small=small).items():
        L, _U = ilu0(A)
        rhs = np.arange(1.0, A.n_rows + 1) / A.n_rows
        loop = lower_solve_loop(L, rhs, name=name)

        plain = runner.run(loop)
        reordered = doconsider.run(loop)
        if verify_values:
            reference = solve_lower_unit(L, rhs)
            if not np.allclose(plain.y, reference):
                raise AssertionError(f"{name}: natural-order values wrong")
            if not np.allclose(reordered.y, reference):
                raise AssertionError(f"{name}: reordered values wrong")

        out.rows.append(
            ExperimentRow(
                label=name,
                params={
                    "n": A.n_rows,
                    "lower_nnz": L.nnz,
                    "n_levels": reordered.extras["n_levels"],
                },
                result=plain,
                metrics={
                    "sequential_cycles": plain.sequential_cycles,
                    "plain_cycles": plain.total_cycles,
                    "reordered_cycles": reordered.total_cycles,
                    "sequential_ms": plain.sequential_ms,
                    "plain_ms": plain.total_ms,
                    "reordered_ms": reordered.total_ms,
                    "plain_efficiency": plain.efficiency,
                    "reordered_efficiency": reordered.efficiency,
                },
            )
        )
    return out


def main(argv: list[str] | None = None) -> int:
    from repro.bench.harness import parse_json_flag, rows_to_json

    args = sys.argv[1:] if argv is None else argv
    args, json_path = parse_json_flag(args)
    small = "--small" in args
    result = run_table1(small=small)
    print(result.report())
    if json_path:
        with open(json_path, "w") as handle:
            handle.write(rows_to_json(result.rows))
        print(f"wrote {json_path}")
    result.check_shape()
    print("shape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
