"""Figure 6: efficiency of the preprocessed doacross test loop.

Regenerates the paper's Figure 6: parallel efficiency on 16 processors of
the Figure-4 loop with ``N = 10000``, ``M ∈ {1, 5}``, ``L = 1..14``
(``a(i) = 2i``, ``b(i) = 2i``, ``nbrs(j) = 2j − L``).

Shape acceptance (DESIGN.md §2, enforced by :meth:`Figure6Result.check_shape`
and the benchmark suite):

- odd-``L`` efficiencies are flat (pure-overhead plateau) with the ``M=5``
  plateau above the ``M=1`` plateau — the paper reports ≈0.33 and ≈0.50;
- even-``L`` efficiencies rise monotonically with ``L`` for both ``M``,
  staying below the odd plateau.

Run interactively::

    python -m repro.bench.figure6
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.bench.harness import (
    ExperimentRow,
    check_monotone_nondecreasing,
    check_within,
)
from repro.bench.reporting import ascii_chart, format_table
from repro.core.doacross import PreprocessedDoacross
from repro.machine.costs import CostModel
from repro.workloads.testloop import dependence_distances, make_test_loop

__all__ = ["Figure6Result", "run_figure6", "main"]

#: The paper's reported plateaus and our acceptance half-widths.
PAPER_PLATEAU = {1: 0.33, 5: 0.50}
PLATEAU_TOLERANCE = 0.06


@dataclass
class Figure6Result:
    """All measured points of the Figure-6 sweep."""

    n: int
    processors: int
    rows: list[ExperimentRow] = field(default_factory=list)

    def efficiencies(self, m: int, parity: str | None = None) -> list[tuple[int, float]]:
        """``(L, efficiency)`` points for one ``M`` series, optionally
        filtered to ``parity`` ``"odd"``/``"even"``."""
        out = []
        for row in self.rows:
            if row.params["m"] != m:
                continue
            l = row.params["l"]
            if parity == "odd" and l % 2 == 0:
                continue
            if parity == "even" and l % 2 == 1:
                continue
            out.append((l, row.result.efficiency))
        return sorted(out)

    def plateau(self, m: int) -> float:
        """Mean odd-``L`` efficiency (the overhead plateau)."""
        pts = self.efficiencies(m, parity="odd")
        return sum(e for _, e in pts) / len(pts)

    # ------------------------------------------------------------------
    def check_shape(self) -> None:
        """Assert the paper's qualitative findings (raises on violation)."""
        ms = sorted({row.params["m"] for row in self.rows})
        for m in ms:
            odd = [e for _, e in self.efficiencies(m, parity="odd")]
            # Even-L points split by whether they actually carry a true
            # dependence: L=2 with M=1 (say) has only the intra-iteration
            # reference (distance 0) and sits on the plateau like odd L.
            even_dep = [
                e
                for l, e in self.efficiencies(m, parity="even")
                if dependence_distances(m, l)
            ]
            even_free = [
                e
                for l, e in self.efficiencies(m, parity="even")
                if not dependence_distances(m, l)
            ]
            plateau_points = odd + even_free
            # Plateau flatness: dependence-free points in a tight band.
            if plateau_points:
                spread = max(plateau_points) - min(plateau_points)
                if spread > 0.02:
                    raise AssertionError(
                        f"M={m}: zero-dependence plateau not flat "
                        f"(spread {spread:.4f})"
                    )
            # Plateau level vs the paper (only for the paper's M values).
            if m in PAPER_PLATEAU and odd:
                check_within(
                    self.plateau(m),
                    PAPER_PLATEAU[m] - PLATEAU_TOLERANCE,
                    PAPER_PLATEAU[m] + PLATEAU_TOLERANCE,
                    label=f"M={m} odd-L plateau",
                )
            # Dependence-carrying even L: monotone rise, below the plateau.
            if even_dep:
                check_monotone_nondecreasing(
                    even_dep,
                    tolerance=0.005,
                    label=f"M={m} even-L efficiencies",
                )
                if odd and max(even_dep) > max(odd) + 0.01:
                    raise AssertionError(
                        f"M={m}: even-L efficiency exceeds the "
                        f"zero-dependence plateau"
                    )
        if 1 in ms and 5 in ms:
            if self.plateau(5) <= self.plateau(1):
                raise AssertionError(
                    "M=5 plateau should exceed M=1 plateau (per-iteration "
                    "overheads amortize over more terms)"
                )

    # ------------------------------------------------------------------
    def report(self) -> str:
        table_rows = [
            (
                row.params["m"],
                row.params["l"],
                "odd" if row.params["l"] % 2 else "even",
                row.result.efficiency,
                row.result.speedup,
                row.result.wait_cycles,
            )
            for row in self.rows
        ]
        table = format_table(
            ["M", "L", "parity", "efficiency", "speedup", "busy-wait cyc"],
            table_rows,
            title=(
                f"Figure 6 — preprocessed doacross efficiencies "
                f"(N={self.n}, P={self.processors})"
            ),
        )
        series = {
            f"M={m}": [(float(l), e) for l, e in self.efficiencies(m)]
            for m in sorted({row.params["m"] for row in self.rows})
        }
        chart = ascii_chart(
            series,
            x_label="L",
            y_label="parallel efficiency",
            y_max=0.6,
        )
        plateaus = "  ".join(
            f"M={m}: plateau={self.plateau(m):.3f} (paper ≈{PAPER_PLATEAU.get(m, float('nan')):.2f})"
            for m in sorted({row.params["m"] for row in self.rows})
            if self.efficiencies(m, parity="odd")
        )
        return f"{table}\n\n{chart}\n\n{plateaus}\n"


def run_figure6(
    n: int = 10000,
    processors: int = 16,
    ms: tuple[int, ...] = (1, 5),
    ls: tuple[int, ...] = tuple(range(1, 15)),
    cost_model: CostModel | None = None,
) -> Figure6Result:
    """Run the Figure-6 sweep; smaller ``n`` gives a faster smoke version
    with the same qualitative shape."""
    runner = PreprocessedDoacross(processors=processors, cost_model=cost_model)
    out = Figure6Result(n=n, processors=processors)
    for m in ms:
        for l in ls:
            loop = make_test_loop(n=n, m=m, l=l)
            result = runner.run(loop)
            out.rows.append(
                ExperimentRow(
                    label=f"M={m},L={l}",
                    params={"m": m, "l": l},
                    result=result,
                )
            )
    return out


def main(argv: list[str] | None = None) -> int:
    from repro.bench.harness import parse_json_flag, rows_to_json

    args = sys.argv[1:] if argv is None else argv
    args, json_path = parse_json_flag(args)
    n = int(args[0]) if args else 10000
    result = run_figure6(n=n)
    print(result.report())
    if json_path:
        with open(json_path, "w") as handle:
            handle.write(rows_to_json(result.rows))
        print(f"wrote {json_path}")
    result.check_shape()
    print("shape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
