"""The benchmark registry: one entry point and one artifact writer.

Every tracked benchmark registers a :class:`BenchSpec` here, so the
``python -m repro bench-all`` orchestrator can run the whole suite
through one loop instead of CI enumerating modules by hand, and every
per-bench CLI writes its ``BENCH_*.json`` through :func:`write_artifact`,
so all artifacts carry an identical provenance stamp (git SHA, ISO date,
machine fingerprint — :func:`repro.perf.history.run_metadata`) instead of
six slightly different hand-rolled ``json.dumps`` calls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from importlib import import_module
from pathlib import Path

from repro.perf.history import run_metadata

__all__ = ["BenchSpec", "REGISTRY", "bench_by_name", "write_artifact"]


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark.

    Attributes
    ----------
    name:
        Registry key, also the CLI dispatch name (``bench-threaded``).
    module:
        Dotted module path with a ``main(argv) -> int`` entry point that
        accepts ``--small`` and ``--out=PATH``.
    artifact:
        Default ``BENCH_*.json`` artifact filename the bench writes.
    quick_args:
        Extra argv for the reduced-size run ``bench-all --quick`` does.
    description:
        One line for ``bench-all --list``.
    """

    name: str
    module: str
    artifact: str
    quick_args: tuple = ("--small",)
    description: str = ""

    def main(self, argv: list[str]) -> int:
        return import_module(self.module).main(argv)


REGISTRY: tuple[BenchSpec, ...] = (
    BenchSpec(
        name="bench-vectorized",
        module="repro.bench.bench_vectorized",
        artifact="BENCH_vectorized.json",
        description="wavefront-batched NumPy backend vs sequential oracle",
    ),
    BenchSpec(
        name="bench-threaded",
        module="repro.bench.bench_threaded",
        artifact="BENCH_threaded.json",
        description="real-thread protocol smoke with busy-wait accounting",
    ),
    BenchSpec(
        name="bench-elision",
        module="repro.bench.bench_elision",
        artifact="BENCH_elision.json",
        description="symbolic inspector elision vs runtime inspector",
    ),
    BenchSpec(
        name="bench-multiproc",
        module="repro.bench.bench_multiproc",
        artifact="BENCH_multiproc.json",
        description="shared-memory multiprocessing backend on the trisolve",
    ),
    BenchSpec(
        name="bench-speculative",
        module="repro.bench.bench_speculative",
        artifact="BENCH_speculative.json",
        description="speculative rollback vs inspector paths across "
        "conflict density",
    ),
    BenchSpec(
        name="bench-autotune",
        module="repro.bench.bench_autotune",
        artifact="BENCH_autotune.json",
        description="auto backend vs every fixed backend",
    ),
    BenchSpec(
        name="bench-deptest",
        module="repro.bench.bench_deptest",
        artifact="BENCH_deptest.json",
        description="proven-distance group barriers vs post/wait flags",
    ),
    BenchSpec(
        name="bench-sanitize",
        module="repro.bench.bench_sanitize",
        artifact="BENCH_sanitize.json",
        description="sanitizer overhead on clean runs",
    ),
)


def bench_by_name(name: str) -> BenchSpec:
    for spec in REGISTRY:
        if spec.name == name:
            return spec
    known = ", ".join(s.name for s in REGISTRY)
    raise KeyError(f"unknown benchmark {name!r}; registered: {known}")


def write_artifact(
    payload: dict, path: str | Path, meta: dict | None = None
) -> Path:
    """Stamp ``payload`` with provenance metadata, validate it, write it.

    The single artifact-writing path for every registered bench: adds the
    ``meta`` block (:func:`~repro.perf.history.run_metadata` unless one
    is supplied), schema-checks the result — a bench that would write an
    artifact CI later rejects should fail right here — and writes
    pretty-printed JSON with a trailing newline.
    """
    from repro.bench.schema import validate_bench_payload

    payload = dict(payload)
    payload["meta"] = meta if meta is not None else run_metadata()
    validate_bench_payload(payload)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
