"""Dependence-distance elision benchmark: post/wait vs. group barriers.

The dependence-test battery (:mod:`repro.analysis.deptest`) proves a
lower bound on every cross-iteration true-dependence distance; the
DistancePass turns that bound into group-synchronous execution — natural
order groups of ``group <= min_distance`` iterations with one barrier
between groups and **no** per-element post/wait flags (§2.2's
synchronization distance, generalized after arXiv 1311.2927).  This
benchmark measures what the elision buys on workloads whose distance is
genuinely larger than 1:

- **synchronization volume** — the baseline protocol's ``flag_sets`` +
  ``flag_checks`` (every post and every wait-side flag inspection) vs.
  the grouped run's (always zero) and its ``sync_elisions`` accounting;
- **wall clock** — end-to-end ``run_with_spec`` with and without
  ``analyze="symbolic"`` on the threaded and multiproc backends;
- **correctness** — every grouped output is bitwise-equal to the
  sequential oracle's.

Shape assertions (never raw speed): the grouped run posts/waits at least
30% less than the baseline (it eliminates 100% of flag traffic, the gate
is deliberately slack for future partial elisions), records at least one
``sync_elisions`` per elided iteration-pair, and matches the oracle
bitwise.

Run: ``python -m repro bench-deptest [--small] [--json] [n]``.  Every run
writes the machine-readable ``BENCH_deptest.json`` (override with
``--out=``), schema-checked in CI by ``python -m repro.bench.schema``.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backends.cache import InspectorCache
from repro.bench.reporting import format_table
from repro.core.sequential import run_reference
from repro.ir.loop import IrregularLoop
from repro.passes.execute import run_with_spec
from repro.passes.spec import PlanSpec
from repro.workloads.synthetic import affine_loop, chain_loop

__all__ = [
    "DeptestCase",
    "DeptestBenchResult",
    "run_bench_deptest",
    "write_bench_json",
    "main",
]

#: Default artifact path (repo root in CI), sibling of the other BENCH_*.
BENCH_JSON = "BENCH_deptest.json"

#: Required fractional reduction in post/wait operations (the ISSUE gate).
MIN_REDUCTION = 0.30


@dataclass
class DeptestCase:
    """One workload × backend comparison: flagged protocol vs. groups."""

    workload: str
    backend: str
    n: int
    min_distance: int
    group: int
    baseline_ops: int
    grouped_ops: int
    sync_elisions: int
    group_barriers: int
    baseline_seconds: float
    grouped_seconds: float
    oracle_equal: bool

    @property
    def reduction(self) -> float:
        """Fraction of post/wait operations the grouping removed."""
        if self.baseline_ops == 0:
            return 0.0
        return 1.0 - self.grouped_ops / self.baseline_ops

    def check(self) -> None:
        """Shape assertions: correctness and accounting, never speed."""
        if not self.oracle_equal:
            raise AssertionError(
                f"{self.workload}/{self.backend}: grouped output diverged "
                f"from the sequential oracle"
            )
        if self.reduction < MIN_REDUCTION:
            raise AssertionError(
                f"{self.workload}/{self.backend}: post/wait reduction "
                f"{self.reduction:.0%} is below the {MIN_REDUCTION:.0%} "
                f"gate ({self.baseline_ops} -> {self.grouped_ops} ops)"
            )
        if self.sync_elisions < 1:
            raise AssertionError(
                f"{self.workload}/{self.backend}: no sync_elisions were "
                f"recorded"
            )
        if self.group_barriers != -(-self.n // self.group):
            raise AssertionError(
                f"{self.workload}/{self.backend}: expected "
                f"{-(-self.n // self.group)} group barriers, counted "
                f"{self.group_barriers}"
            )

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "backend": self.backend,
            "n": self.n,
            "min_distance": self.min_distance,
            "group": self.group,
            "baseline_ops": self.baseline_ops,
            "grouped_ops": self.grouped_ops,
            "reduction": self.reduction,
            "sync_elisions": self.sync_elisions,
            "group_barriers": self.group_barriers,
            "baseline_seconds": self.baseline_seconds,
            "grouped_seconds": self.grouped_seconds,
            "oracle_equal": self.oracle_equal,
        }


@dataclass
class DeptestBenchResult:
    """The full sweep, one :class:`DeptestCase` per workload × backend."""

    n: int
    distance: int
    cases: list[DeptestCase]

    def check(self) -> None:
        for case in self.cases:
            case.check()

    def report(self) -> str:
        rows = [
            (
                c.workload,
                c.backend,
                c.group,
                c.baseline_ops,
                c.grouped_ops,
                f"{c.reduction:.0%}",
                c.sync_elisions,
                c.group_barriers,
            )
            for c in self.cases
        ]
        return format_table(
            [
                "workload",
                "backend",
                "group",
                "post/wait ops",
                "grouped ops",
                "reduction",
                "elisions",
                "barriers",
            ],
            rows,
            title=(
                f"dependence-distance elision benchmark — n={self.n}, "
                f"distance={self.distance}"
            ),
        )

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "distance": self.distance,
            "cases": [c.as_dict() for c in self.cases],
        }


def _counters(result) -> dict:
    telemetry = result.telemetry
    assert telemetry is not None
    return telemetry.metrics.as_dict()["counters"]


def _run(loop: IrregularLoop, spec: PlanSpec):
    t0 = time.perf_counter()
    result, _plan = run_with_spec(loop, spec, cache=InspectorCache())
    return result, time.perf_counter() - t0


def _bench_case(
    workload: str,
    loop: IrregularLoop,
    backend: str,
    *,
    processors: int,
    chunk: int | None,
) -> DeptestCase:
    oracle = run_reference(loop)

    base_spec = PlanSpec(
        backend=backend, processors=processors, chunk=chunk, observe=True
    )
    grouped_spec = PlanSpec(
        backend=backend,
        processors=processors,
        chunk=chunk,
        observe=True,
        analyze="symbolic",
    )
    baseline, base_wall = _run(loop, base_spec)
    grouped, grouped_wall = _run(loop, grouped_spec)

    elision = grouped.extras.get("distance_elision")
    if elision is None:
        raise AssertionError(
            f"{workload}/{backend}: the DistancePass planned no elision"
        )
    base_counters = _counters(baseline)
    grouped_counters = _counters(grouped)
    ops = lambda c: int(c.get("flag_sets", 0)) + int(c.get("flag_checks", 0))
    return DeptestCase(
        workload=workload,
        backend=backend,
        n=loop.n,
        min_distance=int(elision["min_distance"]),
        group=int(elision["group"]),
        baseline_ops=ops(base_counters),
        grouped_ops=ops(grouped_counters),
        sync_elisions=int(grouped_counters.get("sync_elisions", 0)),
        group_barriers=int(grouped_counters.get("group_barriers", 0)),
        baseline_seconds=base_wall,
        grouped_seconds=grouped_wall,
        oracle_equal=bool(np.array_equal(oracle.y, grouped.y)),
    )


def run_bench_deptest(
    n: int = 20_000, distance: int = 8
) -> DeptestBenchResult:
    """Sweep two distance-``k`` shapes over the flag-based backends.

    ``chain`` is the single-recurrence distance-``k`` loop; ``stencil``
    reads both ``i-k`` and ``i-2k`` (two strided slots, the battery's
    bound is the nearer one).  The multiproc chunk is fixed at 4 — at or
    below the distance, as the group alignment requires.
    """
    chunk = min(4, distance)
    chain = chain_loop(n, distance)
    stencil = affine_loop(
        n,
        (1, 0),
        [(1, -distance), (1, -2 * distance)],
        name=f"stencil(n={n},k={distance})",
    )
    cases = []
    for workload, loop in (("chain", chain), ("stencil", stencil)):
        cases.append(
            _bench_case(
                workload, loop, "threaded", processors=4, chunk=None
            )
        )
        cases.append(
            _bench_case(
                workload, loop, "multiproc", processors=2, chunk=chunk
            )
        )
    return DeptestBenchResult(n=n, distance=distance, cases=cases)


def write_bench_json(
    result: DeptestBenchResult, path: str | Path = BENCH_JSON
) -> Path:
    """Write the machine-readable artifact: flat ``records`` rows (two per
    workload × backend — flagged and grouped — the stable cross-PR schema
    shared with the other ``BENCH_*.json``) plus the ``detail`` dict."""
    path = Path(path)
    records = []
    for case in result.cases:
        records.append(
            {
                "n": case.n,
                "workload": case.workload,
                "backend": f"{case.backend}-flagged",
                "wall_seconds": case.baseline_seconds,
                "sync_ops": case.baseline_ops,
            }
        )
        records.append(
            {
                "n": case.n,
                "workload": case.workload,
                "backend": f"{case.backend}-grouped",
                "wall_seconds": case.grouped_seconds,
                "sync_ops": case.grouped_ops,
                "sync_elisions": case.sync_elisions,
                "group_barriers": case.group_barriers,
            }
        )
    from repro.bench.registry import write_artifact

    payload = {
        "benchmark": "bench-deptest",
        "records": records,
        "detail": result.as_dict(),
    }
    return write_artifact(payload, path)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    small = "--small" in args
    as_json = "--json" in args
    out = BENCH_JSON
    for a in args:
        if a.startswith("--out="):
            out = a.split("=", 1)[1]
    numeric = [a for a in args if a.isdigit()]
    n = int(numeric[0]) if numeric else (2_000 if small else 20_000)
    result = run_bench_deptest(n=n)
    if as_json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.report())
    written = write_bench_json(result, out)
    if not as_json:
        print(f"\nwrote {written}")
    result.check()
    if not as_json:
        print("\nshape check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
