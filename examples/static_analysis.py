"""Static analysis: lint a loop portfolio and race-check a schedule.

The paper's split is compile time vs. run time: the compiler plans the
inspector/executor transform, the dependence *values* only exist once the
index arrays do.  The lint subsystem sits on the compile-time side — it
inspects the loop IR, the transform plan, and a proposed backend schedule
and reports what is wasteful (an inspector for an affine write, a wait
that can never fire, a chunk choice that serializes the wavefront) or
wrong (a schedule that drops a true dependence: a race).

Run:  ``python examples/static_analysis.py``
Lint: ``python -m repro lint examples/static_analysis.py --json``
"""

import numpy as np

import repro
from repro.lint import (
    check_backend_schedule,
    check_dependence_coverage,
    format_diagnostics,
    level_happens_before,
    run_lints,
)


def build_loops() -> dict:
    """The portfolio ``python -m repro lint`` sees for this example."""
    return {
        # Affine write + cross-iteration reads: AFFINE-WRITE territory.
        "affine-write": repro.make_test_loop(n=2000, m=2, l=8),
        # Odd L: terms exist but none is ever true-dependent — DOALL-ABLE.
        "independent": repro.make_test_loop(n=2000, m=2, l=7),
        # Runtime-determined subscripts: the loop the paper is about.
        "irregular": repro.random_irregular_loop(2000, seed=7),
    }


def main() -> None:
    loops = build_loops()

    # --- 1. Lint each loop against a block schedule ---------------------
    for name, loop in loops.items():
        print(f"== {name} ==")
        diagnostics = run_lints(loop, schedule="block", processors=16)
        print(format_diagnostics(diagnostics))
        print()

    # --- 2. Race-check the schedules the backends actually execute ------
    loop = loops["irregular"]
    for backend in ("vectorized", "threaded", "simulated"):
        report = check_backend_schedule(loop, backend, processors=16)
        print(report.summary())

    # --- 3. Prove the checker has teeth: corrupt a schedule -------------
    # Swap one true-dependence pair across wavefront levels; every such
    # edge must now surface as a race.
    from repro.graph.levels import compute_levels
    from repro.ir.analysis import dependence_pairs
    from repro.lint.hb import LevelHappensBefore

    pairs = dependence_pairs(loop)
    writer, reader = int(pairs[0, 0]), int(pairs[0, 1])
    levels = compute_levels(loop).levels.copy()
    levels[writer], levels[reader] = levels[reader], levels[writer]
    corrupted = LevelHappensBefore(levels, label="corrupted-levels")
    report = check_dependence_coverage(loop, corrupted)
    print()
    print(report.summary())
    assert not report.passed, "the corrupted schedule must be flagged"

    # The pristine schedule, read back off the executed slices, is clean.
    clean = check_dependence_coverage(loop, level_happens_before(loop))
    assert clean.passed
    print("\npristine level schedule re-checked: clean")

    # --- 4. validate='static' wires the same check into execution -------
    result, plan = repro.parallelize(
        loop,
        spec=repro.PlanSpec(backend="vectorized", validate="static"),
    )
    assert np.array_equal(result.y, loop.run_sequential())
    print(f"validated run matches the sequential oracle ({plan.strategy})")


if __name__ == "__main__":
    main()
