"""Irregular mesh sweep — runtime dependencies from unstructured data.

The paper's introduction motivates loops whose subscripts come from data
structures built at run time.  A classic instance: a Gauss-Seidel-flavored
sweep over an *unstructured mesh* whose vertex numbering (and therefore
dependence structure) is decided by the mesh generator, not the compiler::

    do v = 1, n_vertices
        x(perm(v)) = x(perm(v)) + ω * Σ_{u ∈ nbrs(v)} w(u,v) · x(u)
    end do

Neighbors numbered before ``perm(v)`` in the sweep contribute *updated*
values (true dependencies), later ones old values (antidependencies) —
decided element by element, at run time.

This example builds a random planar-ish mesh with ``networkx``, derives the
loop, and shows how the preprocessed doacross handles three different
vertex orderings with identical results but very different parallelism.

Run:  ``python examples/irregular_mesh_sweep.py``
"""

import networkx as nx
import numpy as np

import repro
from repro.core.doconsider import Doconsider
from repro.graph.levels import compute_levels
from repro.ir.accesses import ReadTable
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import IndirectSubscript


def build_mesh(n_vertices: int, seed: int) -> nx.Graph:
    """A connected random geometric mesh (vertices in the unit square,
    edges between nearby vertices)."""
    rng = np.random.default_rng(seed)
    positions = {i: tuple(rng.random(2)) for i in range(n_vertices)}
    radius = 1.8 / np.sqrt(n_vertices)
    mesh = nx.random_geometric_graph(n_vertices, radius, pos=positions, seed=int(seed))
    # Connect stragglers so every vertex participates.
    components = list(nx.connected_components(mesh))
    for comp in components[1:]:
        mesh.add_edge(next(iter(components[0])), next(iter(comp)))
    return mesh


def sweep_loop(mesh: nx.Graph, order: np.ndarray, omega: float = 0.2) -> IrregularLoop:
    """Encode one Gauss-Seidel-style sweep in the given vertex order."""
    n = mesh.number_of_nodes()
    per_iteration = []
    for v in order:
        nbrs = sorted(mesh.neighbors(int(v)))
        weight = omega / max(len(nbrs), 1)
        per_iteration.append([(u, weight) for u in nbrs])
    return IrregularLoop(
        n=n,
        y_size=n,
        write_subscript=IndirectSubscript(np.asarray(order, dtype=np.int64)),
        reads=ReadTable.from_lists(per_iteration),
        y0=np.ones(n),
        name=f"mesh-sweep(n={n})",
    )


def main() -> None:
    mesh = build_mesh(n_vertices=3000, seed=42)
    n = mesh.number_of_nodes()
    print(
        f"mesh: {n} vertices, {mesh.number_of_edges()} edges, "
        f"mean degree {2 * mesh.number_of_edges() / n:.1f}"
    )

    runner = repro.PreprocessedDoacross(processors=16)
    rng = np.random.default_rng(7)

    orderings = {
        "natural": np.arange(n),
        "random (mesh generator's numbering)": rng.permutation(n),
        "BFS from vertex 0": np.fromiter(
            (v for v in nx.bfs_tree(mesh, 0)), dtype=np.int64, count=n
        ),
    }

    reference = None
    for label, order in orderings.items():
        loop = sweep_loop(mesh, order)
        levels = compute_levels(loop)
        result = runner.run(loop)
        reordered = Doconsider(doacross=runner).run(loop)
        print(f"\n--- vertex order: {label} ---")
        print(
            f"dependence wavefronts: {levels.n_levels} "
            f"(widest {levels.max_width()})"
        )
        print(
            f"doacross:   efficiency {result.efficiency:.3f}  "
            f"({result.total_cycles} cycles, busy-wait {result.wait_cycles})"
        )
        print(
            f"doconsider: efficiency {reordered.efficiency:.3f}  "
            f"({reordered.total_cycles} cycles)"
        )
        # Different sweep orders are *different computations* (Gauss-Seidel
        # depends on order), but each must match its own sequential oracle.
        assert np.allclose(result.y, loop.run_sequential(), rtol=1e-12)
        assert np.allclose(reordered.y, loop.run_sequential(), rtol=1e-12)
        if reference is None:
            reference = result.y
    print("\nall orderings verified against their sequential sweeps")


if __name__ == "__main__":
    main()
