"""Scheduling policies and the cost of dependence chains.

The executor's iteration-to-processor schedule interacts sharply with the
dependence structure:

- **cyclic, chunk 1** puts adjacent iterations on different processors, so
  a distance-1 chain pipelines across the machine (each processor finishes
  only the post-wake tail of its iteration on the critical path);
- **chunked or block schedules** put adjacent iterations on the *same*
  processor, serializing short chains completely;
- **dynamic self-scheduling** adds a serialized fetch-and-add per chunk —
  negligible with big chunks, dominant with chunk 1.

This example sweeps schedule × chunk × dependence distance on the Figure-4
loop and prints the resulting efficiency surface.

Run:  ``python examples/scheduling_policies.py``
"""

import repro
from repro.bench.reporting import format_table


def main() -> None:
    n = 6000
    processors = 16
    rows = []
    for l, structure in [
        (7, "none (odd L)"),
        (4, "distance 1"),
        (10, "distance 4"),
    ]:
        loop = repro.make_test_loop(n=n, m=1, l=l)
        for kind in ("cyclic", "block", "dynamic", "guided"):
            for chunk in (1, 8, 32):
                if kind == "block" and chunk != 1:
                    continue
                runner = repro.PreprocessedDoacross(
                    processors=processors, schedule=kind, chunk=chunk
                )
                result = runner.run(loop)
                rows.append(
                    (
                        structure,
                        kind,
                        "-" if kind == "block" else chunk,
                        result.efficiency,
                        result.wait_cycles,
                        result.total_cycles,
                    )
                )
    print(
        format_table(
            [
                "dependences",
                "schedule",
                "chunk",
                "efficiency",
                "busy-wait cyc",
                "total cyc",
            ],
            rows,
            title=(
                f"Figure-4 loop (N={n}, M=1) on {processors} simulated "
                f"processors"
            ),
        )
    )

    print(
        "\nreading guide: with no dependencies every schedule lands on the "
        "overhead plateau;\nwith a distance-1 chain, cyclic chunk-1 "
        "pipelines while chunked/block schedules serialize;\ndynamic "
        "chunk-1 pays the dispatch counter on top."
    )


if __name__ == "__main__":
    main()
