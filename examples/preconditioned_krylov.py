"""Preconditioned conjugate gradients — the paper's motivating application.

Section 3.2 motivates the Table-1 experiment in one sentence: "The solution
of these sparse triangular systems accounts for a large fraction of the
sequential execution time of linear solvers that use Krylov methods."
This example makes the whole chain concrete:

1. solve a 63×63 five-point Poisson-like system with CG, unpreconditioned
   and with ILU(0) — the preconditioner slashes iterations but every
   iteration now contains two triangular solves;
2. measure what fraction of sequential solver time those solves consume
   (the paper's claim, as a number);
3. swap in a preconditioner whose substitutions run as doconsider-reordered
   preprocessed doacross loops on 16 simulated processors, amortizing the
   inspector across iterations is left to `AmortizedDoacross` (see the
   amortization ablation) — and measure the *whole-solver* speedup
   (the Amdahl payoff the paper is after).

Run:  ``python examples/preconditioned_krylov.py``
"""

import numpy as np

from repro import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.sparse import IluPreconditioner, cg, five_point


def main() -> None:
    A = five_point(63, 63)
    rng = np.random.default_rng(17)
    b = rng.normal(size=A.n_rows)
    print(f"system: {A}")

    # --- 1. plain vs ILU(0)-preconditioned CG ---------------------------
    x_plain, rep_plain = cg(A, b, tol=1e-8)
    print(f"\nplain CG:          {rep_plain.summary()}")

    seq_pc = IluPreconditioner(A)
    x_ilu, rep_ilu = cg(A, b, preconditioner=seq_pc, tol=1e-8)
    print(f"ILU(0) CG (seq):   {rep_ilu.summary()}")
    print(
        f"\nILU(0) cuts iterations {rep_plain.iterations} → "
        f"{rep_ilu.iterations}, and triangular solves now take "
        f"{rep_ilu.precond_fraction:.0%} of sequential solver time — "
        f"the paper's 'large fraction'."
    )
    np.testing.assert_allclose(A.matvec(x_ilu), b, atol=1e-6)

    # --- 2. parallelize the triangular solves ---------------------------
    runner = Doconsider(doacross=PreprocessedDoacross(processors=16))
    par_pc = IluPreconditioner(A, runner=runner)
    x_par, rep_par = cg(A, b, preconditioner=par_pc, tol=1e-8)
    print(f"\nILU(0) CG (par):   {rep_par.summary()}")

    np.testing.assert_allclose(x_par, x_ilu, rtol=1e-10)
    print("\nparallel and sequential preconditioning give identical solves")

    solve_speedup = rep_ilu.precond_cycles / rep_par.precond_cycles
    total_speedup = rep_ilu.total_cycles / rep_par.total_cycles
    print(
        f"\ntriangular-solve speedup: {solve_speedup:.2f}x "
        f"(preprocessed doacross, doconsider order, 16 processors)\n"
        f"whole-solver speedup:     {total_speedup:.2f}x "
        f"(Amdahl: matvec and vector ops stay sequential here)"
    )
    print(
        f"parallelized solves now take {rep_par.precond_fraction:.0%} of "
        f"solver time (was {rep_ilu.precond_fraction:.0%})"
    )


if __name__ == "__main__":
    main()
