"""Bring your own loop: source in, parallel execution out.

The full front-to-back pipeline on a loop *you* write as source text:

1. **parse** — :func:`repro.loop_from_source` turns restricted loop source
   plus runtime array bindings into the normalized loop form (affine write
   subscripts are detected symbolically from the text);
2. **plan** — the "compiler" picks the cheapest sound strategy from the
   static structure;
3. **codegen** — inspect the transformed pseudo-Fortran it would emit;
4. **run** — execute on the simulated 16-processor machine;
5. **verify** — every applicable strategy against the sequential oracle.

The sample loop is a gather-update over runtime permutations — the kind of
kernel (particle push, indirect assembly) the inspector/executor literature
grew up on.

Run:  ``python examples/bring_your_own_loop.py``
"""

import numpy as np

import repro
from repro.ir.codegen import generate_source
from repro.ir.transform import plan_transform

SOURCE = """
for i in range(2000):
    y[cell[i]] = y[cell[i]]
    for j in range(4):
        y[cell[i]] += w[j] * y[nbr[4*i + j]]
"""


def main() -> None:
    rng = np.random.default_rng(23)
    n = 2000
    # Runtime data: an injective scatter target and arbitrary gathers.
    cell = rng.permutation(n * 2)[:n]
    nbr = rng.integers(0, n * 2, size=4 * n)
    w = np.full(4, 0.1)

    # --- 1. parse -------------------------------------------------------
    loop = repro.loop_from_source(
        SOURCE,
        arrays={"cell": cell, "nbr": nbr, "w": w},
        y0=np.ones(n * 2),
        name="gather-update",
    )
    print(f"parsed: {loop}")

    # --- 2. plan --------------------------------------------------------
    plan = plan_transform(loop)
    print(f"plan:   {plan.describe()}")

    # --- 3. codegen -----------------------------------------------------
    print("\ntransformed source the compiler would emit:\n")
    print(generate_source(loop, plan))

    # --- 4. run ---------------------------------------------------------
    runner = repro.PreprocessedDoacross(processors=16)
    result = runner.run(loop)
    print("\n--- simulated run ---")
    print(result.summary())

    # --- 5. verify ------------------------------------------------------
    report = repro.verify_loop(loop, processors=16)
    print()
    print(report.summary())
    assert report.passed


if __name__ == "__main__":
    main()
