"""Sparse triangular solves — the paper's §3.2 application.

The dominant cost of preconditioned Krylov solvers is applying the ILU
preconditioner: one forward (lower) and one backward (upper) triangular
solve per iteration.  Their dependence structure lives in the ``column``
array of the sparse format, so a compiler sees nothing — exactly the
preprocessed doacross's home turf.

This example:

1. builds the paper's 5-PT operator (63×63 five-point grid, 3969 eqs);
2. computes the ILU(0) factors ``A ≈ L·U`` with our own factorization;
3. encodes the Figure-7 forward solve as an irregular loop and runs it as
   a preprocessed doacross, in natural order and in doconsider (wavefront)
   order, on 16 simulated processors;
4. completes the full preconditioner application with the backward solve;
5. checks everything against the sequential solves.

Run:  ``python examples/sparse_triangular_solve.py``
"""

import numpy as np

import repro
from repro.core.doconsider import Doconsider
from repro.graph.levels import compute_levels
from repro.sparse import (
    five_point,
    ilu0,
    lower_solve_loop,
    solve_lower_unit,
    solve_upper,
    upper_solve_loop,
)


def main() -> None:
    # --- the operator and its incomplete factors -----------------------
    A = five_point(63, 63)
    print(f"operator: {A}")
    L, U = ilu0(A)
    print(f"ILU(0) factors: L {L}, U {U}")

    rhs = np.sin(np.arange(A.n_rows) * 0.01) + 1.5

    # --- Figure-7 forward solve as an irregular loop -------------------
    forward = lower_solve_loop(L, rhs, name="5-PT forward")
    levels = compute_levels(forward)
    print(
        f"\nforward-solve dependence DAG: {forward.n} iterations, "
        f"{levels.n_levels} wavefronts, widest {levels.max_width()}"
    )

    runner = repro.PreprocessedDoacross(processors=16)
    natural = runner.run(forward)
    print("\n--- natural iteration order ---")
    print(natural.summary())

    reordered = Doconsider(doacross=runner).run(forward)
    print("\n--- doconsider (wavefront) order ---")
    print(reordered.summary())
    print(
        f"\nreordering speeds the solve up by "
        f"{natural.total_cycles / reordered.total_cycles:.2f}x "
        f"(the paper's Table-1 effect)"
    )

    # --- verify against the sequential solve ---------------------------
    y_ref = solve_lower_unit(L, rhs)
    assert np.allclose(natural.y, y_ref, rtol=1e-12)
    assert np.allclose(reordered.y, y_ref, rtol=1e-12)
    print("forward-solve values verified against sequential substitution")

    # --- complete the preconditioner: backward solve -------------------
    backward = upper_solve_loop(U, y_ref, name="5-PT backward")
    back_result = Doconsider(doacross=runner).run(backward)
    x_ref = solve_upper(U, y_ref)
    assert np.allclose(back_result.y, x_ref, rtol=1e-10)
    print("\n--- backward (upper) solve, wavefront order ---")
    print(back_result.summary())

    # --- sanity: the preconditioner actually preconditions -------------
    residual = np.abs(A.matvec(x_ref) - rhs).max() / np.abs(rhs).max()
    print(
        f"\none preconditioned Richardson step leaves |A·x − rhs|/|rhs| = "
        f"{residual:.3f} (< 1, so the ILU(0) application contracts the "
        f"residual; a Krylov solver would apply it every iteration)"
    )
    assert residual < 1.0


if __name__ == "__main__":
    main()
