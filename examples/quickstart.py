"""Quickstart: parallelize a loop with runtime-determined dependencies.

This walks the paper's core story end to end:

1. build the Figure-4 test loop (``y(a(i)) += Σ val(j)·y(b(i)+nbrs(j))``)
   whose dependence structure is invisible until the arrays exist;
2. run it as a **preprocessed doacross** on a simulated 16-processor
   shared-memory machine — inspector, executor, postprocessor;
3. verify the parallel result equals the sequential loop exactly;
4. compare against the baselines: doall (only sound when independent) and
   the §2.3 linear-subscript variant (no inspector);
5. let :func:`repro.parallelize` pick the strategy automatically.

Run:  ``python examples/quickstart.py``
"""

import numpy as np

import repro


def main() -> None:
    # --- 1. A loop the compiler cannot analyze -------------------------
    # L=8 gives true dependencies of distance 3 (j=1), an intra-iteration
    # reference (j=4 would be, but M=2 stops earlier), and antidependencies.
    loop = repro.make_test_loop(n=4000, m=2, l=8)
    print(f"loop: {loop}")
    print(f"sequential cycles: {repro.sequential_time(loop, repro.CostModel())}")

    # --- 2. Preprocessed doacross on 16 simulated processors -----------
    runner = repro.PreprocessedDoacross(processors=16)
    result = runner.run(loop)
    print("\n--- preprocessed doacross ---")
    print(result.summary())

    # --- 3. Exact semantic equivalence ----------------------------------
    reference = loop.run_sequential()
    assert np.allclose(result.y, reference, rtol=1e-12)
    print("values match the sequential oracle exactly")

    # --- 4. Variants and baselines --------------------------------------
    print("\n--- linear-subscript variant (no inspector, paper §2.3) ---")
    linear = runner.run(loop, linear=True)
    print(linear.summary())

    print("\n--- strip-mined variant (block = 500, paper §2.3) ---")
    stripmined = runner.run_stripmined(loop, block=500)
    print(stripmined.summary())

    independent = repro.make_test_loop(n=4000, m=2, l=7)  # odd L: no deps
    print("\n--- doall on the dependence-free (odd L) configuration ---")
    doall = repro.DoallRunner(processors=16).run(independent)
    print(doall.summary())
    overhead = repro.PreprocessedDoacross(processors=16).run(independent)
    print(
        f"doacross machinery costs a factor "
        f"{overhead.total_cycles / doall.total_cycles:.2f} over doall here — "
        f"that gap is the paper's Figure-6 efficiency plateau"
    )

    # --- 5. Automatic strategy selection --------------------------------
    print("\n--- parallelize(): the compiler's choice ---")
    auto_result, plan = repro.parallelize(loop, processors=16)
    print(f"chosen plan: {plan.describe()}")
    assert np.allclose(auto_result.y, reference, rtol=1e-12)
    print("auto-parallelized values verified")


def build_loops() -> dict:
    """Expose this example's loops to ``python -m repro lint``."""
    return {
        "quickstart-figure4": repro.make_test_loop(n=4000, m=2, l=8),
        "quickstart-independent": repro.make_test_loop(n=4000, m=2, l=7),
    }


if __name__ == "__main__":
    main()
