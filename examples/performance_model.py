"""Understanding doacross performance: model, simulation, and timelines.

Three views of the same executions:

1. the **closed-form model** (`repro.bench.model`) predicts makespans from
   the cost constants — throughput-bound loops exactly, chain-bound loops
   via the binding post-wake rate;
2. the **simulator** measures them event by event;
3. the **execution trace** shows *why*: Gantt timelines make the
   staircase of a serialized chain and the dense weave of a pipelined one
   visible at a glance.

Run:  ``python examples/performance_model.py``
"""

import repro
from repro.bench.model import (
    predict_chain_loop,
    predict_figure4,
    relative_error,
)
from repro.bench.reporting import format_table


def main() -> None:
    processors = 16
    runner = repro.PreprocessedDoacross(processors=processors)

    # --- 1+2: predicted vs simulated across the Figure-4 family ---------
    rows = []
    for m in (1, 5):
        for l in (3, 4, 8, 12, 14):
            loop = repro.make_test_loop(n=4000, m=m, l=l)
            sim = runner.run(loop)
            pred = predict_figure4(4000, m, l, processors)
            rows.append(
                (
                    f"M={m} L={l}",
                    pred.regime,
                    pred.total,
                    sim.total_cycles,
                    relative_error(pred, sim),
                    pred.efficiency,
                    sim.efficiency,
                )
            )
    print(
        format_table(
            [
                "config",
                "regime",
                "predicted cyc",
                "simulated cyc",
                "rel err",
                "pred eff",
                "sim eff",
            ],
            rows,
            title=(
                f"Closed-form model vs discrete-event simulation "
                f"(P={processors})"
            ),
        )
    )

    # --- chains: the regime boundary ------------------------------------
    print("\nchain loops y[i] += c·y[i−d]:")
    chain_rows = []
    for d in (1, 2, 4, 8, 16, 32):
        loop = repro.chain_loop(3000, d)
        sim = runner.run(loop)
        pred = predict_chain_loop(3000, d, processors)
        chain_rows.append(
            (f"d={d}", pred.regime, pred.total, sim.total_cycles,
             relative_error(pred, sim))
        )
    print(
        format_table(
            ["config", "regime", "predicted", "simulated", "rel err"],
            chain_rows,
        )
    )

    # --- 3: why — the timelines -----------------------------------------
    chain = repro.chain_loop(200, 1)
    print("\ndistance-1 chain under BLOCK scheduling — the serialized")
    print("staircase ('.' = busy-wait):")
    blocked = runner.run(chain, schedule="block", trace=True)
    print(blocked.extras["trace"].gantt(width=70))

    print("\nthe same chain under CYCLIC chunk-1 — pipelined:")
    pipelined = runner.run(chain, schedule="cyclic", chunk=1, trace=True)
    print(pipelined.extras["trace"].gantt(width=70))
    print(
        f"\nmakespans: block {blocked.total_cycles} vs cyclic-1 "
        f"{pipelined.total_cycles} cycles — the model attributes the gap "
        f"to the chain pipelining at the post-wake rate "
        f"(flag check + term consume + flag set per link)"
    )


if __name__ == "__main__":
    main()
