"""Workloads at the edge of what the symbolic engine can prove.

The engine's abstract domains (affine, congruence, interval,
monotonicity) cover a strict superset of the paper's linear-subscript
case — but not everything: a non-injective closed form or a truly
runtime subscript must fall back to the inspector.  This portfolio
exercises both sides of that frontier; CI cross-checks every verdict
(``python -m repro analyze workloads/ --cross-check``), which on the
runtime-only loops validates that the engine *honestly* declines rather
than overclaims.

Run: ``python workloads/symbolic_frontier.py`` for a quick verdict dump.
"""

import repro
from repro.ir.subscript import ExprSubscript, Index
from repro.workloads.synthetic import affine_loop


def build_loops() -> dict:
    """Closed-form-but-not-affine loops plus runtime-only fallbacks."""
    i = Index()
    return {
        # Identity write, read y[i // 2]: the dependence distance
        # i - i//2 *varies* with i, so no constant-distance or DOALL
        # proof exists — the engine must keep the inspector even though
        # every subscript is closed-form.
        "halving-read": affine_loop(
            200,
            (1, 0),
            [ExprSubscript(i // 2)],
            name="halving-read",
        ),
        # Write 4i + (i % 2): injective in truth (stride 4 dominates the
        # mod-2 wobble), but compound mod-affine injectivity is beyond
        # the current domains — the engine declines with runtime-only
        # rather than overclaim, and the cross-check certifies the
        # decline is sound.
        "mod-stagger": affine_loop(
            200,
            ExprSubscript(i * 4 + i % 2),
            [ExprSubscript(i * 4 + 2)],
            name="mod-stagger",
        ),
        # Runtime permutation write: dependence is data, the verdict is
        # runtime-only and the loop keeps its inspector (Figure 1).
        "opaque-random": repro.random_irregular_loop(200, seed=11),
    }


def main() -> None:
    from repro.analysis import analyze_loop

    for name, loop in build_loops().items():
        verdict = analyze_loop(loop)
        print(f"== {name} ==")
        print(verdict.describe())
        print()


if __name__ == "__main__":
    main()
