"""Workloads the symbolic engine proves outright (paper §2.3).

Every loop here has closed-form subscripts, so the symbolic dependence
engine produces a non-runtime-only verdict and the inspector is elidable
(``analyze="symbolic"``).  CI lints this portfolio
(``python -m repro lint workloads/ --strict --baseline=...``) and
cross-checks every verdict against the runtime inspector
(``python -m repro analyze workloads/ --cross-check``).

Run: ``python workloads/proven_affine.py`` for a quick verdict dump.
"""

import repro
from repro.workloads.synthetic import affine_loop


def build_loops() -> dict:
    """The proven-affine portfolio CI analyzes and lints."""
    return {
        # Uniform recurrence y[i] += c*y[i-3]: constant-distance DOACROSS.
        "chain-d3": repro.chain_loop(400, 3),
        # The paper's Figure-4 test loop, even L: injective identity
        # write, reads at mixed distances -> injective-write verdict.
        "figure4-dep": repro.make_test_loop(n=400, m=2, l=8),
        # Odd L: the same shape but no read ever lands on a written
        # element -> DOALL proven for every input.
        "figure4-indep": repro.make_test_loop(n=400, m=2, l=7),
        # Strided write 2i with reads off the opposite parity: the
        # congruence domain proves the reads never touch written
        # elements -> DOALL.
        "stride-disjoint": affine_loop(
            300, (2, 0), [(2, 1)], name="stride-disjoint"
        ),
        # Strided write with an aligned read at distance 1 (2(i-1) =
        # 2i - 2): constant-distance DOACROSS through the stride.
        "stride-chain": affine_loop(
            300, (2, 0), [(2, -2)], name="stride-chain"
        ),
    }


def main() -> None:
    from repro.analysis import analyze_loop

    for name, loop in build_loops().items():
        verdict = analyze_loop(loop)
        print(f"== {name} ==")
        print(verdict.describe())
        print()


if __name__ == "__main__":
    main()
