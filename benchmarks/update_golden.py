"""Regenerate the golden experiment records in ``benchmarks/golden/``.

The simulator is deterministic, so the paper experiments produce *exactly*
the same cycle counts on every run of the same code.  The golden files pin
those numbers; ``tests/test_golden.py`` compares fresh runs against them
bit-for-bit, so any unintended change to the cost model, the engine, or a
workload generator fails loudly.

Intentional changes (e.g. recalibrating the cost model) are made explicit
by rerunning::

    python benchmarks/update_golden.py

and committing the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def figure6_record() -> dict:
    from repro.bench.figure6 import run_figure6

    result = run_figure6(n=2000)  # reduced N: fast yet fully deterministic
    return {
        "n": result.n,
        "processors": result.processors,
        "points": {
            f"M={row.params['m']},L={row.params['l']}": {
                "total_cycles": int(row.result.total_cycles),
                "sequential_cycles": int(row.result.sequential_cycles),
                "wait_cycles": int(row.result.wait_cycles),
            }
            for row in result.rows
        },
    }


def table1_record() -> dict:
    from repro.bench.table1 import run_table1

    result = run_table1(small=True)
    return {
        "processors": result.processors,
        "rows": {
            row.label: {
                "sequential_cycles": int(row.metrics["sequential_cycles"]),
                "plain_cycles": int(row.metrics["plain_cycles"]),
                "reordered_cycles": int(row.metrics["reordered_cycles"]),
                "n": int(row.params["n"]),
                "levels": int(row.params["n_levels"]),
            }
            for row in result.rows
        },
    }


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in (
        ("figure6.json", figure6_record),
        ("table1.json", table1_record),
    ):
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(builder(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
