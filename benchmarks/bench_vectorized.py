"""Measured wall clock: the vectorized wavefront backend's headline claim.

Unlike the simulated experiments, this one times real execution: on a
100k-iteration Figure-4 loop (odd ``L`` → one wavefront) the warm
vectorized backend must beat the threaded backend by at least 5× wall
clock, and the second run must be served by the inspector cache.
"""

from conftest import run_once

from repro.bench.bench_vectorized import run_bench_vectorized


def test_vectorized_wallclock(benchmark):
    result = run_once(benchmark, run_bench_vectorized, n=100_000, m=5, l=7)
    result.check(min_speedup=5.0)
    assert result.warm_cache_hit
    assert result.cache_stats["misses"] == 1
    print()
    print(result.report())
