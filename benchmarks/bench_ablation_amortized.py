"""Ablation G: inspector amortization over repeated loop instances.

The paper's own workload re-executes one triangular solve per Krylov
iteration with unchanged subscripts; sharing a single inspector pass drives
the per-instance cost down toward the executor + reduced-postprocessor
floor.  Monotone convergence asserted.
"""

from conftest import run_once

from repro.bench.ablations import ablation_amortization
from repro.bench.reporting import format_table


def test_ablation_amortization(benchmark):
    rows = run_once(benchmark, ablation_amortization)
    per_instance = [r.metrics["per_instance_cycles"] for r in rows]
    assert per_instance == sorted(per_instance, reverse=True)
    gains = [r.metrics["gain_vs_full"] for r in rows]
    assert gains == sorted(gains)
    assert gains[-1] > 1.15
    print()
    print(
        format_table(
            ["config", "per-instance cyc", "gain vs full pipeline"],
            [
                (
                    r.label,
                    round(r.metrics["per_instance_cycles"]),
                    r.metrics["gain_vs_full"],
                )
                for r in rows
            ],
            title="Ablation G — inspector amortization",
        )
    )
