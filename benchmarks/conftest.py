"""Shared helpers for the benchmark suite.

Every experiment here is deterministic (discrete-event simulation), so each
benchmark runs one round: variance across rounds would only measure host
noise, not the simulated system.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
