"""Extension experiment: the Krylov motivation (paper §3.2's framing).

``pytest benchmarks/bench_krylov_fraction.py --benchmark-only`` runs
ILU(0)-preconditioned CG/GMRES on all five appendix problems with
sequential and with parallel-doacross triangular solves, asserting the
"large fraction" claim (>35% everywhere; measured ≈60–65%) and the
whole-solver payoff (>1.2×; measured ≈2.2×).
"""

from conftest import run_once

from repro.bench.krylov_fraction import run_krylov_fraction


def test_krylov_fraction(benchmark):
    result = run_once(benchmark, run_krylov_fraction)
    result.check_shape()
    print()
    print(result.report())
    fractions = [r.metrics["precond_fraction_seq"] for r in result.rows]
    assert min(fractions) > 0.5  # the paper's "large fraction", measured
    solver_speedups = [r.metrics["solver_speedup"] for r in result.rows]
    assert min(solver_speedups) > 2.0
