"""Ablation A: executor schedule kind × chunk size (DESIGN.md §5).

Chunked schedules place adjacent iterations on one processor and serialize
short dependence chains; cyclic chunk-1 maximizes chain pipelining; dynamic
self-scheduling adds dispatch-counter serialization.
"""

from conftest import run_once

from repro.bench.ablations import ablation_scheduling
from repro.bench.reporting import format_table


def test_ablation_scheduling(benchmark):
    rows = run_once(benchmark, ablation_scheduling)
    by = {r.label: r for r in rows}
    # Tight chain (L=8 → distance 3): cyclic-1 must beat big chunks and
    # the block schedule.
    assert (
        by["cyclic/chunk=1"].result.total_cycles
        < by["cyclic/chunk=64"].result.total_cycles
    )
    assert (
        by["cyclic/chunk=1"].result.total_cycles
        < by["block/chunk=1"].result.total_cycles
    )
    print()
    print(
        format_table(
            ["config", "efficiency", "wait cycles", "total cycles"],
            [
                (
                    r.label,
                    r.result.efficiency,
                    r.result.wait_cycles,
                    r.result.total_cycles,
                )
                for r in rows
            ],
            title="Ablation A — schedule kind x chunk (Figure-4, M=1, L=8)",
        )
    )
