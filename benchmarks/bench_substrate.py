"""Microbenchmarks of the substrates themselves (not paper artifacts).

Tracks the host-side cost of the pieces every experiment leans on: the
discrete-event engine's op throughput, ILU(0) factorization, CSR matvec,
and the full preprocessed-doacross pipeline on a mid-size loop.  Useful for
catching performance regressions in the simulator, which directly gate how
large an experiment the harness can afford.
"""

import numpy as np

from repro.core.doacross import PreprocessedDoacross
from repro.machine.costs import CostModel
from repro.machine.engine import Engine
from repro.machine.ops import Compute
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point, seven_point
from repro.sparse.trisolve import lower_solve_loop
from repro.workloads.testloop import make_test_loop


def test_engine_compute_throughput(benchmark):
    """Raw engine overhead: 16 processors x 20k Compute ops."""

    def run():
        engine = Engine(CostModel())

        def task(st):
            for _ in range(20_000):
                yield Compute(3)

        return engine.run("t", [task] * 16)

    phase = benchmark(run)
    assert phase.span == 60_000


def test_preprocessed_doacross_pipeline(benchmark):
    """Full pipeline on the Figure-4 loop (N=5000, M=2)."""
    loop = make_test_loop(n=5000, m=2, l=8)
    runner = PreprocessedDoacross(processors=16)
    result = benchmark(runner.run, loop)
    assert result.total_cycles > 0


def test_ilu0_five_point(benchmark):
    A = five_point(63, 63)
    L, U = benchmark(ilu0, A)
    assert L.nnz + U.nnz == A.nnz + A.n_rows


def test_ilu0_seven_point(benchmark):
    A = seven_point(20, 20, 20)
    L, _ = benchmark(ilu0, A)
    assert L.n_rows == 8000


def test_csr_matvec(benchmark):
    A = seven_point(20, 20, 20)
    x = np.linspace(0.0, 1.0, A.n_cols)
    y = benchmark(A.matvec, x)
    assert y.shape == (8000,)


def test_trisolve_loop_construction(benchmark):
    A = five_point(63, 63)
    L, _ = ilu0(A)
    rhs = np.ones(A.n_rows)
    loop = benchmark(lower_solve_loop, L, rhs)
    assert loop.n == 3969
