"""Ablation F: coherence misses × schedule (DESIGN.md §5).

On a distance-1 chain, cyclic chunk-1 pipelines but pays an invalidation
miss per dependence; block scheduling keeps the chain cache-local but
serializes it.  The winner flips as the miss cost grows — both directions
asserted here.
"""

from conftest import run_once

from repro.bench.ablations import ablation_coherence
from repro.bench.reporting import format_table


def test_ablation_coherence(benchmark):
    rows = run_once(benchmark, ablation_coherence)
    by = {r.label: r for r in rows}
    # Cheap misses: pipelining wins.
    assert (
        by["cyclic/miss=0"].result.total_cycles
        < by["block/miss=0"].result.total_cycles
    )
    # Expensive misses: locality wins.
    assert (
        by["block/miss=200"].result.total_cycles
        < by["cyclic/miss=200"].result.total_cycles
    )
    # Cyclic pays ~one miss per dependence; block only at boundaries.
    assert by["cyclic/miss=10"].metrics["misses"] > 50 * (
        by["block/miss=10"].metrics["misses"]
    )
    print()
    print(
        format_table(
            ["config", "misses", "efficiency", "total cycles"],
            [
                (
                    r.label,
                    r.metrics["misses"],
                    r.result.efficiency,
                    r.result.total_cycles,
                )
                for r in rows
            ],
            title="Ablation F — coherence x schedule (distance-1 chain)",
        )
    )
