"""Ablation B: strip-mine block size (paper §2.3, DESIGN.md §5).

Smaller blocks shrink the scratch footprint (the §2.3 motivation) at the
price of extra barriers and lost cross-block overlap.
"""

from conftest import run_once

from repro.bench.ablations import ablation_stripmine
from repro.bench.reporting import format_table


def test_ablation_stripmine(benchmark):
    rows = run_once(benchmark, ablation_stripmine)
    blocked = [r for r in rows if r.params["block"]]
    scratch = [r.metrics["scratch_elements"] for r in blocked]
    assert scratch == sorted(scratch), "scratch must shrink with block size"
    totals = [r.result.total_cycles for r in blocked]
    assert totals[0] >= totals[-1], "tiny blocks must not be free"
    print()
    print(
        format_table(
            ["config", "scratch elems", "efficiency", "total cycles"],
            [
                (
                    r.label,
                    r.metrics["scratch_elements"],
                    r.result.efficiency,
                    r.result.total_cycles,
                )
                for r in rows
            ],
            title="Ablation B — strip-mine block size (Figure-4, M=2, L=8)",
        )
    )
