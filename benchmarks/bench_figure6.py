"""Benchmark: regenerate the paper's Figure 6.

``pytest benchmarks/bench_figure6.py --benchmark-only`` reruns the full
sweep (N = 10000, M ∈ {1, 5}, L = 1..14, 16 processors), prints the
measured efficiency series next to the paper's plateaus, and *fails* if the
qualitative shape stops matching (flat odd-L plateaus at ≈0.33/0.49,
monotone even-L rise below the plateau).
"""

from conftest import run_once

from repro.bench.figure6 import PAPER_PLATEAU, run_figure6


def test_figure6_full_sweep(benchmark):
    result = run_once(benchmark, run_figure6, n=10000)
    result.check_shape()
    print()
    print(result.report())


def test_figure6_m1_series(benchmark):
    result = run_once(benchmark, run_figure6, n=10000, ms=(1,))
    result.check_shape()
    plateau = result.plateau(1)
    assert abs(plateau - PAPER_PLATEAU[1]) < 0.06
    print(f"\nM=1 plateau: measured {plateau:.3f}, paper ≈{PAPER_PLATEAU[1]}")


def test_figure6_m5_series(benchmark):
    result = run_once(benchmark, run_figure6, n=10000, ms=(5,))
    result.check_shape()
    plateau = result.plateau(5)
    assert abs(plateau - PAPER_PLATEAU[5]) < 0.06
    print(f"\nM=5 plateau: measured {plateau:.3f}, paper ≈{PAPER_PLATEAU[5]}")
