"""Ablation E: shared-bus contention (DESIGN.md §5).

With the bus model on, every shared access also occupies a single serial
bus; total time must grow monotonically with the per-access bus cost and
the bus must become the bottleneck at high cost.
"""

from conftest import run_once

from repro.bench.ablations import ablation_bus
from repro.bench.reporting import format_table


def test_ablation_bus(benchmark):
    rows = run_once(benchmark, ablation_bus)
    totals = [r.result.total_cycles for r in rows]
    assert totals == sorted(totals)
    assert totals[-1] > totals[0]
    print()
    print(
        format_table(
            ["config", "efficiency", "total cycles"],
            [
                (r.label, r.result.efficiency, r.result.total_cycles)
                for r in rows
            ],
            title="Ablation E — bus contention (Figure-4, M=2, L=5)",
        )
    )
