"""Model-validation bench: closed-form predictions vs. the simulator.

Prints the predicted-vs-simulated table across the Figure-4 family and
chain loops, and fails if the analytic model's worst relative error on
total makespan exceeds 7% — a strong regression net for both the model
*and* the simulator (an unintended cost change breaks this immediately).
"""

from conftest import run_once

from repro.bench.model import (
    predict_chain_loop,
    predict_figure4,
    relative_error,
)
from repro.bench.reporting import format_table
from repro.core.doacross import PreprocessedDoacross
from repro.workloads.synthetic import chain_loop
from repro.workloads.testloop import make_test_loop


def _validate():
    runner = PreprocessedDoacross(processors=16)
    rows = []
    worst = 0.0
    for m in (1, 2, 5):
        for l in (3, 4, 8, 12, 14):
            sim = runner.run(make_test_loop(n=4000, m=m, l=l))
            pred = predict_figure4(4000, m, l, 16)
            err = relative_error(pred, sim)
            worst = max(worst, err)
            rows.append(
                (
                    f"fig4 M={m} L={l}",
                    pred.regime,
                    pred.total,
                    sim.total_cycles,
                    err,
                )
            )
    for d in (1, 4, 16):
        sim = runner.run(chain_loop(3000, d))
        pred = predict_chain_loop(3000, d, 16)
        err = relative_error(pred, sim)
        worst = max(worst, err)
        rows.append(
            (f"chain d={d}", pred.regime, pred.total, sim.total_cycles, err)
        )
    return rows, worst


def test_model_validation(benchmark):
    rows, worst = run_once(benchmark, _validate)
    print()
    print(
        format_table(
            ["workload", "regime", "predicted", "simulated", "rel err"],
            rows,
            title="Analytic model vs. discrete-event simulation",
        )
    )
    print(f"\nworst relative error: {worst:.3f}")
    assert worst < 0.07
