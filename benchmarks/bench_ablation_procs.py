"""Ablation D: processor-count sweep on a Table-1 problem (DESIGN.md §5).

Speedup must grow with P while efficiency decays (barriers, chains, and
scheduling tails amortize worse); one processor measures pure machinery
overhead (speedup < 1).
"""

from conftest import run_once

from repro.bench.ablations import ablation_processors
from repro.bench.reporting import format_table


def test_ablation_processors(benchmark):
    rows = run_once(benchmark, ablation_processors, problem="5-PT")
    speedups = [r.metrics["reordered_speedup"] for r in rows]
    assert speedups == sorted(speedups)
    assert rows[0].metrics["plain_speedup"] < 1.0
    effs = [r.metrics["reordered_efficiency"] for r in rows]
    assert effs == sorted(effs, reverse=True)
    print()
    print(
        format_table(
            [
                "P",
                "plain speedup",
                "reord speedup",
                "plain eff",
                "reord eff",
            ],
            [
                (
                    r.params["processors"],
                    r.metrics["plain_speedup"],
                    r.metrics["reordered_speedup"],
                    r.metrics["plain_efficiency"],
                    r.metrics["reordered_efficiency"],
                )
                for r in rows
            ],
            title="Ablation D — processor sweep (5-PT forward solve)",
        )
    )
