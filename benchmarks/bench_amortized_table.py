"""Extension experiment "Table 2": amortization over repeated solves.

``pytest benchmarks/bench_amortized_table.py --benchmark-only`` reruns the
per-solve comparison across the five Table-1 problems at full size and
fails if the expected ordering (amort+reord cheapest everywhere; every
amortized/reordered mode beats the full-pipeline baseline) inverts.
"""

from conftest import run_once

from repro.bench.amortized_table import run_amortized_table


def test_amortized_table(benchmark):
    result = run_once(benchmark, run_amortized_table)
    result.check_shape()
    print()
    print(result.report())
    gains = {
        r.label: r.metrics["full"] / r.metrics["amort+reord"]
        for r in result.rows
    }
    # The chain-dominated point stencil benefits most.
    assert gains["5-PT"] == max(gains.values())
    assert gains["5-PT"] > 1.5
