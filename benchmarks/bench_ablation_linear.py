"""Ablation C: the §2.3 linear-subscript variant (DESIGN.md §5).

With a statically affine write subscript, the inspector phase and the
``iter`` array vanish; the saved cycles equal the inspector span plus one
barrier — measured here directly.
"""

from conftest import run_once

from repro.bench.ablations import ablation_linear
from repro.bench.reporting import format_table


def test_ablation_linear(benchmark):
    rows = run_once(benchmark, ablation_linear)
    by = {r.label: r for r in rows}
    for m in (1, 5):
        standard = by[f"M={m}/standard"]
        linear = by[f"M={m}/linear"]
        assert linear.metrics["inspector_cycles"] == 0
        assert linear.result.total_cycles < standard.result.total_cycles
    print()
    print(
        format_table(
            ["config", "inspector cyc", "efficiency", "total cycles"],
            [
                (
                    r.label,
                    r.metrics["inspector_cycles"],
                    r.result.efficiency,
                    r.result.total_cycles,
                )
                for r in rows
            ],
            title="Ablation C — inspector elimination (Figure-4, odd L)",
        )
    )
