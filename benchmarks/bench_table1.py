"""Benchmark: regenerate the paper's Table 1.

``pytest benchmarks/bench_table1.py --benchmark-only`` reruns all five
triangular-solve problems at the paper's exact sizes on 16 simulated
processors, prints the three-column table (natural doacross, doconsider-
rearranged, sequential) with the paper's numbers alongside, and fails if
the shape inverts (reordered must beat natural, both must beat sequential,
efficiencies must land in the acceptance bands).
"""

from conftest import run_once

from repro.bench.table1 import run_table1


def test_table1_full(benchmark):
    result = run_once(benchmark, run_table1)
    result.check_shape()
    print()
    print(result.report())


def test_table1_reordering_gain(benchmark):
    """The headline Table-1 effect: doconsider reordering buys a clear
    speedup over natural order on the stencil problems."""
    result = run_once(benchmark, run_table1, verify_values=False)
    gains = {
        r.label: r.metrics["plain_cycles"] / r.metrics["reordered_cycles"]
        for r in result.rows
    }
    print(f"\nreordering gains: { {k: round(v, 2) for k, v in gains.items()} }")
    assert gains["5-PT"] > 1.5  # paper: 37/19 ≈ 1.9
    assert all(g >= 1.0 for g in gains.values())
