"""Tests for transformation-strategy selection (the "compiler")."""

import numpy as np
import pytest

from repro.ir.accesses import ReadTable
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import IndirectSubscript
from repro.ir.transform import (
    STRATEGY_CLASSIC_DOACROSS,
    STRATEGY_DOALL,
    STRATEGY_LINEAR,
    STRATEGY_PREPROCESSED,
    plan_transform,
)
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop


def indirect_loop():
    return random_irregular_loop(20, seed=0)


def affine_loop():
    return make_test_loop(n=20, m=1, l=4)


def no_reads_loop():
    return IrregularLoop(
        n=4,
        y_size=4,
        write_subscript=IndirectSubscript(np.array([2, 0, 3, 1])),
        reads=ReadTable.from_lists([[], [], [], []]),
    )


class TestStrategySelection:
    def test_no_reads_is_doall(self):
        plan = plan_transform(no_reads_loop())
        assert plan.strategy == STRATEGY_DOALL
        assert not plan.needs_inspector
        assert not plan.needs_postprocess

    def test_asserted_independence_is_doall(self):
        plan = plan_transform(indirect_loop(), assert_independent=True)
        assert plan.strategy == STRATEGY_DOALL
        assert "asserts" in plan.reason

    def test_known_distance_is_classic(self):
        plan = plan_transform(indirect_loop(), known_distance=3)
        assert plan.strategy == STRATEGY_CLASSIC_DOACROSS
        assert plan.uniform_distance == 3
        assert not plan.needs_inspector

    def test_affine_write_is_linear(self):
        plan = plan_transform(affine_loop())
        assert plan.strategy == STRATEGY_LINEAR
        assert not plan.needs_inspector
        assert plan.needs_postprocess
        assert "§2.3" in plan.reason or "2.3" in plan.reason

    def test_indirect_write_is_preprocessed(self):
        plan = plan_transform(indirect_loop())
        assert plan.strategy == STRATEGY_PREPROCESSED
        assert plan.needs_inspector
        assert plan.needs_postprocess


class TestValidation:
    def test_mutually_exclusive_hints(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            plan_transform(
                indirect_loop(), assert_independent=True, known_distance=2
            )

    def test_distance_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            plan_transform(indirect_loop(), known_distance=0)


class TestDescribe:
    def test_describe_lists_phases(self):
        d = plan_transform(indirect_loop()).describe()
        assert "inspector" in d
        assert "executor" in d
        assert "postprocessor" in d

    def test_linear_describe_omits_inspector(self):
        d = plan_transform(affine_loop()).describe()
        assert "inspector" not in d

    def test_subscript_structure_not_values_drives_choice(self):
        """Planning uses static structure only: an affine-write loop is
        planned 'linear' even when its values would allow doall."""
        loop = make_test_loop(n=20, m=1, l=3)  # odd L: value-level doall
        assert plan_transform(loop).strategy == STRATEGY_LINEAR
