"""The statistical regression gate (ISSUE 8 tentpole, part 2).

The two acceptance properties from the issue: an injected 2x slowdown on
one key is flagged — and *only* that key — while a jittered-but-stable
series raises nothing.  Plus the robustness machinery underneath: MAD
outlier rejection, the median-of-k candidate, the minimum-effect floor,
and the short-baseline skip.
"""

from __future__ import annotations

import pytest

from repro.perf.compare import (
    compare_history,
    format_comparisons,
    group_history,
    reject_outliers,
)


def row(benchmark, backend, wall, sha, n=1000):
    return {
        "benchmark": benchmark,
        "backend": backend,
        "n": n,
        "wall_seconds": wall,
        "git_sha": sha,
        "date": "2026-08-08T00:00:00+00:00",
        "machine": {"cpu_count": 8, "python": "3.11.0", "platform": "linux"},
        "schema_version": 1,
    }


def series(benchmark, backend, walls, final_sha="sha-new"):
    """One history bucket: one commit per wall sample, the last one being
    the candidate commit."""
    rows = [
        row(benchmark, backend, w, f"sha-{i:03d}")
        for i, w in enumerate(walls[:-1])
    ]
    rows.append(row(benchmark, backend, walls[-1], final_sha))
    return rows


#: ±10% deterministic jitter around 100ms — stable by any honest gate.
JITTERED = [0.100, 0.108, 0.094, 0.103, 0.091, 0.106, 0.097, 0.110,
            0.093, 0.102]


class TestRejectOutliers:
    def test_far_sample_dropped(self):
        samples = [0.100, 0.101, 0.099, 0.102, 0.098, 0.500]
        kept, rejected = reject_outliers(samples)
        assert rejected == 1
        assert 0.500 not in kept

    def test_tight_samples_all_kept(self):
        kept, rejected = reject_outliers(JITTERED)
        assert rejected == 0
        assert kept == JITTERED

    def test_fewer_than_four_untouched(self):
        assert reject_outliers([1.0, 100.0, 0.001]) == ([1.0, 100.0, 0.001], 0)

    def test_zero_mad_untouched(self):
        assert reject_outliers([0.1] * 6) == ([0.1] * 6, 0)


class TestGrouping:
    def test_keys_and_order(self):
        rows = series("b1", "threaded", [0.1, 0.2, 0.3]) + series(
            "b1", "vectorized", [0.01, 0.02]
        )
        groups = group_history(rows)
        assert set(groups) == {
            ("b1", "threaded", 1000),
            ("b1", "vectorized", 1000),
        }
        walls = [r["wall_seconds"] for r in groups[("b1", "threaded", 1000)]]
        assert walls == [0.1, 0.2, 0.3]  # file order preserved


class TestGate:
    def test_injected_2x_slowdown_flagged_and_only_that_key(self):
        rows = (
            series("b1", "threaded", JITTERED + [0.200])  # 2x on the last sha
            + series("b1", "vectorized", JITTERED + [0.099])  # stable
        )
        verdicts = {c.key: c for c in compare_history(rows)}
        assert verdicts["b1/threaded/n=1000"].regressed
        assert not verdicts["b1/vectorized/n=1000"].regressed
        assert verdicts["b1/threaded/n=1000"].rel_excess > 0.5

    def test_jittered_but_stable_series_not_flagged(self):
        # Candidate at the jitter ceiling: within the band, not a regression.
        rows = series("b1", "threaded", JITTERED + [0.110])
        (verdict,) = compare_history(rows)
        assert not verdict.regressed
        assert not verdict.skipped

    def test_candidate_is_median_of_trailing_sha_block(self):
        # Three repeats on the candidate sha: one hiccup cannot flag it.
        rows = series("b1", "threaded", JITTERED)[:-1]
        rows += [
            row("b1", "threaded", w, "sha-new") for w in (0.101, 0.450, 0.099)
        ]
        (verdict,) = compare_history(rows)
        assert verdict.candidate_count == 3
        assert verdict.candidate_median == pytest.approx(0.101)
        assert not verdict.regressed

    def test_outlier_in_baseline_cannot_mask_regression(self):
        # A historic 10x spike would inflate a naive mean baseline; MAD
        # rejection keeps the gate honest.
        walls = JITTERED[:5] + [1.0] + JITTERED[5:] + [0.200]
        rows = series("b1", "threaded", walls)
        (verdict,) = compare_history(rows)
        assert verdict.rejected_outliers == 1
        assert verdict.regressed

    def test_min_effect_floor_silences_microbench_noise(self):
        # 2x relative, but 2µs absolute: below any machine's resolution.
        rows = series("b1", "threaded", [2e-6] * 8 + [4e-6])
        (verdict,) = compare_history(rows)
        assert not verdict.regressed

    def test_short_baseline_skipped_not_judged(self):
        rows = series("b1", "threaded", [0.1, 0.1, 0.4])
        (verdict,) = compare_history(rows)
        assert verdict.skipped
        assert not verdict.regressed
        assert "baseline too short" in verdict.reason

    def test_window_bounds_baseline(self):
        # Ancient slow rows age out of the window: only the recent past
        # counts as the baseline.
        rows = series("b1", "threaded", [0.400] * 10 + JITTERED + [0.103])
        (verdict,) = compare_history(rows, window=10)
        assert verdict.baseline_median == pytest.approx(0.1, abs=0.01)
        assert not verdict.regressed

    def test_threshold_is_relative(self):
        rows = series("b1", "threaded", JITTERED + [0.125])  # +25%
        (lenient,) = compare_history(rows, threshold=0.30)
        (strict,) = compare_history(rows, threshold=0.10)
        assert not lenient.regressed
        assert strict.regressed


class TestReporting:
    def test_as_dict_json_safe(self):
        import json

        rows = series("b1", "threaded", JITTERED + [0.2])
        (verdict,) = compare_history(rows)
        assert json.loads(json.dumps(verdict.as_dict())) == verdict.as_dict()

    def test_format_orders_regressions_first(self):
        rows = (
            series("b1", "threaded", JITTERED + [0.3])
            + series("b1", "vectorized", JITTERED + [0.1])
            + series("b2", "threaded", [0.1, 0.1, 0.1])  # skipped
        )
        report = format_comparisons(compare_history(rows))
        lines = [ln for ln in report.splitlines() if "n=1000" in ln]
        assert "REGRESSED" in lines[0]
        assert "skipped" in lines[-1]

    def test_empty_history_reports_nothing(self):
        assert "no history" in format_comparisons([])


class TestCompareCli:
    def _write(self, tmp_path, rows):
        from repro.perf.history import append_history

        path = tmp_path / "h.jsonl"
        append_history(rows, path)
        return path

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.perf.cli import main as perf_main

        path = self._write(
            tmp_path, series("b1", "threaded", JITTERED + [0.250])
        )
        assert perf_main(["compare", f"--history={path}"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "1 regressed" in out

    def test_report_mode_soft_fails(self, tmp_path, capsys):
        from repro.perf.cli import main as perf_main

        path = self._write(
            tmp_path, series("b1", "threaded", JITTERED + [0.250])
        )
        assert perf_main(["compare", f"--history={path}", "--report"]) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_stable_history_exits_zero(self, tmp_path):
        from repro.perf.cli import main as perf_main

        path = self._write(
            tmp_path, series("b1", "threaded", JITTERED + [0.102])
        )
        assert perf_main(["compare", f"--history={path}"]) == 0

    def test_missing_history_is_not_an_error(self, tmp_path, capsys):
        from repro.perf.cli import main as perf_main

        rc = perf_main(["compare", f"--history={tmp_path / 'none.jsonl'}"])
        assert rc == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        import json

        from repro.perf.cli import main as perf_main

        path = self._write(
            tmp_path, series("b1", "threaded", JITTERED + [0.250])
        )
        perf_main(["compare", f"--history={path}", "--json", "--report"])
        blob = json.loads(capsys.readouterr().out)
        assert blob["regressed"] == 1
        assert blob["comparisons"][0]["benchmark"] == "b1"
