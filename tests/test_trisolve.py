"""Tests for triangular solves and the Figure-7 loop encodings."""

import numpy as np
import pytest
import scipy.linalg

from repro.errors import MatrixFormatError
from repro.machine.costs import WorkProfile
from repro.sparse.csr import CSRMatrix
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import (
    TRISOLVE_WORK,
    lower_solve_loop,
    solve_lower_unit,
    solve_upper,
    upper_solve_loop,
)


@pytest.fixture
def factors():
    A = five_point(7, 7)
    L, U = ilu0(A)
    rhs = np.linspace(-1.0, 2.0, A.n_rows)
    return L, U, rhs


class TestSequentialSolves:
    def test_lower_matches_scipy(self, factors):
        L, _, rhs = factors
        ours = solve_lower_unit(L, rhs)
        ref = scipy.linalg.solve_triangular(
            L.to_dense(), rhs, lower=True, unit_diagonal=True
        )
        np.testing.assert_allclose(ours, ref, rtol=1e-12)

    def test_upper_matches_scipy(self, factors):
        _, U, rhs = factors
        ours = solve_upper(U, rhs)
        ref = scipy.linalg.solve_triangular(U.to_dense(), rhs, lower=False)
        np.testing.assert_allclose(ours, ref, rtol=1e-10)

    def test_full_preconditioner_application(self, factors):
        """L U x = rhs via the two solves matches a dense solve."""
        L, U, rhs = factors
        x = solve_upper(U, solve_lower_unit(L, rhs))
        ref = np.linalg.solve(L.to_dense() @ U.to_dense(), rhs)
        np.testing.assert_allclose(x, ref, rtol=1e-9)

    def test_lower_requires_unit_diagonal(self, factors):
        _, U, rhs = factors
        with pytest.raises(MatrixFormatError, match="unit-lower"):
            solve_lower_unit(U.transpose(), rhs)

    def test_rhs_shape_checked(self, factors):
        L, _, _ = factors
        with pytest.raises(MatrixFormatError):
            solve_lower_unit(L, np.ones(3))

    def test_upper_zero_diagonal_rejected(self):
        U = CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))
        U.data[U.indptr[1]] = 0.0  # zero the (1,1) pivot in place
        with pytest.raises(MatrixFormatError, match="zero diagonal"):
            solve_upper(U, np.ones(2))


class TestLoopEncodings:
    def test_lower_loop_matches_direct_solve(self, factors):
        L, _, rhs = factors
        loop = lower_solve_loop(L, rhs)
        np.testing.assert_allclose(
            loop.run_sequential(), solve_lower_unit(L, rhs), rtol=1e-12
        )

    def test_lower_loop_shape(self, factors):
        L, _, rhs = factors
        loop = lower_solve_loop(L, rhs)
        assert loop.n == L.n_rows
        assert loop.reads.total_terms == L.nnz - L.n_rows  # strict lower
        assert loop.work is TRISOLVE_WORK
        assert isinstance(loop.work, WorkProfile)

    def test_lower_loop_term_coefficients_negated(self, factors):
        L, _, rhs = factors
        loop = lower_solve_loop(L, rhs)
        # Figure 7: y(i) = rhs(i) - a(j) * y(column(j)).
        i = int(np.argmax(loop.reads.term_counts()))
        idx, coeff = loop.reads.terms_of(i)
        for j, c in zip(idx, coeff):
            assert c == -L.get(i, int(j))

    def test_upper_loop_matches_direct_solve(self, factors):
        _, U, rhs = factors
        loop = upper_solve_loop(U, rhs)
        np.testing.assert_allclose(
            loop.run_sequential(), solve_upper(U, rhs), rtol=1e-10
        )

    def test_upper_loop_reversed_iteration_space(self, factors):
        _, U, rhs = factors
        loop = upper_solve_loop(U, rhs)
        # Iteration p writes row n-1-p.
        assert loop.write[0] == U.n_rows - 1
        assert loop.write[-1] == 0

    def test_custom_name(self, factors):
        L, _, rhs = factors
        assert lower_solve_loop(L, rhs, name="X").name == "X"
