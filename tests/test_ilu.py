"""Tests for ILU(0), with dense LU (SciPy) as the oracle where exact."""

import numpy as np
import pytest
import scipy.linalg

from repro.errors import MatrixFormatError, SingularMatrixError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ilu import ilu0
from repro.sparse.spe import paper_problems
from repro.sparse.stencils import five_point


class TestFactorShapes:
    def test_l_unit_lower(self):
        L, _ = ilu0(five_point(4, 4))
        dense = L.to_dense()
        np.testing.assert_allclose(np.diag(dense), np.ones(16))
        np.testing.assert_allclose(np.triu(dense, 1), 0.0)

    def test_u_upper_with_pivots(self):
        _, U = ilu0(five_point(4, 4))
        dense = U.to_dense()
        np.testing.assert_allclose(np.tril(dense, -1), 0.0)
        assert (np.diag(dense) != 0).all()

    def test_pattern_preserved(self):
        """ILU(0) admits no fill: L/U patterns equal A's triangles."""
        A = five_point(5, 5)
        L, U = ilu0(A)
        lower = A.lower_triangle()
        upper = A.upper_triangle()
        np.testing.assert_array_equal(L.indptr, lower.indptr)
        np.testing.assert_array_equal(L.indices, lower.indices)
        np.testing.assert_array_equal(U.indptr, upper.indptr)
        np.testing.assert_array_equal(U.indices, upper.indices)


class TestExactness:
    def test_tridiagonal_is_exact(self):
        """Tridiagonal patterns have no LU fill, so ILU(0) == LU."""
        n = 12
        dense = (
            np.diag(np.full(n, 4.0))
            + np.diag(np.full(n - 1, -1.0), 1)
            + np.diag(np.full(n - 1, -1.5), -1)
        )
        L, U = ilu0(CSRMatrix.from_dense(dense))
        np.testing.assert_allclose(
            L.to_dense() @ U.to_dense(), dense, atol=1e-12
        )

    def test_dense_pattern_matches_scipy_lu(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(8, 8)) + 8 * np.eye(8)
        L, U = ilu0(CSRMatrix.from_dense(dense))
        # No pivoting in ILU(0); diagonally dominant A keeps plain LU stable.
        _, l_ref, u_ref = scipy.linalg.lu(dense)
        np.testing.assert_allclose(L.to_dense(), l_ref, atol=1e-10)
        np.testing.assert_allclose(U.to_dense(), u_ref, atol=1e-10)

    def test_residual_vanishes_on_pattern(self):
        """The defining ILU(0) property: (LU − A) is zero at every position
        inside A's sparsity pattern."""
        A = five_point(6, 6)
        L, U = ilu0(A)
        residual = L.to_dense() @ U.to_dense() - A.to_dense()
        mask = A.to_dense() != 0
        mask[np.diag_indices_from(mask)] = True
        assert np.abs(residual[mask]).max() < 1e-12

    def test_reasonable_preconditioner_for_paper_problems(self):
        """|LU − A| off-pattern stays bounded for all five test problems
        (small versions) — the factors are usable preconditioners."""
        for name, A in paper_problems(small=True).items():
            L, U = ilu0(A)
            residual = np.abs(
                L.to_dense() @ U.to_dense() - A.to_dense()
            ).max()
            scale = np.abs(A.to_dense()).max()
            assert residual < 0.5 * scale, name


class TestErrors:
    def test_non_square_rejected(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(MatrixFormatError, match="square"):
            ilu0(A)

    def test_missing_diagonal_rejected(self):
        dense = np.array([[1.0, 1.0], [1.0, 0.0]])  # (1,1) outside pattern
        with pytest.raises(SingularMatrixError) as exc:
            ilu0(CSRMatrix.from_dense(dense))
        assert exc.value.row == 1

    def test_zero_pivot_rejected(self):
        # Elimination drives the (1,1) pivot to exactly zero.
        dense = np.array([[2.0, 2.0], [2.0, 2.0]])
        with pytest.raises(SingularMatrixError):
            ilu0(CSRMatrix.from_dense(dense))

    def test_input_not_modified(self):
        A = five_point(4, 4)
        before = A.data.copy()
        ilu0(A)
        np.testing.assert_allclose(A.data, before)
