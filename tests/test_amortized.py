"""Tests for the amortized-inspector doacross."""

import numpy as np
import pytest

from repro.core.amortized import AmortizedDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.core.workspace import DoacrossWorkspace
from repro.errors import InvalidLoopError
from repro.machine.costs import CostModel
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop, solve_lower_unit
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop


def iterate_oracle(loop, instances, rhs_sequence=None):
    """Sequential composition of the loop with itself."""
    y = loop.y0.copy()
    for k in range(instances):
        clone = loop.with_name(loop.name)
        clone.y0 = y
        if rhs_sequence is not None:
            clone.init_values = np.asarray(rhs_sequence[k], dtype=np.float64)
        y = clone.run_sequential()
    return y


class TestSemantics:
    @pytest.mark.parametrize("instances", [1, 2, 5])
    def test_matches_iterated_oracle(self, instances):
        loop = make_test_loop(n=120, m=2, l=6)
        result = AmortizedDoacross(processors=8).run(loop, instances)
        np.testing.assert_allclose(
            result.y, iterate_oracle(loop, instances), rtol=1e-12
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_loops(self, seed):
        loop = random_irregular_loop(80, seed=seed)
        result = AmortizedDoacross(processors=8).run(loop, 3)
        np.testing.assert_allclose(
            result.y, iterate_oracle(loop, 3), rtol=1e-12
        )

    def test_per_instance_rhs(self):
        """Krylov-style: same triangular solve, fresh rhs each instance."""
        L, _ = ilu0(five_point(7, 7))
        n = L.n_rows
        rng = np.random.default_rng(0)
        rhs_sequence = [rng.normal(size=n) for _ in range(4)]
        loop = lower_solve_loop(L, np.zeros(n))
        result = AmortizedDoacross(processors=8).run(
            loop, 4, rhs_sequence=rhs_sequence
        )
        # The last solve determines the final y entirely (external init).
        np.testing.assert_allclose(
            result.y, solve_lower_unit(L, rhs_sequence[-1]), rtol=1e-12
        )

    def test_rhs_sequence_validation(self):
        loop = make_test_loop(n=10, m=1, l=3)  # old-value init
        with pytest.raises(InvalidLoopError, match="external-init"):
            AmortizedDoacross(processors=2).run(
                loop, 2, rhs_sequence=[np.zeros(10)] * 2
            )

    def test_rhs_sequence_length_checked(self):
        L, _ = ilu0(five_point(3, 3))
        loop = lower_solve_loop(L, np.zeros(9))
        with pytest.raises(InvalidLoopError, match="entries"):
            AmortizedDoacross(processors=2).run(
                loop, 3, rhs_sequence=[np.zeros(9)] * 2
            )

    def test_instances_validated(self):
        loop = make_test_loop(n=10, m=1, l=3)
        with pytest.raises(InvalidLoopError):
            AmortizedDoacross(processors=2).run(loop, 0)


class TestCostStructure:
    def test_single_inspector_run(self):
        cm = CostModel()
        loop = make_test_loop(n=400, m=1, l=3)
        result = AmortizedDoacross(processors=4).run(loop, 5)
        # Inspector span equals ONE inspector pass, not five.
        assert result.breakdown.inspector == 100 * cm.pre_iter
        assert result.extras["inspector_runs"] == 1
        assert result.extras["instances"] == 5

    def test_reduced_postprocessor_between_instances(self):
        cm = CostModel()
        loop = make_test_loop(n=400, m=1, l=3)
        result = AmortizedDoacross(processors=4).run(loop, 3)
        # Two reduced posts + one full post, 100 iterations each on 4 procs.
        expected = 100 * (2 * cm.post_iter_amortized + cm.post_iter)
        assert result.breakdown.postprocessor == expected

    def test_amortization_beats_repeated_full_runs(self):
        loop = make_test_loop(n=1000, m=1, l=5)
        runner = AmortizedDoacross(processors=16)
        amortized, full, gain = runner.amortization_gain(loop, 10)
        assert gain > 1.0
        assert amortized.total_cycles < 10 * full.total_cycles

    def test_gain_grows_with_instances(self):
        loop = make_test_loop(n=1000, m=1, l=5)
        runner = AmortizedDoacross(processors=16)
        _, _, g2 = runner.amortization_gain(loop, 2)
        _, _, g10 = runner.amortization_gain(loop, 10)
        assert g10 > g2

    def test_efficiency_baseline_scales_with_instances(self):
        loop = make_test_loop(n=500, m=2, l=3)
        cm = CostModel()
        result = AmortizedDoacross(processors=8).run(loop, 4)
        from repro.core.sequential import sequential_time

        assert result.sequential_cycles == 4 * sequential_time(loop, cm)


class TestWorkspaceDiscipline:
    def test_workspace_clean_after_final_instance(self):
        ws = DoacrossWorkspace()
        pd = PreprocessedDoacross(processors=4, workspace=ws)
        loop = random_irregular_loop(60, seed=1)
        AmortizedDoacross(doacross=pd).run(loop, 4)
        assert ws.is_clean()

    def test_reusable_after_amortized_run(self):
        ws = DoacrossWorkspace()
        pd = PreprocessedDoacross(processors=4, workspace=ws)
        loop = random_irregular_loop(60, seed=2)
        AmortizedDoacross(doacross=pd).run(loop, 2)
        other = random_irregular_loop(60, seed=3)
        result = pd.run(other)
        np.testing.assert_allclose(result.y, other.run_sequential())
