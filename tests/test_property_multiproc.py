"""Property-based conformance of the multiprocessing backend.

The multiproc executor must agree with the sequential oracle on
*arbitrary* runtime dependence structures — not just the curated matrix
of ``test_conformance_matrix.py`` — under arbitrary chunk sizes, with
and without doconsider reordering, and on loops the symbolic engine
declines (where the runtime inspector is the only source of truth).

One 2-worker pool is shared across the whole module (hypothesis runs
dozens of examples; respawning processes per example would dominate the
runtime and hide session-reuse bugs rather than exercise them).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import MultiprocRunner
from repro.core.doconsider import level_order
from repro.workloads.synthetic import chain_loop, random_irregular_loop


@pytest.fixture(scope="module")
def pool():
    runner = MultiprocRunner(workers=2)
    yield runner
    runner.close()


@pytest.fixture(scope="module")
def symbolic_pool():
    runner = MultiprocRunner(workers=2, analyze="symbolic")
    yield runner
    runner.close()


@given(
    n=st.integers(0, 60),
    seed=st.integers(0, 2000),
    max_terms=st.integers(0, 5),
    external=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_random_loops_match_oracle(pool, n, seed, max_terms, external):
    loop = random_irregular_loop(
        n, max_terms=max_terms, seed=seed, external_init=external
    )
    result = pool.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())


@given(
    n=st.integers(0, 60),
    seed=st.integers(0, 2000),
    chunk=st.integers(1, 80),
)
@settings(max_examples=30, deadline=None)
def test_any_chunk_size_matches_oracle(pool, n, seed, chunk):
    """Chunking is a schedule, not a semantics: every strip-mine size
    (including chunks larger than the loop) yields the oracle's values."""
    loop = random_irregular_loop(n, seed=seed)
    result = pool.run(loop, chunk=chunk)
    assert np.array_equal(result.y, loop.run_sequential())
    if n:
        assert result.extras["chunk"] == chunk


@given(n=st.integers(0, 50), seed=st.integers(0, 2000))
@settings(max_examples=20, deadline=None)
def test_doconsider_order_matches_oracle(pool, n, seed):
    """A wavefront-sorted doconsider order changes which iterations wait,
    not what they compute."""
    loop = random_irregular_loop(n, seed=seed)
    order, _levels = level_order(loop)
    result = pool.run(loop, order=order)
    assert np.array_equal(result.y, loop.run_sequential())


@given(n=st.integers(0, 60), seed=st.integers(0, 2000))
@settings(max_examples=25, deadline=None)
def test_symbolically_declined_loops_match_oracle(symbolic_pool, n, seed):
    """Runtime-permutation loops make the symbolic engine decline
    (runtime-only verdict): the backend must fall back to the real
    inspector and still reproduce the oracle bitwise."""
    loop = random_irregular_loop(n, seed=seed)
    result = symbolic_pool.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())
    if n > 1:  # a 1-iteration permutation is trivially proven injective
        assert result.extras["verdict"] == "runtime-only"
        assert not result.extras["inspector_elided"]


@given(
    n=st.integers(1, 80),
    distance=st.integers(1, 6),
)
@settings(max_examples=20, deadline=None)
def test_symbolically_proven_chains_match_oracle(symbolic_pool, n, distance):
    """Constant-distance chains are proven and the inspector is elided —
    the closed-form prefill must equal what the inspector would build."""
    loop = chain_loop(n, distance)
    result = symbolic_pool.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["inspector_elided"]
