"""Property-based tests for the sparse substrate against dense NumPy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.csr import CSRMatrix
from repro.sparse.ilu import ilu0


def sparse_dense(draw_shape=(1, 12)):
    """Strategy: small dense matrices with controlled sparsity."""
    return st.integers(*draw_shape).flatmap(
        lambda n: st.integers(*draw_shape).flatmap(
            lambda m: arrays(
                np.float64,
                (n, m),
                elements=st.sampled_from([0.0, 0.0, 1.0, -2.0, 0.5, 3.0]),
            )
        )
    )


@given(dense=sparse_dense())
@settings(max_examples=80, deadline=None)
def test_dense_roundtrip(dense):
    A = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(A.to_dense(), dense)
    assert A.nnz == int(np.count_nonzero(dense))


@given(dense=sparse_dense(), seed=st.integers(0, 100))
@settings(max_examples=80, deadline=None)
def test_matvec_matches_dense(dense, seed):
    A = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed).normal(size=dense.shape[1])
    np.testing.assert_allclose(A.matvec(x), dense @ x, rtol=1e-12, atol=1e-12)


@given(dense=sparse_dense())
@settings(max_examples=60, deadline=None)
def test_transpose_involution(dense):
    A = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(A.transpose().transpose().to_dense(), dense)


@given(dense=sparse_dense())
@settings(max_examples=60, deadline=None)
def test_triangles_partition_the_matrix(dense):
    A = CSRMatrix.from_dense(dense)
    if A.n_rows != A.n_cols:
        return
    lower = A.strict_lower_triangle().to_dense()
    upper = A.upper_triangle().to_dense()
    np.testing.assert_allclose(lower + upper, dense)


@given(n=st.integers(2, 10), seed=st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_ilu0_exact_on_dense_patterns(n, seed):
    """With a full pattern there is no dropped fill: L @ U == A."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n, n)) + n * 2 * np.eye(n)
    L, U = ilu0(CSRMatrix.from_dense(dense))
    np.testing.assert_allclose(
        L.to_dense() @ U.to_dense(), dense, rtol=1e-9, atol=1e-9
    )


@given(n=st.integers(2, 12), seed=st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_ilu0_residual_zero_on_pattern(n, seed):
    """The ILU(0) defining property on random sparse diagonally-dominant
    matrices: the residual vanishes on A's pattern."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n, n))
    dense[rng.random((n, n)) > 0.4] = 0.0
    dense += (np.abs(dense).sum(axis=1).max() + 1.0) * np.eye(n)
    A = CSRMatrix.from_dense(dense)
    L, U = ilu0(A)
    residual = L.to_dense() @ U.to_dense() - dense
    mask = dense != 0
    assert np.abs(residual[mask]).max() < 1e-9
