"""Lint rule framework and the built-in rules."""

import numpy as np
import pytest

import repro
from repro.ir.accesses import ReadTable
from repro.ir.loop import IrregularLoop
from repro.ir.transform import plan_transform
from repro.lint import (
    Diagnostic,
    LintContext,
    format_diagnostics,
    run_lints,
)
from repro.lint.rules import LintRule, all_rules, get_rule, register, rule_ids


def rules_fired(loop, **kwargs):
    return {d.rule for d in run_lints(loop, **kwargs)}


def dead_wait_loop(n=8):
    """Identity indirect write; term slot 0 is a distance-1 true
    dependence, slot 1 only ever anti/intra — slot 1's wait is dead."""
    terms = [[(1, 1.0), (2, 1.0)]]
    for i in range(1, n):
        terms.append([(i - 1, 1.0), (min(i + 1, n - 1), 1.0)])
    return IrregularLoop.from_arrays(
        np.arange(n), ReadTable.from_lists(terms), name="dead-wait"
    )


def anti_only_loop(n=8):
    """Identity indirect write; every read looks *forward* (anti)."""
    terms = [[(min(i + 1, n - 1), 1.0)] for i in range(n)]
    return IrregularLoop.from_arrays(
        np.arange(n), ReadTable.from_lists(terms), name="anti-only"
    )


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
def test_diagnostic_rejects_unknown_severity():
    with pytest.raises(ValueError, match="unknown severity"):
        Diagnostic(rule="X", severity="fatal", loop="l", message="m")


def test_diagnostic_format_and_dict_round_trip():
    d = Diagnostic(
        rule="DOALL-ABLE",
        severity="warning",
        loop="l",
        message="msg",
        suggestion="do this",
        location="term 3",
        paper_ref="§2.3",
    )
    text = d.format()
    assert "DOALL-ABLE" in text and "fix: do this" in text
    assert "at term 3" in text and "[§2.3]" in text
    assert d.as_dict()["severity"] == "warning"


def test_format_diagnostics_orders_by_severity_and_counts():
    ds = [
        Diagnostic(rule="B", severity="info", loop="l", message="later"),
        Diagnostic(rule="A", severity="error", loop="l", message="first"),
    ]
    text = format_diagnostics(ds)
    assert text.index("first") < text.index("later")
    assert "1 error(s), 1 info(s)" in text
    assert format_diagnostics([]) == "no findings"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_knows_the_built_in_rules():
    assert set(rule_ids()) == {
        "DOALL-ABLE",
        "AFFINE-WRITE",
        "SELF-ANTI-ONLY",
        "DEAD-WAIT",
        "CHUNK-CYCLE",
        "UNREACHED-ELEMENT",
        "SYMBOLIC-MISMATCH",
        "LEGACY-KWARGS",
        "SYNC-ELIDABLE",
        "COUPLED-SUBSCRIPT",
        "DISTANCE-MISMATCH",
    }
    assert all(isinstance(r, LintRule) for r in all_rules())


def test_registry_rejects_duplicates_and_unknowns():
    class Dup(LintRule):
        rule_id = "DOALL-ABLE"

    with pytest.raises(ValueError, match="duplicate"):
        register(Dup)

    class NoId(LintRule):
        pass

    with pytest.raises(ValueError, match="no rule_id"):
        register(NoId)
    with pytest.raises(KeyError, match="unknown lint rule"):
        get_rule("NOPE")


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def test_doall_able_fires_on_independent_loop_only():
    independent = repro.make_test_loop(n=64, m=2, l=7)  # odd L: no deps
    dependent = repro.make_test_loop(n=64, m=2, l=8)
    assert "DOALL-ABLE" in rules_fired(independent)
    assert "DOALL-ABLE" not in rules_fired(dependent)
    # Once the plan *is* doall the rule stays quiet.
    plan = plan_transform(independent, assert_independent=True)
    assert "DOALL-ABLE" not in {
        d.rule for d in run_lints(independent, plan=plan)
    }


def test_affine_write_suggests_linear_variant():
    loop = repro.make_test_loop(n=64, m=2, l=8)
    found = {d.rule: d for d in run_lints(loop)}
    assert "AFFINE-WRITE" in found
    # The default plan already picks linear: informational.
    assert found["AFFINE-WRITE"].severity == "info"
    # Against a plan that schedules an inspector, it is a warning.
    forced = plan_transform(repro.random_irregular_loop(64, seed=1))
    warned = {
        d.rule: d for d in run_lints(loop, plan=forced)
    }
    assert warned["AFFINE-WRITE"].severity == "warning"
    assert "inspector" in warned["AFFINE-WRITE"].message


def test_affine_write_silent_on_indirect_writes():
    loop = repro.random_irregular_loop(64, seed=0)
    assert "AFFINE-WRITE" not in rules_fired(loop)


def test_self_anti_only_fires_with_doall_able():
    fired = rules_fired(anti_only_loop())
    assert "SELF-ANTI-ONLY" in fired
    assert "DOALL-ABLE" in fired  # anti-only implies doall-able


def test_dead_wait_flags_the_never_true_slot():
    loop = dead_wait_loop()
    found = {d.rule: d for d in run_lints(loop)}
    assert "DEAD-WAIT" in found
    assert "slot" in found["DEAD-WAIT"].location
    assert "1" in found["DEAD-WAIT"].location  # slot 1 is the dead one
    # Both slots of the Figure-4 loop carry true dependences: quiet even
    # under a forced inspector plan.
    fig4 = repro.make_test_loop(n=64, m=2, l=8)
    forced = plan_transform(repro.random_irregular_loop(64, seed=1))
    assert "DEAD-WAIT" not in {d.rule for d in run_lints(fig4, plan=forced)}


def test_dead_wait_quiet_without_inspector_or_true_deps():
    # Linear plan: no inspector, no planned waits.
    assert "DEAD-WAIT" not in rules_fired(repro.make_test_loop(64, 2, 8))
    # No true deps at all: DOALL-ABLE owns the finding.
    assert "DEAD-WAIT" not in rules_fired(anti_only_loop())


def test_chunk_cycle_fires_on_block_schedule_over_short_distance():
    chain = repro.chain_loop(64, 1)
    found = {
        d.rule: d
        for d in run_lints(chain, schedule="block", processors=4)
    }
    assert "CHUNK-CYCLE" in found
    assert "run=16" in found["CHUNK-CYCLE"].location
    # Cyclic chunk-1 pipelines the same chain: quiet.
    assert "CHUNK-CYCLE" not in rules_fired(
        chain, schedule="cyclic", chunk=1, processors=4
    )
    # No schedule given: schedule-shape checks are disabled.
    assert "CHUNK-CYCLE" not in rules_fired(chain)


def test_chunk_cycle_flags_narrow_strip_block():
    loop = repro.random_irregular_loop(96, seed=2)
    ctx = LintContext(loop, strip_block=1)
    width = ctx.level_schedule.max_width()
    assert width > 1
    found = [d for d in run_lints(loop, strip_block=1) if d.rule == "CHUNK-CYCLE"]
    assert len(found) == 1
    assert str(width) in found[0].message


def test_unreached_element_reports_maxint_reads():
    loop = repro.make_test_loop(n=64, m=2, l=8)  # elements 6,8,10 unwritten
    found = {d.rule: d for d in run_lints(loop)}
    assert "UNREACHED-ELEMENT" in found
    assert found["UNREACHED-ELEMENT"].severity == "info"
    assert "6" in found["UNREACHED-ELEMENT"].location
    # A chain loop reads only written elements: quiet.
    assert "UNREACHED-ELEMENT" not in rules_fired(repro.chain_loop(64, 1))


def test_run_lints_only_filter():
    loop = repro.make_test_loop(n=64, m=2, l=8)
    ds = run_lints(loop, only=["UNREACHED-ELEMENT"])
    assert {d.rule for d in ds} == {"UNREACHED-ELEMENT"}


# ----------------------------------------------------------------------
# Distance rules (the dependence-test battery's lint surface)
# ----------------------------------------------------------------------
def test_sync_elidable_fires_on_a_proven_distance():
    found = {d.rule: d for d in run_lints(repro.chain_loop(400, 8))}
    assert "SYNC-ELIDABLE" in found
    d = found["SYNC-ELIDABLE"]
    assert d.severity == "warning"
    assert d.location == "min_distance=8"
    assert 'analyze="symbolic"' in d.suggestion


def test_sync_elidable_gives_chunk_alignment_advice():
    chain = repro.chain_loop(400, 8)
    oversize = {
        d.rule: d for d in run_lints(chain, chunk=12, processors=2)
    }
    assert "lower the chunk to <= 8" in oversize["SYNC-ELIDABLE"].suggestion
    misaligned = {
        d.rule: d for d in run_lints(chain, chunk=3, processors=2)
    }
    assert "chunk-aligned down to 6" in misaligned["SYNC-ELIDABLE"].suggestion


def test_sync_elidable_quiet_without_a_usable_bound():
    # Distance 1: the bound proves nothing worth elising.
    assert "SYNC-ELIDABLE" not in rules_fired(repro.chain_loop(64, 1))
    # Runtime subscripts: no bound at all.
    assert "SYNC-ELIDABLE" not in rules_fired(
        repro.random_irregular_loop(64, seed=1)
    )
    # Independent loop: the plan is doall, nothing to synchronize.
    assert "SYNC-ELIDABLE" not in rules_fired(
        repro.make_test_loop(n=64, m=2, l=7)
    )


def test_coupled_subscript_lists_the_opaque_slots():
    found = {
        d.rule: d for d in run_lints(repro.random_irregular_loop(64, seed=0))
    }
    assert "COUPLED-SUBSCRIPT" in found
    d = found["COUPLED-SUBSCRIPT"]
    assert d.severity == "info"
    assert "slot(s) 0" == d.location
    assert "inspector" in d.suggestion
    # Fully affine loops: every slot is in the battery's reach.
    assert "COUPLED-SUBSCRIPT" not in rules_fired(repro.chain_loop(64, 3))


def test_distance_mismatch_fires_only_on_a_doctored_bound():
    import dataclasses

    chain = repro.chain_loop(64, 3)
    # Sound verdict: quiet.
    assert "DISTANCE-MISMATCH" not in rules_fired(chain)
    # Inflate the proven bound past the observed distance-3 dependence:
    # the rule must flag the static model as unsound.
    ctx = LintContext(chain)
    ctx._verdict = dataclasses.replace(ctx.verdict, min_distance=5)
    ctx._verdict_computed = True
    findings = list(get_rule("DISTANCE-MISMATCH").check(ctx))
    assert len(findings) == 1
    assert findings[0].severity == "error"
    assert findings[0].location == "static>=5, observed=3"
    assert "cross_check" in findings[0].suggestion
