"""The positional-argument deprecation shims must blame the caller.

A ``DeprecationWarning`` whose reported source location is inside the
library is useless — the caller cannot find the line to fix.  These tests
pin the contract: the warning's ``filename``/``lineno`` point at the line
*in this file* that passed the positional arguments.
"""

import inspect
import warnings

import pytest

import repro


def _sole_deprecation(record):
    ws = [w for w in record if issubclass(w.category, DeprecationWarning)]
    assert len(ws) == 1
    return ws[0]


def test_run_shim_emits_deprecation_warning():
    loop = repro.make_test_loop(32, 2, 8)
    runner = repro.PreprocessedDoacross(processors=4)
    with pytest.warns(DeprecationWarning, match="positional options"):
        runner.run(loop, None)  # positional `order`


def test_run_shim_warning_points_at_caller():
    loop = repro.make_test_loop(32, 2, 8)
    runner = repro.PreprocessedDoacross(processors=4)
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        lineno = inspect.currentframe().f_lineno + 1
        runner.run(loop, None)  # positional `order`
    w = _sole_deprecation(record)
    assert "positional options" in str(w.message)
    assert w.filename == __file__
    assert w.lineno == lineno


def test_parallelize_shim_warning_points_at_caller():
    loop = repro.make_test_loop(32, 2, 8)
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        lineno = inspect.currentframe().f_lineno + 1
        repro.parallelize(loop, 4)  # positional `processors`
    w = _sole_deprecation(record)
    assert "positional options" in str(w.message)
    assert w.filename == __file__
    assert w.lineno == lineno


def test_keyword_forms_stay_silent():
    loop = repro.make_test_loop(32, 2, 8)
    runner = repro.PreprocessedDoacross(processors=4)
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        runner.run(loop, schedule="cyclic", chunk=1)
        repro.parallelize(loop, processors=4)
    assert not [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]
