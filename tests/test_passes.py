"""Pass-pipeline contract tests (ISSUE 6 satellite 3).

Two properties carry the framework:

1. **Contracts fail loudly and early.**  A pass whose ``requires`` no
   earlier pass provides raises :class:`PassContractError` at
   *pipeline construction*; runtime violations (undeclared writes,
   undeclared reads, missing declared provides) raise during
   :meth:`~repro.passes.PassPipeline.plan`, naming the pass and the
   artifact.
2. **Contract-respecting reorderings are bitwise-equivalent.**  Any
   pass order satisfying the declared requires/provides dependencies
   produces the same plan — same backend, order, chunk — and executing
   both plans yields bitwise-identical ``y`` on the conformance-matrix
   workload families (chain / stencil / gather-scatter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import BACKENDS
from repro.passes import (
    PassContext,
    PassContractError,
    PassPipeline,
    PlanSpec,
    SchedulePass,
    UnsupportedPlanOption,
    execute_plan,
    plan_loop,
)
from repro.passes.builtin import (
    ColoringPass,
    DependenceDAGPass,
    DoconsiderPass,
    FixedBackendPass,
    LevelSchedulePass,
    LoopFingerprintPass,
    StripminePass,
    ValidateOptionsPass,
    default_passes,
    default_pipeline,
)
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop


def _stencil_loop(nx: int = 12, ny: int = 12):
    A = five_point(nx, ny)
    L, _upper = ilu0(A)
    rhs = np.arange(1.0, A.n_rows + 1) / A.n_rows
    return lower_solve_loop(L, rhs, name=f"stencil-trisolve-{nx}x{ny}")


#: The three conformance-matrix workload families from
#: ``tests/test_conformance_matrix.py``, sized for fast planning.
WORKLOADS = {
    "chain": chain_loop(160, 3),
    "stencil": _stencil_loop(),
    "gather-scatter": random_irregular_loop(150, seed=5),
}


@pytest.fixture
def loop():
    return make_test_loop(n=120, m=2, l=8)


# ---------------------------------------------------------------------------
# Build-time contract validation
# ---------------------------------------------------------------------------


class TestBuildTimeContracts:
    def test_unmet_requires_raises_at_build(self):
        # level-schedule needs the dependence DAG; alone it cannot build.
        with pytest.raises(PassContractError, match="requires artifact"):
            PassPipeline([LevelSchedulePass()])

    def test_error_names_pass_artifact_and_available(self):
        with pytest.raises(PassContractError) as exc_info:
            PassPipeline([ValidateOptionsPass(), StripminePass()])
        err = exc_info.value
        assert err.pass_name == "stripmine"
        assert err.artifact == "backend"
        # The message lists what *was* available, for debugging.
        assert "loop" in str(err) and "spec" in str(err)

    def test_wrong_order_rejected_even_if_set_is_complete(self):
        # Same passes as a valid pipeline, but the consumer precedes the
        # producer: ordering is part of the contract.
        with pytest.raises(PassContractError, match="requires artifact"):
            PassPipeline([LevelSchedulePass(), DependenceDAGPass()])

    def test_duplicate_provider_rejected(self):
        with pytest.raises(PassContractError, match="exactly one provider"):
            PassPipeline([FixedBackendPass(), FixedBackendPass()])

    def test_reproviding_a_seed_artifact_rejected(self):
        class _SpecForger(SchedulePass):
            name = "spec-forger"
            provides = ("spec",)

            def run(self, ctx):  # pragma: no cover - never runs
                ctx.set("spec", None)

        with pytest.raises(PassContractError, match="exactly one provider"):
            PassPipeline([_SpecForger()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(PassContractError, match="at least one pass"):
            PassPipeline([])

    def test_default_pipeline_builds_for_every_backend(self):
        for backend in BACKENDS + ("auto",):
            pipeline = default_pipeline(PlanSpec(backend=backend))
            assert pipeline.pass_names()[0] == "validate-options"
            assert "backend" in pipeline.provided()


# ---------------------------------------------------------------------------
# Run-time contract enforcement
# ---------------------------------------------------------------------------


class _UndeclaredWriter(SchedulePass):
    name = "undeclared-writer"
    provides = ("legit",)

    def run(self, ctx: PassContext) -> None:
        ctx.set("contraband", 1)


class _UndeclaredReader(SchedulePass):
    name = "undeclared-reader"
    provides = ("peek",)

    def run(self, ctx: PassContext) -> None:
        ctx.set("peek", ctx.get("levels"))  # never provided, never required


class _Welcher(SchedulePass):
    name = "welcher"
    provides = ("promised",)

    def run(self, ctx: PassContext) -> None:
        pass  # completes without writing "promised"


class TestRunTimeContracts:
    def test_undeclared_write_raises(self, loop):
        pipeline = PassPipeline([_UndeclaredWriter(), FixedBackendPass()])
        with pytest.raises(PassContractError, match="did not declare"):
            pipeline.plan(loop, PlanSpec())

    def test_undeclared_read_raises(self, loop):
        pipeline = PassPipeline([_UndeclaredReader(), FixedBackendPass()])
        with pytest.raises(PassContractError) as exc_info:
            pipeline.plan(loop, PlanSpec())
        assert exc_info.value.pass_name == "undeclared-reader"
        assert exc_info.value.artifact == "levels"

    def test_missing_declared_provide_raises(self, loop):
        pipeline = PassPipeline([_Welcher(), FixedBackendPass()])
        with pytest.raises(PassContractError, match="without providing"):
            pipeline.plan(loop, PlanSpec())

    def test_auto_spec_without_tuner_pass_raises(self, loop):
        # A pipeline that never resolves "auto" to a concrete backend is
        # a configuration bug, caught at assembly.
        pipeline = PassPipeline([ValidateOptionsPass()])
        with pytest.raises(PassContractError, match="auto.*unresolved"):
            pipeline.plan(loop, PlanSpec(backend="auto"))


# ---------------------------------------------------------------------------
# Plan content and the coloring side-channel
# ---------------------------------------------------------------------------


class TestPlanContent:
    def test_default_plan_artifacts(self, loop):
        plan = plan_loop(loop, PlanSpec(backend="simulated"))
        assert plan.backend == "simulated"
        assert plan.passes == (
            "validate-options",
            "fingerprint",
            "dependence-dag",
            "level-schedule",
            "doconsider",
            "fixed-backend",
            "stripmine",
        )
        assert isinstance(plan.fingerprint, str) and len(plan.fingerprint) > 8
        assert plan.levels is not None
        assert plan.order is None  # reorder="natural"
        described = plan.describe()
        assert described["backend"] == "simulated"
        assert described["requested_backend"] == "simulated"
        assert described["n_levels"] == plan.levels.n_levels

    def test_doconsider_reorder_provides_wavefront_order(self, loop):
        plan = plan_loop(loop, PlanSpec(reorder="doconsider"))
        assert plan.order is not None
        assert np.array_equal(np.sort(plan.order), np.arange(loop.n))
        assert np.array_equal(plan.order, plan.levels.order)

    def test_vectorized_plan_prebuilds_inspector_record(self, loop):
        plan = plan_loop(loop, PlanSpec(backend="vectorized"))
        assert plan.passes[-1] == "inspector"
        assert plan.artifacts.get("record") is not None

    def test_multiproc_chunk_default_is_stripmine_formula(self, loop):
        plan = plan_loop(loop, PlanSpec(backend="multiproc", processors=4))
        assert plan.chunk == max(1, -(-loop.n // (4 * 4)))
        explicit = plan_loop(
            loop, PlanSpec(backend="multiproc", processors=4, chunk=7)
        )
        assert explicit.chunk == 7

    def test_coloring_pass_is_analysis_only(self, loop):
        # Not in any default pipeline (a color order is illegal as a
        # doacross execution order), but composable by contract.
        for backend in BACKENDS + ("auto",):
            names = [p.name for p in default_passes(PlanSpec(backend=backend))]
            assert "coloring" not in names
        pipeline = PassPipeline(
            [DependenceDAGPass(), ColoringPass(), FixedBackendPass()]
        )
        plan = pipeline.plan(loop, PlanSpec())
        colors = plan.artifacts["coloring"]
        # Proper coloring: no true dependence links same-colored iterates.
        graph = plan.artifacts["depgraph"]
        for v in range(graph.n):
            lo, hi = int(graph.succ_ptr[v]), int(graph.succ_ptr[v + 1])
            for w in graph.succ[lo:hi]:
                assert colors[v] != colors[w]


# ---------------------------------------------------------------------------
# Reordering equivalence on the conformance-matrix workloads
# ---------------------------------------------------------------------------

#: A legal alternative order: every requires still follows its provider
#: (fingerprint/DAG first, stripmine after backend, doconsider last).
def _reordered_passes():
    return [
        LoopFingerprintPass(),
        DependenceDAGPass(),
        FixedBackendPass(),
        LevelSchedulePass(),
        ValidateOptionsPass(),
        StripminePass(),
        DoconsiderPass(),
    ]


def _plans_equivalent(a, b):
    assert a.backend == b.backend
    assert a.fingerprint == b.fingerprint
    assert a.chunk == b.chunk
    if a.order is None:
        assert b.order is None
    else:
        assert np.array_equal(a.order, b.order)
    assert np.array_equal(a.levels.levels, b.levels.levels)


class TestReorderingEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("reorder", ("natural", "doconsider"))
    def test_reordered_pipeline_plans_identically(self, workload, reorder):
        loop = WORKLOADS[workload]
        spec = PlanSpec(backend="simulated", processors=4, reorder=reorder)
        default = default_pipeline(spec).plan(loop, spec)
        shuffled = PassPipeline(_reordered_passes()).plan(loop, spec)
        _plans_equivalent(default, shuffled)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_reordered_pipeline_executes_bitwise_identically(self, workload):
        loop = WORKLOADS[workload]
        spec = PlanSpec(backend="simulated", processors=4)
        default = default_pipeline(spec).plan(loop, spec)
        shuffled = PassPipeline(_reordered_passes()).plan(loop, spec)
        first = execute_plan(loop, default)
        second = execute_plan(loop, shuffled)
        assert np.array_equal(first.y, second.y)
        assert np.array_equal(first.y, loop.run_sequential())

    def test_threaded_execution_matches_across_orders(self):
        loop = WORKLOADS["gather-scatter"]
        spec = PlanSpec(backend="threaded", processors=2)
        default = default_pipeline(spec).plan(loop, spec)
        shuffled = PassPipeline(_reordered_passes()).plan(loop, spec)
        first = execute_plan(loop, default)
        second = execute_plan(loop, shuffled)
        assert np.array_equal(first.y, second.y)
        assert np.array_equal(first.y, loop.run_sequential())


# ---------------------------------------------------------------------------
# The spec path never ignores options
# ---------------------------------------------------------------------------


class TestNoIgnoredOptions:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spec_path_has_no_ignored_options(self, loop, backend):
        spec = PlanSpec(backend=backend, processors=2)
        plan = plan_loop(loop, spec)
        result = execute_plan(loop, plan)
        assert "ignored_options" not in result.extras
        assert result.extras["schedule_plan"]["backend"] == backend
        assert np.array_equal(result.y, loop.run_sequential())

    def test_all_backends_bitwise_identical_through_pipeline(self, loop):
        reference = loop.run_sequential()
        for backend in BACKENDS:
            plan = plan_loop(loop, PlanSpec(backend=backend, processors=2))
            result = execute_plan(loop, plan)
            assert np.array_equal(result.y, reference), backend

    def test_unsupported_option_rejected_structured(self, loop):
        with pytest.raises(UnsupportedPlanOption) as exc_info:
            plan_loop(loop, PlanSpec(backend="vectorized", chunk=4))
        err = exc_info.value
        assert (err.backend, err.option, err.value) == ("vectorized", "chunk", 4)
        assert err.as_dict() == {
            "backend": "vectorized",
            "option": "chunk",
            "value": 4,
            "reason": err.reason,
        }
