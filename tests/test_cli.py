"""Tests for the ``python -m repro`` command-line front door."""

import pytest

from repro.__main__ import main
from repro._version import __version__


class TestCli:
    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 0
        assert "Commands" in capsys.readouterr().out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "figure6" in capsys.readouterr().out

    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().out

    def test_verify_command(self, capsys):
        assert main(["verify", "60", "3"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "preprocessed-doacross" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "staircase" in out
        assert "doconsider" in out
        assert "busy-wait" in out

    def test_figure6_command_small(self, capsys):
        assert main(["figure6", "1500"]) == 0
        assert "shape check: PASS" in capsys.readouterr().out

    def test_table1_command_small(self, capsys):
        assert main(["table1", "--small"]) == 0
        assert "shape check: PASS" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "kind,marker",
        [
            ("irregular", "iter(a(i)) = i"),
            ("affine", "closed form"),
            ("chain", "a-priori dependence distance"),
            ("independent", "no synchronization"),
        ],
    )
    def test_codegen_command(self, capsys, kind, marker):
        assert main(["codegen", kind]) == 0
        assert marker in capsys.readouterr().out

    def test_codegen_unknown_kind(self, capsys):
        assert main(["codegen", "bogus"]) == 2

    def test_table2_command_small(self, capsys):
        assert main(["table2", "--small", "4"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_krylov_command_small(self, capsys):
        assert main(["krylov", "--small"]) == 0
        assert "Krylov motivation" in capsys.readouterr().out
