"""Tests for permutation utilities."""

import numpy as np
import pytest

from repro.sparse.reorder import (
    identity_permutation,
    invert_permutation,
    permutation_is_valid,
    random_symmetric_permutation,
)


class TestPermutations:
    def test_identity(self):
        np.testing.assert_array_equal(identity_permutation(4), [0, 1, 2, 3])

    def test_random_is_valid_and_seeded(self):
        a = random_symmetric_permutation(20, seed=3)
        b = random_symmetric_permutation(20, seed=3)
        assert permutation_is_valid(a)
        np.testing.assert_array_equal(a, b)

    def test_validity_checks(self):
        assert permutation_is_valid([2, 0, 1])
        assert not permutation_is_valid([0, 0, 1])
        assert not permutation_is_valid([0, 3])
        assert not permutation_is_valid([[0, 1]])
        assert not permutation_is_valid([-1, 0])

    def test_invert(self):
        perm = np.array([2, 0, 3, 1])
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(4))
        np.testing.assert_array_equal(inv[perm], np.arange(4))

    def test_invert_rejects_invalid(self):
        with pytest.raises(ValueError):
            invert_permutation([0, 0])
