"""Tests for plain-text report rendering."""

import pytest

from repro.bench.harness import (
    ExperimentRow,
    check_monotone_nondecreasing,
    check_within,
    geometric_mean,
)
from repro.bench.reporting import ascii_chart, format_table


class TestFormatTable:
    def test_alignment_and_float_formatting(self):
        text = format_table(
            ["name", "value"],
            [("a", 1.23456), ("bbbb", 10)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert "10" in text
        # All data lines equal width.
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_no_title(self):
        text = format_table(["x"], [(1,)])
        assert text.splitlines()[0] == "x"


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"s1": [(1.0, 0.1), (2.0, 0.3)], "s2": [(1.0, 0.2)]},
            x_label="L",
            y_label="eff",
        )
        assert "o = s1" in chart
        assert "* = s2" in chart
        assert "(L)" in chart
        assert "eff" in chart

    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"a": []}) == "(no data)"

    def test_single_point(self):
        chart = ascii_chart({"a": [(1.0, 0.5)]})
        assert "o" in chart

    def test_y_max_sets_axis(self):
        chart = ascii_chart({"a": [(0.0, 0.1), (1.0, 0.2)]}, y_max=0.6)
        assert chart.splitlines()[0].strip().startswith("0.60")

    def test_values_above_y_max_clipped_not_crashing(self):
        chart = ascii_chart({"a": [(0.0, 5.0)]}, y_max=1.0)
        assert "o" in chart


class TestHarnessHelpers:
    def test_monotone_check_passes(self):
        check_monotone_nondecreasing([1.0, 1.0, 2.0])

    def test_monotone_check_tolerance(self):
        check_monotone_nondecreasing([1.0, 0.999], tolerance=0.01)
        with pytest.raises(AssertionError):
            check_monotone_nondecreasing([1.0, 0.9], tolerance=0.01)

    def test_check_within(self):
        check_within(0.5, 0.4, 0.6)
        with pytest.raises(AssertionError, match="band"):
            check_within(0.7, 0.4, 0.6, label="x")

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_experiment_row_metric_lookup(self):
        row = ExperimentRow(label="x", metrics={"a": 1.0})
        assert row.metric("a") == 1.0
        with pytest.raises(KeyError):
            row.metric("b")
