"""Tests for experiment JSON export and the --json CLI flag."""

import json

import pytest

from repro.bench.figure6 import main as figure6_main
from repro.bench.harness import (
    ExperimentRow,
    parse_json_flag,
    rows_to_json,
)
from repro.bench.table1 import main as table1_main
from repro.core.doacross import PreprocessedDoacross
from repro.workloads.testloop import make_test_loop


class TestRowsToJson:
    def test_serializes_label_params_metrics(self):
        rows = [
            ExperimentRow(
                label="x", params={"m": 1}, metrics={"eff": 0.5}
            )
        ]
        records = json.loads(rows_to_json(rows))
        assert records[0]["label"] == "x"
        assert records[0]["params"] == {"m": 1}
        assert records[0]["metrics"] == {"eff": 0.5}
        assert "run" not in records[0]

    def test_includes_run_record_when_attached(self):
        result = PreprocessedDoacross(processors=4).run(
            make_test_loop(n=40, m=1, l=3)
        )
        rows = [ExperimentRow(label="r", result=result)]
        records = json.loads(rows_to_json(rows))
        assert records[0]["run"]["strategy"] == "preprocessed-doacross"

    def test_non_scalar_entries_dropped(self):
        rows = [
            ExperimentRow(
                label="x",
                params={"arr": [1, 2], "ok": 3},
                metrics={"obj": object(), "eff": 1.0},
            )
        ]
        records = json.loads(rows_to_json(rows))
        assert records[0]["params"] == {"ok": 3}
        assert records[0]["metrics"] == {"eff": 1.0}


class TestParseJsonFlag:
    def test_absent(self):
        assert parse_json_flag(["--small", "5"]) == (["--small", "5"], None)

    def test_present(self):
        args, path = parse_json_flag(["a", "--json", "out.json", "b"])
        assert args == ["a", "b"]
        assert path == "out.json"

    def test_missing_path(self):
        with pytest.raises(ValueError, match="file path"):
            parse_json_flag(["--json"])


class TestCliJsonExport:
    def test_figure6_writes_json(self, tmp_path, capsys):
        out = tmp_path / "fig6.json"
        assert figure6_main(["800", "--json", str(out)]) == 0
        records = json.loads(out.read_text())
        assert len(records) == 28
        assert all("run" in r for r in records)
        assert "wrote" in capsys.readouterr().out

    def test_table1_writes_json(self, tmp_path, capsys):
        out = tmp_path / "tab1.json"
        assert table1_main(["--small", "--json", str(out)]) == 0
        records = json.loads(out.read_text())
        assert {r["label"] for r in records} == {
            "SPE2",
            "SPE5",
            "5-PT",
            "7-PT",
            "9-PT",
        }
        assert all("reordered_cycles" in r["metrics"] for r in records)
