"""Tests for the real-thread backend: the protocol on actual concurrency."""

import numpy as np
import pytest

from repro.backends.threaded import ThreadedRunner
from repro.core.doconsider import level_order
from repro.errors import ScheduleError
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop, solve_lower_unit
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


class TestThreadedEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_figure4_loop(self, threads):
        loop = make_test_loop(n=120, m=2, l=6)
        y = ThreadedRunner(threads=threads).run_preprocessed(loop).y
        assert_matches_oracle(y, loop)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_loops(self, seed):
        loop = random_irregular_loop(100, seed=seed)
        y = ThreadedRunner(threads=4).run_preprocessed(loop).y
        assert_matches_oracle(y, loop)

    def test_external_init(self):
        loop = random_irregular_loop(80, seed=1, external_init=True)
        y = ThreadedRunner(threads=3).run_preprocessed(loop).y
        assert_matches_oracle(y, loop)

    def test_tight_chain_does_not_deadlock(self):
        loop = chain_loop(200, 1)
        y = ThreadedRunner(threads=4).run_preprocessed(loop).y
        assert_matches_oracle(y, loop)

    def test_triangular_solve(self):
        L, _ = ilu0(five_point(10, 10))
        rhs = np.linspace(0.5, 2.0, 100)
        loop = lower_solve_loop(L, rhs)
        y = ThreadedRunner(threads=4).run_preprocessed(loop).y
        np.testing.assert_allclose(y, solve_lower_unit(L, rhs))

    def test_with_doconsider_order(self):
        loop = random_irregular_loop(80, seed=9)
        order, _ = level_order(loop)
        y = ThreadedRunner(threads=4).run_preprocessed(loop, order=order).y
        assert_matches_oracle(y, loop)

    def test_more_threads_than_iterations(self):
        loop = random_irregular_loop(3, seed=0)
        y = ThreadedRunner(threads=16).run_preprocessed(loop).y
        assert_matches_oracle(y, loop)

    def test_empty_loop(self):
        loop = random_irregular_loop(0, seed=0)
        y = ThreadedRunner(threads=2).run_preprocessed(loop).y
        np.testing.assert_allclose(y, loop.y0)


class TestValidation:
    def test_illegal_order_rejected_before_starting_threads(self):
        loop = chain_loop(30, 1)
        with pytest.raises(ScheduleError):
            ThreadedRunner(threads=2).run_preprocessed(
                loop, order=np.arange(30)[::-1]
            )

    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            ThreadedRunner(threads=0)
