"""Tests for the doall baseline."""

import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.core.doall_runner import DoallRunner
from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadTable
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import AffineSubscript
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


def independent_loop(n=100, seed=0):
    """Reads only from a never-written region: strictly independent."""
    loop = random_irregular_loop(n, max_terms=0, seed=seed)
    return loop


class TestValidation:
    def test_true_dependence_rejected(self):
        reads = ReadTable.from_lists([[], [(0, 1.0)]])
        loop = IrregularLoop(
            n=2, y_size=2, write_subscript=AffineSubscript(1, 0), reads=reads
        )
        with pytest.raises(InvalidLoopError, match="asserted independence"):
            DoallRunner(processors=4).run(loop)

    def test_antidependence_rejected(self):
        reads = ReadTable.from_lists([[(1, 1.0)], []])
        loop = IrregularLoop(
            n=2, y_size=2, write_subscript=AffineSubscript(1, 0), reads=reads
        )
        with pytest.raises(InvalidLoopError):
            DoallRunner(processors=4).run(loop)

    def test_validation_can_be_disabled(self):
        # validate=False models a trusted user directive; intra-only loops
        # execute correctly regardless.
        loop = independent_loop()
        result = DoallRunner(processors=4).run(loop, validate=False)
        assert_matches_oracle(result.y, loop)


class TestExecution:
    @pytest.mark.parametrize("seed", range(4))
    def test_values_correct(self, seed):
        loop = independent_loop(seed=seed)
        result = DoallRunner(processors=8).run(loop)
        assert_matches_oracle(result.y, loop)

    def test_odd_l_test_loop_is_valid_doall(self):
        """Odd-L Figure-4 loops read only never-written elements."""
        loop = make_test_loop(n=200, m=2, l=5)
        result = DoallRunner(processors=16).run(loop)
        assert_matches_oracle(result.y, loop)

    def test_doall_beats_preprocessed_on_independent_loops(self):
        """The whole point of the odd-L Figure-6 plateau: the preprocessed
        doacross pays inspector + checks + postprocessor that a doall
        doesn't."""
        loop = make_test_loop(n=2000, m=1, l=3)
        doall = DoallRunner(processors=16).run(loop)
        preprocessed = PreprocessedDoacross(processors=16).run(loop)
        assert doall.total_cycles < preprocessed.total_cycles
        assert doall.efficiency > 2 * preprocessed.efficiency

    def test_near_linear_scaling(self):
        loop = make_test_loop(n=4000, m=2, l=3)
        t1 = DoallRunner(processors=1).run(loop).total_cycles
        t16 = DoallRunner(processors=16).run(loop).total_cycles
        assert t1 / t16 > 12  # barriers cost a little

    def test_no_wait_cycles(self):
        result = DoallRunner(processors=8).run(independent_loop())
        assert result.wait_cycles == 0
        assert result.strategy == "doall"
