"""End-to-end integration tests: full pipelines across subsystems."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.doconsider import Doconsider
from repro.sparse import (
    block_seven_point,
    ilu0,
    lower_solve_loop,
    paper_problems,
    solve_lower_unit,
    solve_upper,
    upper_solve_loop,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestFullPreconditionerPipeline:
    """operator → ILU(0) → parallel forward+backward solve → verified x."""

    @pytest.mark.parametrize("name", ["SPE2", "5-PT", "9-PT"])
    def test_solve_matches_dense_reference(self, name):
        A = paper_problems(small=True)[name]
        L, U = ilu0(A)
        rhs = np.linspace(1.0, 2.0, A.n_rows)

        runner = repro.PreprocessedDoacross(processors=8)
        doconsider = Doconsider(doacross=runner)
        y = doconsider.run(lower_solve_loop(L, rhs)).y
        x = doconsider.run(upper_solve_loop(U, y)).y

        dense = L.to_dense() @ U.to_dense()
        x_ref = np.linalg.solve(dense, rhs)
        np.testing.assert_allclose(x, x_ref, rtol=1e-9)

    def test_sequence_of_solves_reuses_one_workspace(self):
        """Krylov-style usage: many solves against one factorization, one
        scratch workspace (the paper's amortization story)."""
        A = block_seven_point(3, 3, 2, block=3, seed=1)
        L, U = ilu0(A)
        ws = repro.DoacrossWorkspace()
        runner = repro.PreprocessedDoacross(processors=8, workspace=ws)
        rhs = np.ones(A.n_rows)
        for _ in range(5):
            y = runner.run(lower_solve_loop(L, rhs)).y
            np.testing.assert_allclose(y, solve_lower_unit(L, rhs))
            rhs = solve_upper(U, y)  # feed forward like an iteration
            assert ws.is_clean()
        assert ws.invocations == 5


class TestStrategiesAgreeOnTrisolve:
    def test_five_strategies_identical_values(self):
        A = paper_problems(small=True)["7-PT"]
        L, _ = ilu0(A)
        rhs = np.arange(1.0, A.n_rows + 1)
        loop = lower_solve_loop(L, rhs)
        runner = repro.PreprocessedDoacross(processors=8)

        results = {
            "sequential": loop.run_sequential(),
            "preprocessed": runner.run(loop).y,
            "linear": runner.run(loop, linear=True).y,
            "stripmined": runner.run_stripmined(loop, block=37).y,
            "doconsider": Doconsider(doacross=runner).run(loop).y,
        }
        reference = results.pop("sequential")
        for name, y in results.items():
            np.testing.assert_array_equal(y, reference, err_msg=name)

    def test_threaded_backend_agrees_too(self):
        from repro.backends.threaded import ThreadedRunner

        A = paper_problems(small=True)["5-PT"]
        L, _ = ilu0(A)
        rhs = np.ones(A.n_rows)
        loop = lower_solve_loop(L, rhs)
        y = ThreadedRunner(threads=4).run_preprocessed(loop).y
        np.testing.assert_array_equal(y, loop.run_sequential())


class TestExamplesRun:
    """Every example script must execute cleanly end to end."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "sparse_triangular_solve.py",
            "irregular_mesh_sweep.py",
            "scheduling_policies.py",
            "preconditioned_krylov.py",
            "performance_model.py",
            "bring_your_own_loop.py",
        ],
    )
    def test_example_runs(self, script, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [script])
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report


class TestBenchModulesRun:
    def test_figure6_main(self, capsys):
        from repro.bench import figure6

        assert figure6.main(["800"]) == 0
        out = capsys.readouterr().out
        assert "shape check: PASS" in out

    def test_table1_main_small(self, capsys):
        from repro.bench import table1

        assert table1.main(["--small"]) == 0
        out = capsys.readouterr().out
        assert "shape check: PASS" in out

    def test_ablations_main_small(self, capsys):
        from repro.bench import ablations

        assert ablations.main(["--small"]) == 0
        out = capsys.readouterr().out
        assert "Ablation A" in out
        assert "Ablation E" in out
