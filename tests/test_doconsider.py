"""Tests for the doconsider (wavefront) reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.base import inverse_permutation
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider, level_order
from repro.graph.depgraph import DependenceGraph
from repro.ir.analysis import dependence_pairs
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


class TestLevelOrder:
    def test_chain_levels_are_iteration_index(self):
        loop = chain_loop(20, 1)
        order, schedule = level_order(loop)
        np.testing.assert_array_equal(schedule.levels, np.arange(20))
        np.testing.assert_array_equal(order, np.arange(20))

    def test_distance_d_chain_has_d_wide_wavefronts(self):
        loop = chain_loop(20, 4)
        _, schedule = level_order(loop)
        assert schedule.n_levels == 5
        assert schedule.max_width() == 4

    def test_independent_loop_single_level(self):
        loop = make_test_loop(n=30, m=1, l=3)
        _, schedule = level_order(loop)
        assert schedule.n_levels == 1
        assert schedule.max_width() == 30

    def test_order_is_permutation_grouped_by_level(self):
        loop = random_irregular_loop(120, seed=3)
        order, schedule = level_order(loop)
        assert sorted(order.tolist()) == list(range(120))
        levels_in_order = schedule.levels[order]
        assert all(
            a <= b for a, b in zip(levels_in_order, levels_in_order[1:])
        )


class TestDoconsiderRuns:
    @pytest.mark.parametrize("seed", range(6))
    def test_semantics_preserved(self, seed):
        loop = random_irregular_loop(90, seed=seed)
        result = Doconsider(processors=8).run(loop)
        assert_matches_oracle(result.y, loop)

    def test_strategy_and_extras(self):
        loop = chain_loop(60, 3)
        result = Doconsider(processors=8).run(loop)
        assert result.strategy == "doconsider-doacross"
        assert result.extras["n_levels"] == 20
        assert result.extras["max_wavefront"] == 3
        assert "doconsider" in result.order_label

    def test_wraps_existing_runner(self):
        runner = PreprocessedDoacross(processors=4)
        result = Doconsider(doacross=runner).run(chain_loop(30, 2))
        assert result.processors == 4

    def test_reordering_never_hurts_chain_loops(self):
        """For a distance-d chain, wavefront order groups independent
        iterations; it must not be slower than natural order."""
        loop = chain_loop(400, 8)
        runner = PreprocessedDoacross(processors=16)
        natural = runner.run(loop)
        reordered = Doconsider(doacross=runner).run(loop)
        assert reordered.total_cycles <= natural.total_cycles

    def test_reorder_cost_reported_but_excluded_by_default(self):
        loop = chain_loop(100, 4)
        result = Doconsider(processors=8).run(loop)
        assert result.extras["reorder_cycles_modeled"] > 0
        assert "reorder_cost_included" not in result.extras

    def test_reorder_cost_inclusion_raises_total(self):
        loop = chain_loop(100, 4)
        excluded = Doconsider(processors=8).run(loop)
        included = Doconsider(processors=8, include_reorder_cost=True).run(
            loop
        )
        assert included.extras["reorder_cost_included"]
        assert (
            included.total_cycles
            == excluded.total_cycles
            + excluded.extras["reorder_cycles_modeled"]
        )

    def test_simulated_reorder_cost(self):
        """The simulated wavefront preprocessing agrees with the
        closed-form estimate up to within-round load imbalance (it can
        only be slower, and not wildly so on a balanced chain)."""
        loop = chain_loop(200, 4)
        modeled = Doconsider(processors=8).run(loop).extras[
            "reorder_cycles_modeled"
        ]
        simulated = Doconsider(processors=8, simulate_reorder=True).run(
            loop
        ).extras["reorder_cycles_simulated"]
        assert simulated >= modeled
        assert simulated <= 2 * modeled

    def test_simulated_reorder_deterministic(self):
        loop = random_irregular_loop(120, seed=4)
        a = Doconsider(processors=8, simulate_reorder=True).run(loop)
        b = Doconsider(processors=8, simulate_reorder=True).run(loop)
        assert (
            a.extras["reorder_cycles_simulated"]
            == b.extras["reorder_cycles_simulated"]
        )

    def test_simulated_reorder_values_unchanged(self):
        loop = random_irregular_loop(90, seed=6)
        result = Doconsider(
            processors=8, simulate_reorder=True, include_reorder_cost=True
        ).run(loop)
        assert_matches_oracle(result.y, loop)


class TestWavefrontValidity:
    @pytest.mark.parametrize("seed", range(4))
    def test_levels_ascend_along_every_edge(self, seed):
        loop = random_irregular_loop(100, seed=seed)
        graph = DependenceGraph.from_loop(loop)
        _, schedule = level_order(loop)
        schedule.validate(graph)  # raises on violation

    def test_average_width(self):
        loop = chain_loop(20, 4)
        _, schedule = level_order(loop)
        assert schedule.average_width() == pytest.approx(4.0)


class TestReorderRespectsDependenceDag:
    """Property: over random ``IndirectSubscript`` loops, the doconsider
    order places every writer of a true dependence before its reader
    (the DAG from ``ir/analysis.dependence_pairs``), and the wavefront
    levels strictly ascend along every such edge."""

    @given(
        n=st.integers(0, 80),
        seed=st.integers(0, 5000),
        max_terms=st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_level_order_respects_true_dependence_dag(
        self, n, seed, max_terms
    ):
        loop = random_irregular_loop(n, seed=seed, max_terms=max_terms)
        order, schedule = level_order(loop)
        assert sorted(order.tolist()) == list(range(n))
        pos = inverse_permutation(order)
        pairs = dependence_pairs(loop)
        if len(pairs):
            assert (pos[pairs[:, 0]] < pos[pairs[:, 1]]).all()
            assert (
                schedule.levels[pairs[:, 0]] < schedule.levels[pairs[:, 1]]
            ).all()

    @given(n=st.integers(1, 60), seed=st.integers(0, 3000))
    @settings(max_examples=25, deadline=None)
    def test_doconsider_run_output_matches_oracle(self, n, seed):
        loop = random_irregular_loop(n, seed=seed)
        result = Doconsider(processors=8).run(loop)
        assert_matches_oracle(result.y, loop)
