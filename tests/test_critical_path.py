"""Tests for critical-path bounds: they must bound the measured runs."""

import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.graph.critical_path import (
    critical_path_cycles,
    ideal_speedup,
    iteration_weights,
)
from repro.machine.costs import CostModel
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop


class TestWeights:
    def test_uniform_terms(self):
        cm = CostModel()
        loop = make_test_loop(n=10, m=3, l=5)
        w = iteration_weights(loop, cm)
        expected = (
            cm.exec_iter_overhead
            + cm.work.overhead
            + 3 * (cm.work.term + cm.dep_check)
            + cm.flag_set
        )
        assert all(x == expected for x in w)

    def test_respects_loop_profile(self):
        from repro.sparse.ilu import ilu0
        from repro.sparse.stencils import five_point
        from repro.sparse.trisolve import TRISOLVE_WORK, lower_solve_loop
        import numpy as np

        L, _ = ilu0(five_point(5, 5))
        loop = lower_solve_loop(L, np.ones(25))
        cm = CostModel()
        w = iteration_weights(loop, cm)
        t0 = int(loop.reads.term_counts()[0])
        assert w[0] == (
            cm.exec_iter_overhead
            + TRISOLVE_WORK.overhead
            + t0 * (TRISOLVE_WORK.term + cm.dep_check)
            + cm.flag_set
        )


class TestCriticalPath:
    def test_independent_loop_path_is_one_iteration(self):
        cm = CostModel()
        loop = make_test_loop(n=50, m=1, l=3)
        assert critical_path_cycles(loop, cm) == int(
            iteration_weights(loop, cm)[0]
        )

    def test_chain_path_grows_linearly(self):
        cm = CostModel()
        short = critical_path_cycles(chain_loop(50, 1), cm)
        long = critical_path_cycles(chain_loop(100, 1), cm)
        assert long > short
        step = cm.flag_check + cm.work.term_consume + cm.flag_set
        # Iteration 0 has no read terms; the pipeline's anchor is iteration
        # 1's full weight, followed by 98 pipelined steps.
        weights = iteration_weights(chain_loop(100, 1), cm)
        expected = int(weights[1]) + 98 * step
        assert long == expected

    def test_empty_loop(self):
        cm = CostModel()
        assert critical_path_cycles(random_irregular_loop(0, seed=0), cm) == 0


class TestBoundsHoldForMeasuredRuns:
    """The real invariant: no simulated executor phase can beat the DAG
    lower bound, and no measured executor speedup can beat the structural
    ceiling."""

    @pytest.mark.parametrize(
        "loop_factory",
        [
            lambda: chain_loop(150, 1),
            lambda: chain_loop(150, 6),
            lambda: make_test_loop(n=150, m=1, l=4),
            lambda: make_test_loop(n=150, m=3, l=10),
            lambda: random_irregular_loop(150, seed=5),
        ],
    )
    def test_executor_span_at_least_critical_path(self, loop_factory):
        cm = CostModel()
        loop = loop_factory()
        for runner in (
            PreprocessedDoacross(processors=16),
            PreprocessedDoacross(processors=4, schedule="dynamic", chunk=2),
        ):
            result = runner.run(loop)
            executor = next(
                p for p in result.phases if p.name == "executor"
            )
            assert executor.span >= critical_path_cycles(loop, cm)

    def test_doconsider_also_bounded(self):
        cm = CostModel()
        loop = random_irregular_loop(120, seed=3)
        result = Doconsider(processors=16).run(loop)
        executor = next(p for p in result.phases if p.name == "executor")
        assert executor.span >= critical_path_cycles(loop, cm)

    def test_ideal_speedup_sane(self):
        cm = CostModel()
        assert ideal_speedup(chain_loop(100, 1), cm) < 4
        wide = ideal_speedup(make_test_loop(n=100, m=1, l=3), cm)
        assert wide == pytest.approx(100.0)  # fully independent

    def test_ideal_speedup_empty_loop(self):
        assert ideal_speedup(random_irregular_loop(0, seed=0), CostModel()) == 1.0
