"""Tests for the unified Runner API: protocol conformance, the backend
selector, option validation, and the deprecation shims for the old
positional signatures."""

import numpy as np
import pytest

import repro
from repro.backends import BACKENDS, make_runner
from repro.backends.base import Runner
from repro.backends.simulated import SimulatedRunner
from repro.backends.threaded import ThreadedRunner
from repro.backends.vectorized import VectorizedRunner
from repro.core.doacross import PreprocessedDoacross, parallelize
from repro.core.results import RunResult
from repro.errors import ScheduleError
from repro.machine.engine import Machine
from repro.workloads.testloop import make_test_loop


@pytest.fixture
def loop():
    return make_test_loop(n=120, m=2, l=8)


class TestProtocolConformance:
    def test_all_backends_are_runners(self):
        assert issubclass(SimulatedRunner, Runner)
        assert issubclass(ThreadedRunner, Runner)
        assert issubclass(VectorizedRunner, Runner)

    def test_runner_is_abstract(self):
        with pytest.raises(TypeError):
            Runner()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_returns_runresult(self, loop, backend):
        runner = make_runner(backend, processors=4)
        result = runner.run(loop)
        assert isinstance(result, RunResult)
        np.testing.assert_allclose(result.y, loop.run_sequential())

    def test_names(self):
        assert SimulatedRunner(Machine(2)).name == "simulated"
        assert ThreadedRunner().name == "threaded"
        assert VectorizedRunner().name == "vectorized"

    def test_make_runner_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_runner("cuda")

    def test_exported_from_package_root(self):
        for name in (
            "Runner",
            "SimulatedRunner",
            "ThreadedRunner",
            "VectorizedRunner",
            "InspectorCache",
            "make_runner",
            "BACKENDS",
        ):
            assert hasattr(repro, name)


class TestThreadedRunResult:
    def test_run_preprocessed_returns_runresult(self, loop):
        result = ThreadedRunner(threads=2).run_preprocessed(loop)
        assert isinstance(result, RunResult)
        assert result.strategy == "threaded-doacross"
        assert result.wall_seconds is not None and result.wall_seconds > 0
        assert result.total_cycles == 0
        np.testing.assert_allclose(result.y, loop.run_sequential())

    def test_no_infinite_speedup_in_summary(self, loop):
        summary = ThreadedRunner(threads=2).run(loop).summary()
        assert "speedup=inf" not in summary
        assert "(measured)" in summary


class TestOptionValidation:
    def test_chunk_zero_rejected_at_init(self):
        with pytest.raises(ScheduleError, match="chunk must be >= 1"):
            PreprocessedDoacross(chunk=0)

    def test_negative_chunk_rejected_at_run(self, loop):
        with pytest.raises(ScheduleError, match="chunk must be >= 1"):
            PreprocessedDoacross().run(loop, chunk=-3)

    def test_unknown_schedule_rejected_at_init(self):
        with pytest.raises(ScheduleError, match="unknown schedule kind"):
            PreprocessedDoacross(schedule="bogus")

    def test_unknown_schedule_rejected_at_run(self, loop):
        with pytest.raises(ScheduleError, match="unknown schedule kind"):
            PreprocessedDoacross().run(loop, schedule="bogus")

    def test_schedule_instance_accepted(self, loop):
        from repro.machine.scheduler import StaticCyclicSchedule

        schedule = StaticCyclicSchedule(loop.n, 4)
        result = PreprocessedDoacross(processors=4).run(
            loop, schedule=schedule
        )
        np.testing.assert_allclose(result.y, loop.run_sequential())


class TestDeprecationShims:
    def test_run_positional_warns_and_matches(self, loop):
        pd = PreprocessedDoacross(processors=4)
        keyword = pd.run(loop, order=None, order_label="natural")
        with pytest.warns(DeprecationWarning, match="positional options"):
            positional = pd.run(loop, None, "natural")
        assert np.array_equal(positional.y, keyword.y)
        assert positional.total_cycles == keyword.total_cycles

    def test_parallelize_positional_warns_and_matches(self, loop):
        keyword, _ = parallelize(loop, processors=8)
        with pytest.warns(DeprecationWarning, match="positional options"):
            positional, _ = parallelize(loop, 8)
        assert np.array_equal(positional.y, keyword.y)
        assert positional.processors == 8

    def test_duplicate_option_rejected(self, loop):
        pd = PreprocessedDoacross()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                pd.run(loop, None, order=None)

    def test_too_many_positionals_rejected(self, loop):
        pd = PreprocessedDoacross()
        with pytest.raises(TypeError, match="at most"):
            pd.run(loop, None, "natural", False, None, 1, False, "extra")

    def test_core_keywords_do_not_warn(self, loop):
        import warnings

        # processors/backend/cache are not part of the PlanSpec
        # consolidation and stay warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            parallelize(loop, processors=4)
            parallelize(loop, processors=4, backend="vectorized")

    def test_consolidated_keywords_warn_toward_planspec(self, loop):
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            parallelize(loop, processors=4, schedule="cyclic", chunk=2)
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            make_runner("threaded", processors=2, observe=True)

    def test_spec_form_does_not_warn(self, loop):
        import warnings

        from repro.passes import PlanSpec

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result, _ = parallelize(
                loop, spec=PlanSpec(backend="threaded", processors=4)
            )
        np.testing.assert_allclose(result.y, loop.run_sequential())

    def test_spec_rejects_legacy_keyword_mix(self, loop):
        from repro.passes import PlanSpec

        with pytest.raises(TypeError, match="cannot be combined"):
            parallelize(loop, spec=PlanSpec(), chunk=2)
        with pytest.raises(TypeError, match="cannot be combined"):
            make_runner(spec=PlanSpec(backend="threaded"), observe=True)


class TestParallelizeDispatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_agree(self, loop, backend):
        result, plan = parallelize(loop, processors=4, backend=backend)
        np.testing.assert_allclose(result.y, loop.run_sequential())
        assert result.extras["plan"] == plan.describe()

    def test_unknown_backend_rejected(self, loop):
        with pytest.raises(ValueError, match="unknown backend"):
            parallelize(loop, backend="quantum")

    def test_custom_runner_dispatch(self, loop):
        class Recording(Runner):
            name = "recording"

            def __init__(self):
                self.calls = 0

            def run(self, loop, *, order=None, schedule=None, chunk=None,
                    trace=False):
                self.calls += 1
                return VectorizedRunner().run(loop)

        runner = Recording()
        result, _ = parallelize(loop, backend=runner)
        assert runner.calls == 1
        np.testing.assert_allclose(result.y, loop.run_sequential())
