"""Liveness under corrupted schedules: bounded waits, never hangs.

A correct doacross schedule sets every ready flag the executor waits on
(deadlock freedom, DESIGN.md §6).  These tests corrupt that invariant on
purpose — running a distance-1 chain in *reversed* order, with the
backend's own order validation monkeypatched out — and demand that both
real-concurrency backends surface :class:`~repro.errors.WaitTimeout`
within a hard 2-second ceiling instead of hanging the suite.

The :class:`~repro.backends.WaitLadder` itself is unit-tested in
isolation with an injected clock and sleep, so rung transitions (spin →
escalating sleep → timeout) are checked deterministically, without
real time passing.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.backends import MultiprocRunner, ThreadedRunner, WaitLadder
from repro.backends.waitladder import DEFAULT_LADDER
from repro.errors import ReproError, WaitTimeout
from repro.workloads.synthetic import chain_loop

#: Generous wall-clock ceiling for the deliberately-corrupted runs: the
#: ladders below time out after 0.3s, so 2s means "raised, not hung".
CEILING_SECONDS = 2.0


class TestWaitLadderUnit:
    def test_immediately_ready_costs_nothing(self):
        def boom(_delay):
            raise AssertionError("ready wait must not sleep")

        slept = WaitLadder().wait(lambda: True, sleep=boom)
        assert slept == 0.0

    def test_ready_within_spin_rung_never_reads_clock(self):
        polls = iter([False, False, False, True])

        def boom():
            raise AssertionError("spin rung must not read the clock")

        slept = WaitLadder(spin=10).wait(
            lambda: next(polls), clock=boom, sleep=boom
        )
        assert slept == 0.0

    def test_sleep_rung_escalates_and_caps(self):
        ladder = WaitLadder(
            spin=0, sleep_initial=1e-4, sleep_max=4e-4, timeout=100.0
        )
        now = 0.0
        delays: list[float] = []

        def clock() -> float:
            return now

        def sleep(delay: float) -> None:
            nonlocal now
            now += delay
            delays.append(delay)

        # Poll 1 is the spin rung (spin=0 still polls once); the next six
        # answers drive six sleeps before the ready poll succeeds.
        countdown = iter([False] * 6 + [True])
        slept = ladder.wait(lambda: next(countdown), clock=clock, sleep=sleep)
        # Doubling from sleep_initial, clamped at sleep_max thereafter.
        assert delays == [1e-4, 2e-4, 4e-4, 4e-4, 4e-4, 4e-4]
        assert slept == pytest.approx(sum(delays))

    def test_timeout_raises_with_element_and_duration(self):
        ladder = WaitLadder(
            spin=0, sleep_initial=0.25, sleep_max=0.25, timeout=1.0
        )
        now = 0.0

        def clock() -> float:
            return now

        def sleep(delay: float) -> None:
            nonlocal now
            now += delay

        with pytest.raises(WaitTimeout) as info:
            ladder.wait(lambda: False, element=42, clock=clock, sleep=sleep)
        assert info.value.element == 42
        assert info.value.waited_seconds >= 1.0
        assert "element 42" in str(info.value)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spin": -1},
            {"sleep_initial": 0.0},
            {"sleep_initial": -1e-3},
            {"sleep_initial": 2e-3, "sleep_max": 1e-3},
            {"timeout": 0.0},
            {"timeout": -5.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WaitLadder(**kwargs)

    def test_ladder_is_immutable_and_picklable(self):
        ladder = WaitLadder(spin=7, timeout=1.5)
        with pytest.raises(Exception):
            ladder.spin = 8  # frozen dataclass
        clone = pickle.loads(pickle.dumps(ladder))
        assert clone == ladder

    def test_wait_timeout_survives_pickling(self):
        """The exception crosses the worker->main process queue."""
        exc = WaitTimeout("corrupt", element=3, waited_seconds=0.5)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, WaitTimeout)
        assert clone.element == 3
        assert clone.waited_seconds == 0.5

    def test_default_ladder_is_sane(self):
        assert DEFAULT_LADDER.timeout >= 1.0
        assert DEFAULT_LADDER.sleep_max <= 0.01


def _corrupt_order(loop) -> np.ndarray:
    """Reversed execution order on a distance-1 chain: iteration 0 runs
    last, so every consumer waits on a flag its producer can never set
    first — the canonical unsatisfiable schedule."""
    return np.arange(loop.n - 1, -1, -1, dtype=np.int64)


@pytest.fixture
def chain():
    return chain_loop(64, 1)


class TestCorruptedScheduleLiveness:
    def test_threaded_raises_wait_timeout_not_hang(
        self, chain, monkeypatch
    ):
        import repro.backends.threaded as threaded_mod

        monkeypatch.setattr(
            threaded_mod, "validate_execution_order", lambda loop, order: None
        )
        runner = ThreadedRunner(threads=2, wait_timeout=0.3)
        start = time.perf_counter()
        with pytest.raises(WaitTimeout):
            runner.run(chain, order=_corrupt_order(chain))
        assert time.perf_counter() - start < CEILING_SECONDS

    def test_multiproc_raises_wait_timeout_not_hang(self, chain, monkeypatch):
        import repro.backends.multiproc as multiproc_mod

        monkeypatch.setattr(
            multiproc_mod, "validate_execution_order", lambda loop, order: None
        )
        ladder = WaitLadder(
            spin=10, sleep_initial=1e-4, sleep_max=1e-3, timeout=0.3
        )
        runner = MultiprocRunner(workers=2, ladder=ladder)
        try:
            start = time.perf_counter()
            with pytest.raises(WaitTimeout):
                runner.run(chain, order=_corrupt_order(chain))
            assert time.perf_counter() - start < CEILING_SECONDS
            # The pool survives the failed run and the session scrub
            # restores the scratch arrays: the next run is correct.
            result = runner.run(chain)
            assert np.array_equal(result.y, chain.run_sequential())
        finally:
            runner.close()

    def test_race_checker_passes_the_corrupt_order(self, chain):
        """The happens-before checker is a *safety* model: under the
        reversed order every true-dependence read is still protected by
        a wait edge, so there is no race to report — the schedule's
        defect is a liveness one (the awaited flags are never set), which
        no static race check can see.  This pins the division of labor:
        hb catches unordered reads, the ladder catches unsatisfiable
        waits."""
        from repro.lint.hb import check_backend_schedule

        for backend in ("threaded", "multiproc"):
            report = check_backend_schedule(
                chain, backend, processors=2, order=_corrupt_order(chain)
            )
            assert report.passed
            assert report.checked_edges == chain.n - 1

    def test_threaded_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            ThreadedRunner(threads=2, wait_timeout=0.0)

    def test_multiproc_collect_errors_are_repro_errors(self, chain):
        """Whatever goes wrong on the far side of the queue surfaces as
        a ReproError subclass, never a bare hang or a raw pickle blob."""
        runner = MultiprocRunner(workers=2)
        try:
            result = runner.run(chain)
            assert np.array_equal(result.y, chain.run_sequential())
        except ReproError:
            pytest.fail("healthy run must not raise")
        finally:
            runner.close()


class TestCorruptedScheduleSanitize:
    """The sanitizer names the edge the liveness failure stalls on.

    ``test_race_checker_passes_the_corrupt_order`` above pins that static
    happens-before *passes* the reversed chain — every read is behind a
    wait edge, the defect is that the awaited flags are never set.  The
    static model predicts exactly which edge that is: the first corrupt
    iteration (``i = n-1``) reads element ``n-2``, whose producing write
    is scheduled *after* it, so the wait on flag ``n-2`` can never be
    satisfied.  Under ``validate="sanitize"`` the shadow log records the
    acquire before the wait blocks, and the partial replay surfaces it
    as an ``unsatisfied-acquire`` violation on that same element.
    """

    def _expect_unsatisfied(self, runner, chain):
        from repro.errors import SanitizerError

        start = time.perf_counter()
        with pytest.raises(SanitizerError) as info:
            runner.run(chain, order=_corrupt_order(chain))
        assert time.perf_counter() - start < CEILING_SECONDS
        report = info.value.report
        kinds = {v.kind for v in report.violations}
        assert kinds == {"unsatisfied-acquire"}
        # The static hb edge for the first corrupt iteration: i = n-1
        # reads element n-2.  That exact flag is among the stalled waits.
        stalled_tokens = {v.token for v in report.violations}
        assert chain.n - 2 in stalled_tokens

    def test_threaded_sanitizer_names_the_missing_edge(
        self, chain, monkeypatch
    ):
        import repro.backends.threaded as threaded_mod
        from repro.sanitize import SanitizingRunner

        monkeypatch.setattr(
            threaded_mod, "validate_execution_order", lambda loop, order: None
        )
        runner = SanitizingRunner(
            ThreadedRunner(threads=2, wait_timeout=0.3)
        )
        self._expect_unsatisfied(runner, chain)

    def test_multiproc_sanitizer_names_the_missing_edge(
        self, chain, monkeypatch
    ):
        import repro.backends.multiproc as multiproc_mod
        from repro.sanitize import SanitizingRunner

        monkeypatch.setattr(
            multiproc_mod, "validate_execution_order", lambda loop, order: None
        )
        ladder = WaitLadder(
            spin=10, sleep_initial=1e-4, sleep_max=1e-3, timeout=0.3
        )
        inner = MultiprocRunner(workers=2, ladder=ladder)
        runner = SanitizingRunner(inner)
        try:
            self._expect_unsatisfied(runner, chain)
            # The pool survives the sanitized failure; a clean rerun
            # through the same sanitizing wrapper is correct and quiet.
            result = runner.run(chain)
            assert np.array_equal(result.y, chain.run_sequential())
            assert result.extras["sanitize"]["violations"] == []
        finally:
            inner.close()

    def test_sanitizer_agrees_with_static_hb_on_the_clean_order(self, chain):
        """Positive control: on the *correct* order both models agree
        there is nothing to report — static hb passes and the dynamic
        replay is violation-free."""
        from repro.lint.hb import check_backend_schedule
        from repro.sanitize import SanitizingRunner

        assert check_backend_schedule(chain, "threaded", processors=2).passed
        runner = SanitizingRunner(ThreadedRunner(threads=2))
        result = runner.run(chain)
        assert np.array_equal(result.y, chain.run_sequential())
        assert result.extras["sanitize"]["violations"] == []
