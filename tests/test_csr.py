"""Tests for the CSR matrix, with SciPy and dense NumPy as oracles."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import MatrixFormatError
from repro.sparse.csr import CSRMatrix


def random_dense(n_rows, n_cols, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n_rows, n_cols))
    dense[rng.random((n_rows, n_cols)) > density] = 0.0
    return dense


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = random_dense(6, 8, seed=1)
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(A.to_dense(), dense)

    def test_validation_indptr_length(self):
        with pytest.raises(MatrixFormatError, match="indptr length"):
            CSRMatrix(2, 2, [0, 1], [0], [1.0])

    def test_validation_indptr_endpoints(self):
        with pytest.raises(MatrixFormatError, match="endpoints"):
            CSRMatrix(1, 1, [0, 2], [0], [1.0])

    def test_validation_monotone_indptr(self):
        with pytest.raises(MatrixFormatError):
            CSRMatrix(2, 3, [0, 2, 1], [0, 1, 2], [1.0, 1.0, 1.0])

    def test_validation_column_range(self):
        with pytest.raises(MatrixFormatError, match="column index"):
            CSRMatrix(1, 2, [0, 1], [2], [1.0])

    def test_validation_sorted_rows(self):
        with pytest.raises(MatrixFormatError, match="unsorted"):
            CSRMatrix(1, 3, [0, 2], [2, 0], [1.0, 1.0])

    def test_validation_duplicate_columns(self):
        with pytest.raises(MatrixFormatError, match="unsorted or duplicate"):
            CSRMatrix(1, 3, [0, 2], [1, 1], [1.0, 1.0])


class TestOperations:
    def test_matvec_matches_dense(self):
        dense = random_dense(7, 5, seed=2)
        A = CSRMatrix.from_dense(dense)
        x = np.arange(5.0)
        np.testing.assert_allclose(A.matvec(x), dense @ x)

    def test_matvec_shape_check(self):
        A = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(MatrixFormatError):
            A.matvec(np.ones(4))

    def test_get(self):
        A = CSRMatrix.from_dense([[0.0, 2.0], [3.0, 0.0]])
        assert A.get(0, 1) == 2.0
        assert A.get(0, 0) == 0.0

    def test_diagonal(self):
        dense = random_dense(5, 5, seed=3)
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(A.diagonal(), np.diag(dense))

    def test_row_nnz(self):
        A = CSRMatrix.from_dense([[1.0, 1.0], [0.0, 0.0]])
        np.testing.assert_array_equal(A.row_nnz(), [2, 0])

    def test_transpose_matches_scipy(self):
        dense = random_dense(6, 9, seed=4)
        A = CSRMatrix.from_dense(dense)
        T = A.transpose()
        np.testing.assert_allclose(T.to_dense(), dense.T)
        assert T.shape == (9, 6)

    def test_transpose_empty(self):
        A = CSRMatrix(2, 3, [0, 0, 0], [], [])
        assert A.transpose().shape == (3, 2)

    def test_copy_is_independent(self):
        A = CSRMatrix.from_dense(np.eye(2))
        B = A.copy()
        B.data[0] = 99.0
        assert A.get(0, 0) == 1.0


class TestTriangles:
    def test_lower_upper_split(self):
        dense = random_dense(6, 6, density=0.6, seed=5)
        np.fill_diagonal(dense, 1.0)
        A = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(
            A.lower_triangle().to_dense(), np.tril(dense)
        )
        np.testing.assert_allclose(
            A.upper_triangle().to_dense(), np.triu(dense)
        )
        np.testing.assert_allclose(
            A.strict_lower_triangle().to_dense(), np.tril(dense, -1)
        )

    def test_unit_lower(self):
        dense = random_dense(5, 5, density=0.8, seed=6)
        np.fill_diagonal(dense, 3.0)
        A = CSRMatrix.from_dense(dense)
        L = A.lower_triangle(unit=True)
        np.testing.assert_allclose(L.diagonal(), np.ones(5))
        np.testing.assert_allclose(
            np.tril(L.to_dense(), -1), np.tril(dense, -1)
        )

    def test_unit_lower_requires_diagonal_pattern(self):
        dense = np.array([[1.0, 0.0], [1.0, 0.0]])  # row 1 lacks diagonal
        A = CSRMatrix.from_dense(dense)
        with pytest.raises(MatrixFormatError, match="no diagonal"):
            A.lower_triangle(unit=True)


class TestPermutation:
    def test_symmetric_permutation_matches_dense(self):
        dense = random_dense(6, 6, density=0.5, seed=7)
        A = CSRMatrix.from_dense(dense)
        perm = np.array([3, 1, 5, 0, 2, 4])
        P = A.permuted(perm)
        np.testing.assert_allclose(P.to_dense(), dense[np.ix_(perm, perm)])

    def test_permutation_requires_square(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(MatrixFormatError, match="square"):
            A.permuted([0, 1])

    def test_bad_permutation_rejected(self):
        A = CSRMatrix.from_dense(np.eye(3))
        with pytest.raises(MatrixFormatError):
            A.permuted([0, 0, 1])


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(3))
    def test_matvec_against_scipy(self, seed):
        dense = random_dense(20, 20, density=0.2, seed=seed)
        ours = CSRMatrix.from_dense(dense)
        theirs = sp.csr_matrix(dense)
        x = np.random.default_rng(seed).normal(size=20)
        np.testing.assert_allclose(ours.matvec(x), theirs @ x)

    def test_structure_against_scipy(self):
        dense = random_dense(15, 15, density=0.25, seed=9)
        ours = CSRMatrix.from_dense(dense)
        theirs = sp.csr_matrix(dense)
        np.testing.assert_array_equal(ours.indptr, theirs.indptr)
        np.testing.assert_array_equal(ours.indices, theirs.indices)
