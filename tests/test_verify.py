"""Tests for the cross-strategy verification tool."""

from repro.core.verify import verify_loop
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop


class TestVerifyLoop:
    def test_random_loop_passes(self):
        report = verify_loop(random_irregular_loop(60, seed=3))
        assert report.passed
        names = {c.strategy for c in report.ran}
        assert "preprocessed-doacross" in names
        assert "doconsider-doacross" in names
        assert "stripmined-doacross" in names

    def test_linear_skipped_for_indirect_writes(self):
        report = verify_loop(
            random_irregular_loop(40, seed=1), include_threaded=False
        )
        linear = next(
            c for c in report.checks if c.strategy == "linear-doacross"
        )
        assert linear.skipped
        assert "affine" in linear.skipped_reason

    def test_linear_runs_for_affine_writes(self):
        report = verify_loop(
            make_test_loop(n=60, m=2, l=6), include_threaded=False
        )
        linear = next(
            c for c in report.checks if c.strategy == "linear-doacross"
        )
        assert not linear.skipped
        assert report.passed

    def test_classic_runs_for_chain_loops(self):
        report = verify_loop(chain_loop(80, 3), include_threaded=False)
        classic = next(
            c for c in report.checks if c.strategy == "classic-doacross"
        )
        assert not classic.skipped
        assert report.passed

    def test_doall_runs_only_when_independent(self):
        dep = verify_loop(chain_loop(40, 1), include_threaded=False)
        doall_dep = next(c for c in dep.checks if c.strategy == "doall")
        assert doall_dep.skipped

        free = verify_loop(
            random_irregular_loop(40, max_terms=0, seed=0),
            include_threaded=False,
        )
        doall_free = next(c for c in free.checks if c.strategy == "doall")
        assert not doall_free.skipped
        assert free.passed

    def test_threaded_included_on_request(self):
        report = verify_loop(
            random_irregular_loop(30, seed=5), include_threaded=True, threads=2
        )
        assert any(c.strategy.startswith("threaded") for c in report.checks)
        assert report.passed

    def test_summary_format(self):
        report = verify_loop(
            make_test_loop(n=30, m=1, l=4), include_threaded=False
        )
        s = report.summary()
        assert "PASS" in s
        assert "preprocessed-doacross: ok" in s
        assert "skipped" in s  # doall is skipped here

    def test_detects_injected_mismatch(self):
        """A corrupted check must flip the verdict (the tool can fail)."""
        from repro.core.verify import StrategyCheck

        report = verify_loop(
            random_irregular_loop(20, seed=2), include_threaded=False
        )
        report.checks.append(
            StrategyCheck(strategy="bogus", max_abs_diff=1.0, passed=False)
        )
        assert not report.passed
        assert "MISMATCH" in report.summary()

    def test_empty_loop(self):
        report = verify_loop(
            random_irregular_loop(0, seed=0), include_threaded=False
        )
        assert report.passed
