"""The cross-backend telemetry contract.

One schema, three backends: every observed run — simulated cycles,
threaded wall clock, vectorized wall clock — must attach a
``RunResult.telemetry`` blob that passes :func:`validate_telemetry`,
report the same three pipeline phases, and survive JSON serialization.
This file is the acceptance gate the obs subsystem was built against.
"""

import json

import numpy as np
import pytest

from repro import parallelize
from repro.backends import InspectorCache, make_runner
from repro.core.serialize import result_to_dict
from repro.errors import TelemetryError
from repro.obs import (
    CAT_COMPUTE,
    CAT_PHASE,
    CAT_RUN,
    CAT_WAIT,
    CLOCK_CYCLES,
    CLOCK_WALL,
    PHASE_NAMES,
    InstrumentedRunner,
    validate_telemetry,
)
from repro.workloads.testloop import make_test_loop

BACKENDS = ("simulated", "threaded", "vectorized")


@pytest.fixture(scope="module")
def loop():
    # Even l: the loop carries true cross-iteration dependencies, so the
    # busy-wait machinery (and its wait spans) actually engages.
    return make_test_loop(n=400, m=2, l=8)


@pytest.fixture(scope="module")
def observed(loop):
    """One observed run per backend (module-scoped: runs are not free)."""
    return {
        backend: make_runner(backend, processors=4, observe=True).run(loop)
        for backend in BACKENDS
    }


class TestSharedSchema:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_telemetry_validates(self, observed, backend):
        result = observed[backend]
        assert result.telemetry is not None
        validate_telemetry(result.telemetry.as_dict())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_three_phases_reported(self, observed, backend):
        phases = observed[backend].telemetry.phase_totals()
        assert set(PHASE_NAMES) <= set(phases), backend
        assert all(v >= 0 for v in phases.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exactly_one_run_span_brackets_everything(self, observed, backend):
        tel = observed[backend].telemetry
        runs = [s for s in tel.spans if s.cat == CAT_RUN]
        assert len(runs) == 1
        assert runs[0].start == 0.0
        assert runs[0].end == pytest.approx(tel.span_total())

    def test_span_and_metric_keys_identical_across_backends(self, observed):
        span_keysets = set()
        metric_keysets = set()
        for result in observed.values():
            blob = result.telemetry.as_dict()
            for span in blob["spans"]:
                span_keysets.add(frozenset(span.keys()))
            metric_keysets.add(frozenset(blob["metrics"].keys()))
        assert len(span_keysets) == 1
        assert len(metric_keysets) == 1

    def test_clocks(self, observed):
        assert observed["simulated"].telemetry.clock == CLOCK_CYCLES
        assert observed["threaded"].telemetry.clock == CLOCK_WALL
        assert observed["vectorized"].telemetry.clock == CLOCK_WALL

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serializes_through_json(self, observed, backend):
        blob = json.loads(json.dumps(result_to_dict(observed[backend])))
        assert blob["telemetry"] is not None
        validate_telemetry(blob["telemetry"])

    def test_unobserved_run_has_no_telemetry(self, loop):
        result = make_runner("threaded", processors=4).run(loop)
        assert result.telemetry is None
        assert result_to_dict(result)["telemetry"] is None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallelize_observe(self, loop, backend):
        result, _ = parallelize(
            loop, processors=4, backend=backend, observe=True
        )
        assert result.telemetry is not None
        validate_telemetry(result.telemetry.as_dict())

    def test_observed_values_equal_oracle(self, loop, observed):
        reference = loop.run_sequential()
        for backend, result in observed.items():
            assert np.array_equal(result.y, reference), backend


class TestThreadedAccountingInvariant:
    """Wall-clock analogue of the simulated trace/stats invariant: each
    lane's compute + wait spans exactly tile its executor phase span."""

    def test_compute_plus_wait_tiles_executor_phase(self, observed):
        tel = observed["threaded"].telemetry
        lanes = tel.lanes()
        assert lanes, "no lanes recorded"
        for lane in lanes:
            phase = [
                s
                for s in tel.spans
                if s.cat == CAT_PHASE and s.name == "executor" and s.lane == lane
            ]
            assert len(phase) == 1, f"lane {lane}"
            children = sum(
                s.duration
                for s in tel.spans
                if s.cat in (CAT_COMPUTE, CAT_WAIT) and s.lane == lane
            )
            assert children == pytest.approx(
                phase[0].duration, rel=1e-6, abs=1e-9
            ), f"lane {lane}"

    def test_children_stay_inside_their_phase(self, observed):
        tel = observed["threaded"].telemetry
        for lane in tel.lanes():
            (phase,) = [
                s
                for s in tel.spans
                if s.cat == CAT_PHASE and s.name == "executor" and s.lane == lane
            ]
            for s in tel.spans:
                if s.lane == lane and s.cat in (CAT_COMPUTE, CAT_WAIT):
                    assert s.start >= phase.start - 1e-9
                    assert s.end <= phase.end + 1e-9

    def test_wait_metrics_match_wait_spans(self, observed):
        tel = observed["threaded"].telemetry
        counters = tel.metrics.as_dict()["counters"]
        wait_spans = [s for s in tel.spans if s.cat == CAT_WAIT]
        assert counters["busy_waits"] == len(wait_spans)
        assert counters["wait_seconds"] == pytest.approx(
            sum(s.duration for s in wait_spans), rel=1e-6, abs=1e-9
        )
        # Dependence-carrying loop on >1 thread: some waits must block.
        assert counters["flag_sets"] == 400
        assert counters["flag_checks"] >= 1


class TestSimulatedTelemetry:
    def test_phase_extents_match_breakdown(self, observed):
        result = observed["simulated"]
        phases = result.telemetry.phase_totals()
        b = result.breakdown
        for name in PHASE_NAMES:
            assert phases[name] == pytest.approx(float(getattr(b, name)))
        assert result.telemetry.span_total() == pytest.approx(
            float(result.total_cycles)
        )

    def test_trace_not_left_behind_unless_requested(self, loop):
        runner = make_runner("simulated", processors=4, observe=True)
        result = runner.run(loop)
        assert "trace" not in result.extras
        assert any(s.cat == CAT_COMPUTE for s in result.telemetry.spans)
        traced = runner.run(loop, trace=True)
        assert "trace" in traced.extras


class TestInspectorCacheMetrics:
    """Satellite: cache hit/miss counters flow through the registry and
    survive RunResult serialization."""

    def test_cache_stats_survive_serialization(self, loop):
        cache = InspectorCache()
        runner = make_runner("vectorized", cache=cache, observe=True)
        cold = runner.run(loop)
        warm = runner.run(loop)

        cold_counters = cold.telemetry.metrics.as_dict()["counters"]
        assert cold_counters["inspector_cache_misses"] == 1
        assert cold_counters["inspector_cache_hits"] == 0

        blob = json.loads(json.dumps(result_to_dict(warm)))
        counters = blob["telemetry"]["metrics"]["counters"]
        gauges = blob["telemetry"]["metrics"]["gauges"]
        assert counters["inspector_cache_hits"] == 1
        assert counters["inspector_cache_misses"] == 0
        assert gauges["inspector_cache_hits_total"] == 1
        assert gauges["inspector_cache_misses_total"] == 1
        assert gauges["inspector_cache_entries"] == 1
        assert blob["extras"]["cache_hits_total"] == 1
        assert blob["extras"]["cache_misses_total"] == 1

    def test_level_width_histogram(self, observed):
        metrics = observed["vectorized"].telemetry.metrics.as_dict()
        hist = metrics["histograms"]["level_width"]
        assert hist["count"] >= 1
        assert hist["sum"] == 400  # every iteration is in exactly one level


class TestIgnoredOptions:
    """Satellite: silently-dropped run options become structured notes."""

    @pytest.mark.parametrize("backend", ("threaded", "vectorized"))
    def test_notes_recorded_and_serialized(self, loop, backend):
        result = make_runner(backend, processors=2).run(
            loop, schedule="block", chunk=4, trace=True
        )
        notes = result.extras["ignored_options"]
        assert {n["option"] for n in notes} == {"schedule", "chunk", "trace"}
        for note in notes:
            assert note["backend"] == backend
            assert note["reason"]
        blob = json.loads(json.dumps(result_to_dict(result)))
        assert blob["ignored_options"] == notes
        assert "ignored schedule=" in result.summary()

    def test_defaults_produce_no_notes(self, loop):
        for backend in BACKENDS:
            result = make_runner(backend, processors=2).run(loop)
            assert "ignored_options" not in result.extras, backend
            assert result_to_dict(result)["ignored_options"] == []

    def test_simulated_honors_options_no_notes(self, loop):
        result = make_runner("simulated", processors=2).run(
            loop, schedule="block", chunk=4, trace=True
        )
        assert "ignored_options" not in result.extras


class TestValidatorRejects:
    def base(self):
        return {
            "schema_version": 1,
            "backend": "threaded",
            "clock": "wall_seconds",
            "spans": [],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def test_accepts_minimal(self):
        validate_telemetry(self.base())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b.update(schema_version=99),
            lambda b: b.update(clock="fortnights"),
            lambda b: b.update(backend=""),
            lambda b: b.pop("metrics"),
            lambda b: b["metrics"].pop("histograms"),
            lambda b: b.update(
                spans=[
                    {
                        "name": "x",
                        "cat": "nonsense",
                        "start": 0,
                        "end": 1,
                        "lane": 0,
                        "attrs": {},
                    }
                ]
            ),
            lambda b: b.update(
                spans=[
                    {
                        "name": "x",
                        "cat": "compute",
                        "start": 5,
                        "end": 1,
                        "lane": 0,
                        "attrs": {},
                    }
                ]
            ),
        ],
    )
    def test_rejects(self, mutate):
        blob = self.base()
        mutate(blob)
        with pytest.raises(TelemetryError):
            validate_telemetry(blob)

    def test_spans_without_run_span_rejected(self):
        blob = self.base()
        blob["spans"] = [
            {
                "name": "compute",
                "cat": "compute",
                "start": 0,
                "end": 1,
                "lane": 0,
                "attrs": {},
            }
        ]
        with pytest.raises(TelemetryError, match="run-category"):
            validate_telemetry(blob)


class TestComposition:
    def test_instrumented_over_validating(self, loop):
        runner = make_runner(
            "threaded", processors=2, validate="static", observe=True
        )
        assert isinstance(runner, InstrumentedRunner)
        result = runner.run(loop)
        assert result.telemetry is not None
        assert result.telemetry.backend == "threaded"
        assert "race_check" in result.extras
        validate_telemetry(result.telemetry.as_dict())

    def test_hooks_detached_after_run(self, loop):
        runner = make_runner("threaded", processors=2, observe=True)
        inner = runner.inner
        runner.run(loop)
        assert inner._obs_recorder is None
        assert inner._obs_metrics is None


class TestPercentiles:
    """MetricsRegistry.percentiles and its surfacing in serialized blobs."""

    def test_quantiles_linear_interpolation(self):
        from repro.obs import MetricsRegistry

        met = MetricsRegistry()
        met.observe_many("lat", [float(v) for v in range(1, 101)])
        q = met.percentiles("lat")
        assert q["p50"] == pytest.approx(50.5)
        assert q["p95"] == pytest.approx(95.05)
        assert q["p99"] == pytest.approx(99.01)

    def test_single_sample_collapses_all_quantiles(self):
        from repro.obs import MetricsRegistry

        met = MetricsRegistry()
        met.observe("lat", 7.0)
        assert met.percentiles("lat") == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_unknown_histogram_is_empty(self):
        from repro.obs import MetricsRegistry

        assert MetricsRegistry().percentiles("never_observed") == {}

    def test_as_dict_injects_quantiles_and_validates(self):
        from repro.obs import MetricsRegistry

        met = MetricsRegistry()
        met.observe_many("level_width", [1.0, 2.0, 8.0])
        blob = met.as_dict()["histograms"]["level_width"]
        assert {"count", "sum", "min", "max", "p50", "p95", "p99"} <= set(blob)
        telemetry = {
            "schema_version": 1,
            "backend": "vectorized",
            "clock": "wall_seconds",
            "spans": [],
            "metrics": met.as_dict(),
        }
        validate_telemetry(telemetry)  # optional keys pass the gate

    def test_merge_carries_samples(self):
        from repro.obs import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe_many("lat", [1.0, 2.0])
        b.observe_many("lat", [3.0, 4.0])
        a.merge(b)
        assert a.percentiles("lat")["p50"] == pytest.approx(2.5)

    def test_vectorized_run_reports_level_width_percentiles(self, loop):
        from repro.passes import PlanSpec

        result, _ = parallelize(
            loop, spec=PlanSpec(backend="vectorized", observe=True)
        )
        hist = result.telemetry.metrics.as_dict()["histograms"]["level_width"]
        assert "p50" in hist and hist["p50"] <= hist["max"]
