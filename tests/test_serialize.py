"""Tests for run-result serialization."""

import json

from repro.core.doacross import PreprocessedDoacross
from repro.core.serialize import result_to_dict, result_to_json, results_to_csv
from repro.workloads.testloop import make_test_loop


def sample_results():
    runner = PreprocessedDoacross(processors=4)
    return [
        runner.run(make_test_loop(n=60, m=1, l=3)),
        runner.run(make_test_loop(n=60, m=2, l=4)),
    ]


class TestResultToDict:
    def test_roundtrips_through_json(self):
        result = sample_results()[0]
        record = json.loads(result_to_json(result))
        assert record["strategy"] == "preprocessed-doacross"
        assert record["processors"] == 4
        assert record["total_cycles"] == result.total_cycles
        assert record["efficiency"] == result.efficiency

    def test_phases_flattened(self):
        record = result_to_dict(sample_results()[0])
        assert set(record["phases"]) == {
            "inspector",
            "executor",
            "postprocessor",
        }
        assert record["phases"]["executor"]["iterations"] == 60

    def test_y_summarized_not_embedded(self):
        record = result_to_dict(sample_results()[0])
        assert record["y_len"] > 0
        assert len(record["y_checksum"]) == 16
        assert "y" not in record

    def test_checksum_distinguishes_values(self):
        a, b = sample_results()
        assert (
            result_to_dict(a)["y_checksum"] != result_to_dict(b)["y_checksum"]
        )

    def test_identical_runs_identical_records(self):
        runner = PreprocessedDoacross(processors=4)
        loop = make_test_loop(n=50, m=1, l=4)
        r1 = result_to_json(runner.run(loop))
        r2 = result_to_json(runner.run(loop))
        assert r1 == r2

    def test_extras_keep_json_safe_values_drop_the_rest(self):
        import numpy as np

        result = sample_results()[0]
        result.extras["array"] = [1, 2, 3]
        result.extras["note"] = "fine"
        result.extras["nested"] = {"ok": True, "trace": object()}
        result.extras["np"] = np.int64(7)
        result.extras["tracer"] = object()
        record = result_to_dict(result)
        # JSON-representable structures survive (the lint / race_check
        # reports ride through --json); unrepresentable leaves drop out.
        assert record["extras"]["array"] == [1, 2, 3]
        assert record["extras"]["note"] == "fine"
        assert record["extras"]["nested"] == {"ok": True}
        assert record["extras"]["np"] == 7
        assert "tracer" not in record["extras"]
        json.dumps(record)  # the whole record stays serializable


class TestWrapperCompositionExtras:
    """validate= and observe= must compose in either order, and their
    reports must survive into the serialized record (regression: the
    old scalar-only extras filter silently dropped both)."""

    def _check(self, runner, loop):
        import numpy as np

        result = runner.run(loop)
        assert np.array_equal(result.y, loop.run_sequential())
        assert result.telemetry is not None
        record = result_to_dict(result)
        assert record["extras"]["race_check"]["passed"] is True
        assert record["extras"]["race_check"]["checked_edges"] > 0
        assert isinstance(record["extras"]["lint"], list)
        json.dumps(record)

    def test_validate_then_observe(self):
        from repro.backends import make_runner

        loop = make_test_loop(n=60, m=2, l=8)
        self._check(
            make_runner("vectorized", validate="static", observe=True), loop
        )

    def test_observe_then_validate(self):
        from repro.backends import ValidatingRunner, make_runner
        from repro.obs.instrument import InstrumentedRunner

        loop = make_test_loop(n=60, m=2, l=8)
        inner = make_runner("vectorized")
        self._check(ValidatingRunner(InstrumentedRunner(inner)), loop)


class TestCsv:
    def test_header_and_rows(self):
        text = results_to_csv(sample_results())
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("loop,strategy,processors")
        assert "preprocessed-doacross" in lines[1]

    def test_commas_in_fields_quoted(self):
        results = sample_results()
        results[0].loop_name = "a,b"
        text = results_to_csv(results)
        assert '"a,b"' in text

    def test_empty_list(self):
        text = results_to_csv([])
        assert text.strip() == (
            "loop,strategy,processors,schedule,order,total_cycles,"
            "sequential_cycles,speedup,efficiency,wait_cycles,y_checksum"
        )
