"""Tests for run-result serialization."""

import json

from repro.core.doacross import PreprocessedDoacross
from repro.core.serialize import result_to_dict, result_to_json, results_to_csv
from repro.workloads.testloop import make_test_loop


def sample_results():
    runner = PreprocessedDoacross(processors=4)
    return [
        runner.run(make_test_loop(n=60, m=1, l=3)),
        runner.run(make_test_loop(n=60, m=2, l=4)),
    ]


class TestResultToDict:
    def test_roundtrips_through_json(self):
        result = sample_results()[0]
        record = json.loads(result_to_json(result))
        assert record["strategy"] == "preprocessed-doacross"
        assert record["processors"] == 4
        assert record["total_cycles"] == result.total_cycles
        assert record["efficiency"] == result.efficiency

    def test_phases_flattened(self):
        record = result_to_dict(sample_results()[0])
        assert set(record["phases"]) == {
            "inspector",
            "executor",
            "postprocessor",
        }
        assert record["phases"]["executor"]["iterations"] == 60

    def test_y_summarized_not_embedded(self):
        record = result_to_dict(sample_results()[0])
        assert record["y_len"] > 0
        assert len(record["y_checksum"]) == 16
        assert "y" not in record

    def test_checksum_distinguishes_values(self):
        a, b = sample_results()
        assert (
            result_to_dict(a)["y_checksum"] != result_to_dict(b)["y_checksum"]
        )

    def test_identical_runs_identical_records(self):
        runner = PreprocessedDoacross(processors=4)
        loop = make_test_loop(n=50, m=1, l=4)
        r1 = result_to_json(runner.run(loop))
        r2 = result_to_json(runner.run(loop))
        assert r1 == r2

    def test_non_scalar_extras_dropped(self):
        result = sample_results()[0]
        result.extras["array"] = [1, 2, 3]
        result.extras["note"] = "fine"
        record = result_to_dict(result)
        assert "array" not in record["extras"]
        assert record["extras"]["note"] == "fine"


class TestCsv:
    def test_header_and_rows(self):
        text = results_to_csv(sample_results())
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("loop,strategy,processors")
        assert "preprocessed-doacross" in lines[1]

    def test_commas_in_fields_quoted(self):
        results = sample_results()
        results[0].loop_name = "a,b"
        text = results_to_csv(results)
        assert '"a,b"' in text

    def test_empty_list(self):
        text = results_to_csv([])
        assert text.strip() == (
            "loop,strategy,processors,schedule,order,total_cycles,"
            "sequential_cycles,speedup,efficiency,wait_cycles,y_checksum"
        )
