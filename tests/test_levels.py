"""Tests for level scheduling, with networkx as an independent oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import compute_levels
from repro.ir.analysis import dependence_pairs
from repro.workloads.synthetic import chain_loop, random_irregular_loop


def nx_levels(loop):
    """Oracle: longest-path level per node via networkx."""
    g = nx.DiGraph()
    g.add_nodes_from(range(loop.n))
    g.add_edges_from(map(tuple, dependence_pairs(loop).tolist()))
    levels = {}
    for node in nx.topological_sort(g):
        preds = list(g.predecessors(node))
        levels[node] = 1 + max((levels[p] for p in preds), default=-1)
    return np.array([levels[i] for i in range(loop.n)])


class TestLevels:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_oracle(self, seed):
        loop = random_irregular_loop(70, seed=seed)
        schedule = compute_levels(loop)
        np.testing.assert_array_equal(schedule.levels, nx_levels(loop))

    def test_chain(self):
        schedule = compute_levels(chain_loop(12, 1))
        np.testing.assert_array_equal(schedule.levels, np.arange(12))
        assert schedule.n_levels == 12

    def test_level_ptr_partitions_order(self):
        loop = random_irregular_loop(50, seed=3)
        s = compute_levels(loop)
        assert s.level_ptr[0] == 0
        assert s.level_ptr[-1] == 50
        for k in range(s.n_levels):
            segment = s.order[s.level_ptr[k] : s.level_ptr[k + 1]]
            assert np.all(s.levels[segment] == k)

    def test_level_sizes_sum_to_n(self):
        loop = random_irregular_loop(64, seed=8)
        s = compute_levels(loop)
        assert int(s.level_sizes().sum()) == 64
        assert s.max_width() == int(s.level_sizes().max())

    def test_validate_passes_for_computed_levels(self):
        loop = random_irregular_loop(60, seed=2)
        g = DependenceGraph.from_loop(loop)
        compute_levels(g).validate(g)

    def test_validate_catches_bad_levels(self):
        g = DependenceGraph(2, np.array([[0, 1]]))
        s = compute_levels(g)
        s.levels[:] = 0  # corrupt
        with pytest.raises(AssertionError, match="ascend"):
            s.validate(g)

    def test_empty_loop(self):
        s = compute_levels(random_irregular_loop(0, seed=0))
        assert s.n_levels == 0
        assert s.n == 0
        assert s.max_width() == 0
        assert s.average_width() == 0.0

    def test_order_stable_within_level(self):
        """Ties broken by original index (deterministic reports)."""
        loop = random_irregular_loop(40, max_terms=0, seed=0)  # all level 0
        s = compute_levels(loop)
        np.testing.assert_array_equal(s.order, np.arange(40))


class TestLevelMethods:
    """The vectorized frontier method must agree with the per-node sweep."""

    @pytest.mark.parametrize("seed", range(8))
    def test_frontier_matches_sweep(self, seed):
        loop = random_irregular_loop(100, seed=seed)
        sweep = compute_levels(loop, method="sweep")
        frontier = compute_levels(loop, method="frontier")
        np.testing.assert_array_equal(sweep.levels, frontier.levels)
        np.testing.assert_array_equal(sweep.order, frontier.order)
        np.testing.assert_array_equal(sweep.level_ptr, frontier.level_ptr)

    def test_frontier_on_chain(self):
        loop = chain_loop(50, 1)
        frontier = compute_levels(loop, method="frontier")
        np.testing.assert_array_equal(
            frontier.levels, compute_levels(loop, method="sweep").levels
        )

    def test_frontier_empty(self):
        s = compute_levels(random_irregular_loop(0, seed=0), method="frontier")
        assert s.n_levels == 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown level method"):
            compute_levels(random_irregular_loop(10, seed=0), method="magic")

    def test_slices_iterates_levels(self):
        loop = chain_loop(20, 1)
        s = compute_levels(loop)
        slices = list(s.slices())
        assert len(slices) == s.n_levels
        assert slices[0][0] == 0 and slices[-1][1] == s.n
