"""Tests for the write-invalidate coherence model."""

import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.machine.costs import CostModel
from repro.machine.engine import Machine
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


def coherent_runner(processors=8, miss=10, **kw):
    return PreprocessedDoacross(
        processors=processors,
        cost_model=CostModel(coherence_miss=miss),
        coherence=True,
        **kw,
    )


class TestValidation:
    def test_requires_positive_miss_cost(self):
        with pytest.raises(ValueError, match="coherence_miss"):
            Machine(4, coherence=True)

    def test_disabled_by_default(self):
        runner = PreprocessedDoacross(processors=4)
        result = runner.run(make_test_loop(n=100, m=1, l=4))
        executor = next(p for p in result.phases if p.name == "executor")
        assert all(p.coherence_misses == 0 for p in executor.processors)


class TestSemantics:
    @pytest.mark.parametrize("seed", range(3))
    def test_values_unchanged_by_coherence_model(self, seed):
        loop = random_irregular_loop(80, seed=seed)
        assert_matches_oracle(coherent_runner().run(loop).y, loop)


class TestCostEffects:
    def test_cross_processor_chain_pays_misses(self):
        """Cyclic chunk-1 on a distance-1 chain: every dependence crosses
        processors, so every dependent iteration misses once."""
        loop = chain_loop(200, 1)
        result = coherent_runner(schedule="cyclic", chunk=1).run(loop)
        executor = next(p for p in result.phases if p.name == "executor")
        misses = sum(p.coherence_misses for p in executor.processors)
        assert misses == 199  # every dependent iteration

    def test_same_processor_chain_hits(self):
        """Block scheduling keeps a chain mostly within one processor: the
        only misses are at the block boundaries."""
        loop = chain_loop(200, 1)
        result = coherent_runner(processors=8, schedule="block").run(loop)
        executor = next(p for p in result.phases if p.name == "executor")
        misses = sum(p.coherence_misses for p in executor.processors)
        assert misses == 7  # one per internal block boundary

    def test_coherence_adds_cycles(self):
        loop = chain_loop(300, 1)
        base = PreprocessedDoacross(processors=8).run(loop)
        coherent = coherent_runner(miss=20).run(loop)
        assert coherent.total_cycles > base.total_cycles

    def test_no_dependences_no_misses(self):
        loop = make_test_loop(n=200, m=2, l=7)  # odd L
        result = coherent_runner().run(loop)
        executor = next(p for p in result.phases if p.name == "executor")
        assert sum(p.coherence_misses for p in executor.processors) == 0

    def test_locality_vs_pipelining_tradeoff_visible(self):
        """With an extreme miss cost, block scheduling (local chains, no
        transfers) can beat cyclic chunk-1 (pipelined but all-miss) — the
        tension the coherence ablation explores."""
        loop = chain_loop(400, 1)
        expensive = dict(processors=8, miss=500)
        cyclic = coherent_runner(schedule="cyclic", chunk=1, **expensive).run(
            loop
        )
        block = coherent_runner(schedule="block", **expensive).run(loop)
        assert block.total_cycles < cyclic.total_cycles
