"""Tests for :class:`repro.passes.PlanSpec` — the consolidated run
configuration (ISSUE 6 satellite 1) — and the plan-time option support
matrix that makes ``extras["ignored_options"]`` obsolete (satellite 2).

Includes the regression suite for the old call sites: every pre-PlanSpec
keyword form still runs correctly, warns toward the consolidated API,
and produces the same values as the spec path.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.backends import BACKENDS, make_runner
from repro.core.doacross import parallelize
from repro.errors import ScheduleError
from repro.passes import (
    OPTION_SUPPORT,
    PlanSpec,
    SPEC_BACKENDS,
    UnsupportedPlanOption,
    check_options,
)
from repro.workloads.testloop import make_test_loop


@pytest.fixture
def loop():
    return make_test_loop(n=120, m=2, l=8)


class TestValueObject:
    def test_frozen(self):
        spec = PlanSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.backend = "threaded"

    def test_hashable_and_equal_by_value(self):
        a = PlanSpec(backend="threaded", processors=4)
        b = PlanSpec(backend="threaded", processors=4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_defaults(self):
        spec = PlanSpec()
        assert spec.backend == "simulated"
        assert spec.processors == 16
        assert spec.reorder == "natural"
        assert spec.tunable_options() == {}

    def test_with_backend_rebases_without_mutating(self):
        spec = PlanSpec(backend="auto", chunk=4)
        rebased = spec.with_backend("multiproc")
        assert rebased.backend == "multiproc"
        assert rebased.chunk == 4
        assert spec.backend == "auto"

    def test_as_dict_is_json_safe_and_complete(self):
        import json

        spec = PlanSpec(backend="threaded", wait_timeout=2.5)
        d = spec.as_dict()
        assert json.loads(json.dumps(d)) == d
        assert set(d) == {
            "backend",
            "processors",
            "schedule",
            "chunk",
            "reorder",
            "analyze",
            "validate",
            "observe",
            "diagnose",
            "wait_timeout",
        }

    def test_tunable_options_lists_only_set_knobs(self):
        spec = PlanSpec(schedule="cyclic", chunk=3)
        assert spec.tunable_options() == {"schedule": "cyclic", "chunk": 3}

    def test_spec_backends_track_backend_registry(self):
        assert SPEC_BACKENDS == BACKENDS + ("auto",)


class TestConstructionValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"backend": "cuda"}, "unknown backend"),
            ({"processors": 0}, "processors must be >= 1"),
            ({"chunk": 0}, "chunk must be >= 1"),
            ({"schedule": "bogus"}, "unknown schedule kind"),
            ({"reorder": "colored"}, "unknown reorder kind"),
            ({"analyze": "psychic"}, "unknown analyze mode"),
            ({"validate": "dynamic"}, "unknown validate mode"),
            ({"wait_timeout": 0}, "wait_timeout must be > 0"),
        ],
    )
    def test_malformed_values_raise_at_construction(self, kwargs, match):
        with pytest.raises(ScheduleError, match=match):
            PlanSpec(**kwargs)

    def test_well_formed_but_unsupported_passes_construction(self):
        # Support is a backend property, checked at plan time — the same
        # spec must be rebasable across backends.
        spec = PlanSpec(backend="vectorized", chunk=4)
        check_options(spec, backend="multiproc")  # fine there
        with pytest.raises(UnsupportedPlanOption):
            check_options(spec)


class TestOptionSupportMatrix:
    def test_every_backend_has_a_row(self):
        assert set(OPTION_SUPPORT) == set(SPEC_BACKENDS)

    @pytest.mark.parametrize(
        "backend, option, value",
        [
            ("threaded", "schedule", "cyclic"),
            ("threaded", "chunk", 2),
            ("vectorized", "chunk", 2),
            ("vectorized", "wait_timeout", 1.0),
            ("multiproc", "schedule", "block"),
            ("simulated", "wait_timeout", 1.0),
            ("auto", "schedule", "cyclic"),
        ],
    )
    def test_unsupported_option_raises_with_reason(self, backend, option, value):
        spec = PlanSpec(backend=backend, **{option: value})
        with pytest.raises(UnsupportedPlanOption) as exc_info:
            check_options(spec)
        err = exc_info.value
        assert err.backend == backend
        assert err.option == option
        assert err.value == value
        assert err.reason  # every rejection explains itself
        assert err.as_dict()["reason"] == err.reason

    def test_unsupported_is_a_schedule_error(self):
        # Callers catching the repro error taxonomy keep working.
        with pytest.raises(ScheduleError):
            check_options(PlanSpec(backend="vectorized", chunk=2))

    @pytest.mark.parametrize(
        "backend, kwargs",
        [
            ("simulated", {"schedule": "cyclic", "chunk": 2}),
            ("threaded", {"wait_timeout": 5.0}),
            ("vectorized", {}),
            ("multiproc", {"chunk": 3, "wait_timeout": 5.0}),
            ("auto", {"chunk": 3, "wait_timeout": 5.0}),
        ],
    )
    def test_supported_options_check_clean(self, backend, kwargs):
        check_options(PlanSpec(backend=backend, **kwargs))


class TestOldCallSitesRegression:
    """Pre-PlanSpec keyword forms: still correct, now warning."""

    def test_parallelize_schedule_chunk_still_works(self, loop):
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            result, plan = parallelize(
                loop, processors=4, schedule="cyclic", chunk=2
            )
        assert np.array_equal(result.y, loop.run_sequential())
        assert plan.describe()

    def test_parallelize_observe_still_works(self, loop):
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            result, _ = parallelize(loop, processors=4, observe=True)
        assert result.telemetry is not None
        assert np.array_equal(result.y, loop.run_sequential())

    def test_parallelize_validate_still_works(self, loop):
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            result, _ = parallelize(loop, processors=4, validate="static")
        assert "lint" in result.extras
        assert np.array_equal(result.y, loop.run_sequential())

    def test_make_runner_legacy_kwargs_still_work(self, loop):
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            runner = make_runner("threaded", processors=2, observe=True)
        result = runner.run(loop)
        assert result.telemetry is not None
        assert np.array_equal(result.y, loop.run_sequential())

    def test_legacy_path_still_notes_ignored_options(self, loop):
        # The old path keeps its note-and-continue contract; only the
        # spec path upgrades to plan-time rejection.
        runner = make_runner("threaded", processors=2)
        result = runner.run(loop, schedule="block")
        notes = result.extras["ignored_options"]
        assert notes and notes[0]["option"] == "schedule"

    def test_spec_and_legacy_paths_agree_on_values(self, loop):
        reference = loop.run_sequential()
        spec_result, _ = parallelize(
            loop,
            spec=PlanSpec(backend="simulated", processors=4, schedule="cyclic"),
        )
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            legacy_result, _ = parallelize(
                loop, processors=4, schedule="cyclic"
            )
        assert np.array_equal(spec_result.y, reference)
        assert np.array_equal(legacy_result.y, reference)

    def test_spec_path_attaches_schedule_plan(self, loop):
        result, _ = parallelize(
            loop, spec=PlanSpec(backend="threaded", processors=2)
        )
        audit = result.extras["schedule_plan"]
        assert audit["backend"] == "threaded"
        assert audit["passes"][0] == "validate-options"
        assert "ignored_options" not in result.extras

    def test_warning_names_each_shimmed_keyword(self, loop):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            parallelize(loop, processors=4, schedule="cyclic", observe=True)
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1
        assert "schedule" in messages[0] and "observe" in messages[0]
