"""Tests for serially-reusable resources (FCFS queueing)."""

from repro.machine.resource import SerialResource


class TestSerialResource:
    def test_idle_grant_is_immediate(self):
        r = SerialResource()
        release, queued = r.acquire(now=10, hold=5)
        assert release == 15
        assert queued == 0

    def test_busy_grant_queues(self):
        r = SerialResource()
        r.acquire(now=0, hold=10)
        release, queued = r.acquire(now=3, hold=10)
        assert release == 20
        assert queued == 7

    def test_fcfs_chain(self):
        r = SerialResource()
        releases = [r.acquire(now=0, hold=4)[0] for _ in range(3)]
        assert releases == [4, 8, 12]

    def test_gap_resets_queue(self):
        r = SerialResource()
        r.acquire(now=0, hold=2)
        release, queued = r.acquire(now=100, hold=2)
        assert release == 102
        assert queued == 0

    def test_zero_hold(self):
        r = SerialResource()
        release, queued = r.acquire(now=5, hold=0)
        assert release == 5
        assert queued == 0

    def test_accounting(self):
        r = SerialResource()
        r.acquire(0, 10)
        r.acquire(0, 10)  # queued 10
        assert r.busy_cycles == 20
        assert r.queue_cycles == 10
        assert r.grants == 2

    def test_utilization(self):
        r = SerialResource()
        r.acquire(0, 25)
        assert r.utilization(100) == 0.25
        assert r.utilization(0) == 0.0

    def test_reset(self):
        r = SerialResource()
        r.acquire(0, 10)
        r.reset()
        assert r.free_at == 0
        assert r.busy_cycles == 0
        assert r.queue_cycles == 0
        assert r.grants == 0
