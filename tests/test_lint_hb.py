"""Happens-before race checker: clean on real schedules, loud on
corrupted ones."""

import numpy as np
import pytest

import repro
from repro.graph.levels import compute_levels
from repro.ir.analysis import dependence_pairs, writer_map
from repro.lint.hb import (
    LevelHappensBefore,
    check_backend_schedule,
    check_dependence_coverage,
    level_happens_before,
    simulated_happens_before,
    threaded_happens_before,
    waits_from_iter,
)


@pytest.fixture
def fig4():
    return repro.make_test_loop(n=120, m=2, l=8)


@pytest.fixture
def irregular():
    return repro.random_irregular_loop(150, seed=3)


# ----------------------------------------------------------------------
# Clean schedules are certified clean — all three backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["vectorized", "threaded", "simulated"])
def test_backend_schedules_clean_on_figure4(fig4, backend):
    report = check_backend_schedule(fig4, backend, processors=8)
    assert report.passed
    assert report.checked_edges == len(dependence_pairs(fig4))
    assert report.checked_edges > 0
    assert "all covered" in report.summary()


@pytest.mark.parametrize("backend", ["vectorized", "threaded", "simulated"])
def test_backend_schedules_clean_on_irregular(irregular, backend):
    assert check_backend_schedule(irregular, backend, processors=8).passed


@pytest.mark.parametrize("kind", ["block", "cyclic", "dynamic", "guided"])
def test_simulated_clean_under_every_schedule_kind(fig4, kind):
    report = check_backend_schedule(
        fig4, "simulated", processors=8, schedule=kind, chunk=2
    )
    assert report.passed


def test_doconsider_order_is_clean_too(irregular):
    order, _ = repro.level_order(irregular)
    hb = threaded_happens_before(irregular, threads=8, order=order)
    assert check_dependence_coverage(irregular, hb).passed


def test_independent_loop_has_nothing_to_check():
    loop = repro.make_test_loop(n=64, m=2, l=7)
    report = check_backend_schedule(loop, "vectorized")
    assert report.passed and report.checked_edges == 0


def test_unknown_backend_rejected(fig4):
    with pytest.raises(ValueError, match="unknown backend"):
        check_backend_schedule(fig4, "quantum")


# ----------------------------------------------------------------------
# Corrupted schedules are flagged as races
# ----------------------------------------------------------------------
def test_swapped_level_pair_is_a_race(irregular):
    """The acceptance-criteria injection: swap one TRUE dependence pair
    across wavefront levels — the checker must report a race."""
    pairs = dependence_pairs(irregular)
    writer, reader = int(pairs[0, 0]), int(pairs[0, 1])
    levels = compute_levels(irregular).levels.copy()
    assert levels[writer] < levels[reader]
    levels[writer], levels[reader] = levels[reader], levels[writer]
    report = check_dependence_coverage(
        irregular, LevelHappensBefore(levels, label="corrupted")
    )
    assert not report.passed
    flagged = {(r.writer, r.reader) for r in report.races}
    assert (writer, reader) in flagged
    assert "RACE" in report.summary()
    assert report.as_dict()["passed"] is False


def test_corrupted_iter_entry_is_a_race_on_threaded(irregular):
    """A stale inspector entry (iter pretends the element is unwritten)
    silently drops the executor's wait — the checker catches it."""
    pairs = dependence_pairs(irregular)
    # Pick a cross-worker edge so program order cannot cover it.
    threads = 8
    k = next(
        int(i)
        for i in range(len(pairs))
        if pairs[i, 0] % threads != pairs[i, 1] % threads
    )
    writer, reader = int(pairs[k, 0]), int(pairs[k, 1])
    bad_iter = writer_map(irregular).copy()
    bad_iter[irregular.write[writer]] = -1  # "never written"
    hb = threaded_happens_before(irregular, threads, iter_array=bad_iter)
    report = check_dependence_coverage(irregular, hb)
    assert not report.passed
    assert any(r.writer == writer and r.reader == reader for r in report.races)


def test_corrupted_iter_entry_is_a_race_on_simulated(irregular):
    pairs = dependence_pairs(irregular)
    writer = int(pairs[0, 0])
    bad_iter = writer_map(irregular).copy()
    bad_iter[irregular.write[writer]] = -1
    hb = simulated_happens_before(
        irregular, processors=8, schedule="dynamic", iter_array=bad_iter
    )
    assert not check_dependence_coverage(irregular, hb).passed


def test_race_count_survives_truncation(irregular):
    # Destroy *every* level: far more races than max_races.
    levels = np.zeros(irregular.n, dtype=np.int64)
    report = check_dependence_coverage(
        irregular, LevelHappensBefore(levels, label="flat"), max_races=5
    )
    assert not report.passed
    assert len(report.races) == 5
    assert "more races" in report.schedule_label


# ----------------------------------------------------------------------
# Model internals
# ----------------------------------------------------------------------
def test_waits_from_iter_matches_true_dependences(fig4):
    keys = waits_from_iter(fig4)
    pairs = dependence_pairs(fig4)
    expected = np.unique(
        pairs[:, 1] * np.int64(fig4.y_size) + fig4.write[pairs[:, 0]]
    )
    assert np.array_equal(keys, expected)


def test_level_happens_before_reads_executed_slices(fig4):
    hb = level_happens_before(fig4)
    assert np.array_equal(hb.levels, compute_levels(fig4).levels)
    # Also accepts a prebuilt LevelSchedule.
    hb2 = level_happens_before(compute_levels(fig4))
    assert np.array_equal(hb.levels, hb2.levels)


# ----------------------------------------------------------------------
# Group-synchronous happens-before (the DistancePass's elided mode)
# ----------------------------------------------------------------------
def test_group_happens_before_covers_proven_distances():
    from repro.lint.hb import GroupHappensBefore, group_happens_before

    chain = repro.chain_loop(240, 8)
    hb = group_happens_before(8, backend="threaded")
    assert isinstance(hb, GroupHappensBefore)
    assert hb.label == "threaded/group(8)"
    report = check_dependence_coverage(chain, hb)
    assert report.passed
    assert report.checked_edges == len(dependence_pairs(chain))


def test_group_happens_before_races_when_the_group_is_oversized():
    from repro.lint.hb import group_happens_before

    # Distance 3 but groups of 8: same-group pairs share no barrier.
    report = check_dependence_coverage(
        repro.chain_loop(240, 3), group_happens_before(8)
    )
    assert not report.passed
    assert report.races


def test_group_happens_before_rejects_degenerate_groups():
    from repro.lint.hb import GroupHappensBefore

    with pytest.raises(ValueError, match="group"):
        GroupHappensBefore(0)


def test_group_covers_is_elementwise():
    from repro.lint.hb import GroupHappensBefore

    hb = GroupHappensBefore(4)
    writers = np.array([0, 3, 4, 5])
    readers = np.array([4, 4, 7, 6])
    # Edge covered iff the writer's group is strictly earlier.
    assert hb.covers(writers, readers, np.zeros(4, dtype=np.int64)).tolist() == [
        True,
        True,
        False,
        False,
    ]


@pytest.mark.parametrize("backend", ["threaded", "multiproc", "vectorized"])
def test_check_backend_schedule_group_mode(backend):
    chain = repro.chain_loop(240, 8)
    report = check_backend_schedule(chain, backend, group=8)
    assert report.passed
    # Undersized bound: the same entry point must report the races.
    bad = check_backend_schedule(repro.chain_loop(240, 3), backend, group=8)
    assert not bad.passed


def test_check_backend_schedule_group_mode_rejections():
    chain = repro.chain_loop(60, 4)
    with pytest.raises(ValueError, match="natural"):
        check_backend_schedule(
            chain, "threaded", group=4, order=np.arange(60)
        )
    with pytest.raises(ValueError, match="simulated"):
        check_backend_schedule(chain, "simulated", group=4)
