"""Tests for block seven-point operators."""

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.sparse.block import block_seven_point


class TestBlockSevenPoint:
    def test_size(self):
        A = block_seven_point(2, 3, 2, block=4)
        assert A.shape == (48, 48)

    def test_block_pattern(self):
        """Entries appear only inside b×b blocks coupling grid neighbors."""
        b = 3
        A = block_seven_point(2, 2, 1, block=b, seed=1)
        dense = A.to_dense()
        # Grid (x fastest): points 0..3; point 0 couples to 1 (x+1) and
        # 2 (y+1) but not 3 (diagonal neighbor).
        assert np.any(dense[0:b, b : 2 * b] != 0)
        assert np.any(dense[0:b, 2 * b : 3 * b] != 0)
        assert np.all(dense[0:b, 3 * b : 4 * b] == 0)

    def test_strictly_diagonally_dominant(self):
        A = block_seven_point(3, 3, 2, block=3, seed=7).to_dense()
        diag = np.abs(np.diag(A))
        off = np.abs(A).sum(axis=1) - diag
        assert np.all(diag > off)

    def test_deterministic_per_seed(self):
        a = block_seven_point(2, 2, 2, block=2, seed=5)
        b = block_seven_point(2, 2, 2, block=2, seed=5)
        np.testing.assert_allclose(a.to_dense(), b.to_dense())

    def test_different_seeds_differ(self):
        a = block_seven_point(2, 2, 2, block=2, seed=1)
        b = block_seven_point(2, 2, 2, block=2, seed=2)
        assert not np.allclose(a.to_dense(), b.to_dense())

    def test_block1_matches_seven_point_pattern(self):
        from repro.sparse.stencils import seven_point

        A = block_seven_point(3, 3, 3, block=1, seed=0)
        S = seven_point(3, 3, 3)
        np.testing.assert_array_equal(A.indptr, S.indptr)
        np.testing.assert_array_equal(A.indices, S.indices)

    def test_invalid_block(self):
        with pytest.raises(MatrixFormatError):
            block_seven_point(2, 2, 2, block=0)

    def test_invalid_grid(self):
        with pytest.raises(MatrixFormatError):
            block_seven_point(0, 2, 2, block=2)
