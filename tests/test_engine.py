"""Tests for the discrete-event engine: busy-wait semantics, causal
ordering, accounting, determinism, deadlock detection."""

import pytest

from repro.errors import SimulationDeadlockError
from repro.machine.costs import CostModel
from repro.machine.engine import Engine
from repro.machine.flags import FlagStore
from repro.machine.ops import Compute, SetFlag, UseResource, WaitFlag
from repro.machine.resource import SerialResource


def make_engine(flags=None, resources=None, **cost_overrides):
    cm = CostModel(**cost_overrides) if cost_overrides else CostModel()
    return Engine(cm, flags=flags, resources=resources or {})


class TestCompute:
    def test_single_task_accumulates_time(self):
        eng = make_engine()

        def task(st):
            yield Compute(10)
            yield Compute(5)

        phase = eng.run("t", [task])
        assert phase.span == 15
        assert phase.processors[0].compute_cycles == 15
        assert phase.processors[0].finish_time == 15

    def test_empty_task(self):
        eng = make_engine()

        def task(st):
            return
            yield  # pragma: no cover

        phase = eng.run("t", [task])
        assert phase.span == 0

    def test_parallel_tasks_independent_clocks(self):
        eng = make_engine()

        def make(cycles):
            def task(st):
                yield Compute(cycles)

            return task

        phase = eng.run("t", [make(10), make(30), make(20)])
        assert [p.finish_time for p in phase.processors] == [10, 30, 20]
        assert phase.span == 30

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)


class TestFlags:
    def test_wait_on_flag_set_earlier(self):
        flags = FlagStore(1)
        eng = make_engine(flags=flags)
        cm = eng.cost_model

        def setter(st):
            yield Compute(5)
            yield SetFlag(0)

        def waiter(st):
            yield Compute(100)
            yield WaitFlag(0)  # set long before: only check cost

        phase = eng.run("t", [setter, waiter])
        w = phase.processors[1]
        assert w.wait_cycles == 0
        assert w.flag_checks == 1
        assert w.finish_time == 100 + cm.flag_check

    def test_wait_parks_until_set(self):
        flags = FlagStore(1)
        eng = make_engine(flags=flags)
        cm = eng.cost_model

        def setter(st):
            yield Compute(50)
            yield SetFlag(0)

        def waiter(st):
            yield Compute(10)
            yield WaitFlag(0)

        phase = eng.run("t", [setter, waiter])
        set_time = 50 + cm.flag_set
        w = phase.processors[1]
        assert w.wait_cycles == set_time - 10
        assert w.finish_time == set_time + cm.flag_check

    def test_set_wakes_multiple_waiters(self):
        flags = FlagStore(1)
        eng = make_engine(flags=flags)

        def setter(st):
            yield Compute(40)
            yield SetFlag(0)

        def waiter(st):
            yield WaitFlag(0)

        phase = eng.run("t", [setter, waiter, waiter])
        assert all(
            p.wait_cycles > 0 for p in phase.processors[1:]
        )
        assert phase.processors[1].finish_time == phase.processors[2].finish_time

    def test_flag_set_cost_charged(self):
        flags = FlagStore(1)
        eng = make_engine(flags=flags)
        cm = eng.cost_model

        def setter(st):
            yield SetFlag(0)

        phase = eng.run("t", [setter])
        assert phase.span == cm.flag_set
        assert phase.processors[0].flag_sets == 1

    def test_wait_without_flag_store_raises(self):
        eng = make_engine(flags=None)

        def task(st):
            yield WaitFlag(0)

        with pytest.raises(RuntimeError, match="no flag store"):
            eng.run("t", [task])


class TestDeadlock:
    def test_wait_on_never_set_flag_raises(self):
        flags = FlagStore(2)
        eng = make_engine(flags=flags)

        def waiter(st):
            yield WaitFlag(1)

        with pytest.raises(SimulationDeadlockError) as exc:
            eng.run("t", [waiter])
        assert exc.value.waiters == {0: 1}

    def test_mutual_wait_deadlock(self):
        flags = FlagStore(2)
        eng = make_engine(flags=flags)

        def a(st):
            yield WaitFlag(0)
            yield SetFlag(1)

        def b(st):
            yield WaitFlag(1)
            yield SetFlag(0)

        with pytest.raises(SimulationDeadlockError) as exc:
            eng.run("t", [a, b])
        assert set(exc.value.waiters) == {0, 1}

    def test_non_deadlocked_tasks_still_complete_before_error(self):
        flags = FlagStore(1)
        eng = make_engine(flags=flags)

        def fine(st):
            yield Compute(3)

        def stuck(st):
            yield WaitFlag(0)

        with pytest.raises(SimulationDeadlockError):
            eng.run("t", [fine, stuck])


class TestResources:
    def test_grants_in_arrival_time_order(self):
        res = SerialResource()
        eng = make_engine(resources={0: res})
        order = []

        def make(delay, tag):
            def task(st):
                yield Compute(delay)
                yield UseResource(0, 10)
                order.append(tag)

            return task

        # Later-listed task arrives earlier; grant order must follow time.
        eng.run("t", [make(5, "slow"), make(0, "fast")])
        assert order == ["fast", "slow"]

    def test_queueing_accounted(self):
        res = SerialResource()
        eng = make_engine(resources={0: res})

        def task(st):
            yield UseResource(0, 10)

        phase = eng.run("t", [task, task])
        waits = sorted(p.resource_wait_cycles for p in phase.processors)
        assert waits == [0, 10]
        assert phase.span == 20


class TestDeterminism:
    def _workload(self):
        flags = FlagStore(8)
        eng = make_engine(flags=flags, resources={0: SerialResource()})

        def make(pid):
            def task(st):
                for i in range(4):
                    yield UseResource(0, 2)
                    yield Compute(3 + (pid * 7 + i) % 5)
                    yield SetFlag(pid * 4 + i)
                    if pid > 0:
                        yield WaitFlag((pid - 1) * 4 + i)
                st.iterations += 4

            return task

        return eng.run("t", [make(p) for p in range(2)])

    def test_repeated_runs_identical(self):
        a = self._workload()
        b = self._workload()
        assert a.span == b.span
        for pa, pb in zip(a.processors, b.processors):
            assert pa.compute_cycles == pb.compute_cycles
            assert pa.wait_cycles == pb.wait_cycles
            assert pa.finish_time == pb.finish_time

    def test_factory_can_update_iteration_stats(self):
        phase = self._workload()
        assert all(p.iterations == 4 for p in phase.processors)
