"""Tests for iteration schedules: exact-cover partitions, per-processor
ordering (the deadlock-freedom precondition), dynamic claiming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.machine.scheduler import (
    DynamicSchedule,
    GuidedSchedule,
    StaticBlockSchedule,
    StaticCyclicSchedule,
    make_schedule,
)


class TestStaticBlock:
    def test_even_split(self):
        s = StaticBlockSchedule(12, 4)
        assert [s.chunks_for(p) for p in range(4)] == [
            [(0, 3)],
            [(3, 6)],
            [(6, 9)],
            [(9, 12)],
        ]

    def test_remainder_goes_to_leading_processors(self):
        s = StaticBlockSchedule(10, 4)
        sizes = [
            sum(hi - lo for lo, hi in s.chunks_for(p)) for p in range(4)
        ]
        assert sizes == [3, 3, 2, 2]

    def test_more_processors_than_iterations(self):
        s = StaticBlockSchedule(2, 5)
        sizes = [
            sum(hi - lo for lo, hi in s.chunks_for(p)) for p in range(5)
        ]
        assert sizes == [1, 1, 0, 0, 0]
        s.validate_partition()

    def test_validate_partition_accepts(self):
        StaticBlockSchedule(97, 7).validate_partition()

    def test_bad_processor_index(self):
        with pytest.raises(ScheduleError):
            StaticBlockSchedule(4, 2).chunks_for(2)


class TestStaticCyclic:
    def test_chunk1_round_robin(self):
        s = StaticCyclicSchedule(7, 3, chunk=1)
        assert s.chunks_for(0) == [(0, 1), (3, 4), (6, 7)]
        assert s.chunks_for(1) == [(1, 2), (4, 5)]
        assert s.chunks_for(2) == [(2, 3), (5, 6)]

    def test_chunked(self):
        s = StaticCyclicSchedule(10, 2, chunk=3)
        assert s.chunks_for(0) == [(0, 3), (6, 9)]
        assert s.chunks_for(1) == [(3, 6), (9, 10)]

    def test_validate_partition(self):
        StaticCyclicSchedule(100, 6, chunk=4).validate_partition()

    def test_chunk_must_be_positive(self):
        with pytest.raises(ScheduleError):
            StaticCyclicSchedule(10, 2, chunk=0)


class TestDynamic:
    def test_claims_cover_range_in_order(self):
        s = DynamicSchedule(10, 3, chunk=4)
        claims = []
        while True:
            c = s.claim()
            if c is None:
                break
            claims.append(c)
        assert claims == [(0, 4), (4, 8), (8, 10)]

    def test_exhausted_returns_none_repeatedly(self):
        s = DynamicSchedule(2, 1, chunk=4)
        assert s.claim() == (0, 2)
        assert s.claim() is None
        assert s.claim() is None

    def test_reset_restores(self):
        s = DynamicSchedule(4, 1, chunk=4)
        assert s.claim() == (0, 4)
        s.reset()
        assert s.claim() == (0, 4)

    def test_is_dynamic(self):
        assert DynamicSchedule(4, 1).is_dynamic
        assert not StaticBlockSchedule(4, 1).is_dynamic


class TestGuided:
    def test_chunks_decay(self):
        s = GuidedSchedule(100, 4, min_chunk=2)
        sizes = []
        while True:
            c = s.claim()
            if c is None:
                break
            sizes.append(c[1] - c[0])
        assert sum(sizes) == 100
        # Non-increasing until the floor.
        assert all(a >= b or b == 2 for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] == 13  # ceil(100 / 8)

    def test_min_chunk_floor(self):
        s = GuidedSchedule(10, 50, min_chunk=3)
        first = s.claim()
        assert first[1] - first[0] == 3


class TestFactory:
    @pytest.mark.parametrize("kind", ["block", "cyclic", "dynamic", "guided"])
    def test_known_kinds(self, kind):
        s = make_schedule(kind, 20, 4, chunk=2)
        assert s.n == 20
        assert s.processors == 4

    def test_unknown_kind(self):
        with pytest.raises(ScheduleError, match="unknown schedule kind"):
            make_schedule("fancy", 10, 2)

    def test_invalid_sizes(self):
        with pytest.raises(ScheduleError):
            make_schedule("block", -1, 2)
        with pytest.raises(ScheduleError):
            make_schedule("block", 10, 0)


class TestPartitionProperties:
    @given(
        n=st.integers(0, 300),
        p=st.integers(1, 17),
        chunk=st.integers(1, 9),
        kind=st.sampled_from(["block", "cyclic"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_static_schedules_partition_exactly(self, n, p, chunk, kind):
        make_schedule(kind, n, p, chunk=chunk).validate_partition()

    @given(
        n=st.integers(0, 300),
        p=st.integers(1, 17),
        chunk=st.integers(1, 9),
        kind=st.sampled_from(["dynamic", "guided"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_dynamic_claims_are_contiguous_and_complete(
        self, n, p, chunk, kind
    ):
        s = make_schedule(kind, n, p, chunk=chunk)
        cursor = 0
        while True:
            c = s.claim()
            if c is None:
                break
            lo, hi = c
            assert lo == cursor
            assert hi > lo
            cursor = hi
        assert cursor == n

    @given(n=st.integers(1, 200), p=st.integers(1, 8), chunk=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_per_processor_positions_increase(self, n, p, chunk):
        """The deadlock-freedom precondition (DESIGN.md §6)."""
        for kind in ("block", "cyclic"):
            s = make_schedule(kind, n, p, chunk=chunk)
            for proc in range(p):
                flat = [
                    i for lo, hi in s.chunks_for(proc) for i in range(lo, hi)
                ]
                assert flat == sorted(flat)
