"""``validate="sanitize"`` end to end: backends, PlanSpec, CLI, metrics.

The detector's unit behaviour is pinned in ``test_sanitize_detector``;
here the concern is the *wiring* — that every concrete backend logs a
shadow capture the detector accepts, that the spec/pass pipeline routes
the mode, that telemetry carries the counters, and that the CLI speaks
both text and JSON.
"""

import json

import numpy as np
import pytest

import repro
from repro.backends import (
    MultiprocRunner,
    ThreadedRunner,
    VectorizedRunner,
    make_runner,
)
from repro.errors import SanitizerError
from repro.passes.execute import plan_loop, run_with_spec
from repro.passes.spec import PlanSpec, UnsupportedPlanOption
from repro.sanitize import SanitizingRunner
from repro.workloads.synthetic import chain_loop, random_irregular_loop


@pytest.fixture(scope="module")
def loops():
    return [chain_loop(120, 2), random_irregular_loop(150, seed=5)]


class TestSanitizingRunnerRoundTrips:
    @pytest.mark.parametrize("backend", ["threaded", "vectorized"])
    def test_clean_runs_are_clean_and_correct(self, backend, loops):
        for loop in loops:
            inner = (
                ThreadedRunner(threads=3)
                if backend == "threaded"
                else VectorizedRunner()
            )
            result = SanitizingRunner(inner).run(loop)
            assert np.allclose(result.y, loop.run_sequential())
            report = result.extras["sanitize"]
            assert report["ok"] is True
            assert report["pairs_checked"] > 0
            assert report["events"] > 0

    def test_multiproc_round_trip(self, loops):
        inner = MultiprocRunner(workers=3)
        try:
            for loop in loops:
                result = SanitizingRunner(inner).run(loop)
                assert np.allclose(result.y, loop.run_sequential())
                report = result.extras["sanitize"]
                assert report["ok"] is True
                # Lanes are pid-tagged (pid, wid) pairs: two pool
                # generations can never alias.
                assert report["lanes"] >= 1
        finally:
            inner.close()

    def test_error_report_carries_the_structured_report(self, loops):
        """SanitizerError is a ScheduleError and exposes the full
        report, so callers can branch on violation kinds."""
        from repro.errors import ScheduleError

        assert issubclass(SanitizerError, ScheduleError)


class TestSpecWiring:
    def test_spec_accepts_sanitize_and_rejects_unknown(self):
        from repro.errors import ScheduleError

        assert PlanSpec(validate="sanitize").validate == "sanitize"
        with pytest.raises(ScheduleError, match="sanitize"):
            PlanSpec(validate="dynamic")

    @pytest.mark.parametrize(
        "backend", ["simulated", "threaded", "vectorized", "multiproc"]
    )
    def test_all_concrete_backends_support_the_option(self, backend):
        spec = PlanSpec(backend=backend, processors=2, validate="sanitize")
        loop = chain_loop(60, 1)
        result, _plan = run_with_spec(loop, spec)
        assert np.allclose(result.y, loop.run_sequential())
        report = result.extras["sanitize"]
        assert report["ok"] is True

    def test_auto_backend_rejects_sanitize_with_a_reason(self):
        spec = PlanSpec(backend="auto", validate="sanitize")
        with pytest.raises(UnsupportedPlanOption) as info:
            plan_loop(chain_loop(60, 1), spec)
        assert info.value.option == "sanitize"
        assert "telemetry" in str(info.value)

    def test_sanitize_pass_records_the_contract(self):
        loop = chain_loop(60, 1)
        plan = plan_loop(
            loop, PlanSpec(backend="threaded", validate="sanitize")
        )
        assert plan.artifacts["sanitize"] == {"pairs": 59}
        assert "sanitize" in plan.passes
        # Without the mode the pass does not run.
        bare = plan_loop(loop, PlanSpec(backend="threaded"))
        assert "sanitize" not in bare.artifacts

    def test_make_runner_builds_the_wrapper(self):
        runner = make_runner(
            spec=PlanSpec(
                backend="vectorized", validate="sanitize"
            )
        )
        assert isinstance(runner, SanitizingRunner)

    def test_parallelize_spec_path(self):
        loop = chain_loop(80, 1)
        result, _plan = repro.parallelize(
            loop,
            spec=repro.PlanSpec(backend="threaded", validate="sanitize"),
        )
        assert np.allclose(result.y, loop.run_sequential())
        assert result.extras["sanitize"]["ok"] is True


class TestLegacySimulatedPath:
    def test_preprocessed_strategy_is_instrumented(self):
        loop = chain_loop(80, 1)
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            result, _plan = repro.parallelize(
                loop, backend="simulated", validate="sanitize"
            )
        assert np.allclose(result.y, loop.run_sequential())
        report = result.extras["sanitize"]
        assert report["ok"] is True
        assert report["pairs_checked"] > 0

    def test_doall_strategy_reports_uninstrumented(self):
        # Odd L makes the Figure-4 loop dependence-free: the planner
        # picks doall, whose simulated strategy has no shadow hooks.
        loop = repro.make_test_loop(n=40, m=2, l=7)
        with pytest.warns(DeprecationWarning, match="PlanSpec"):
            result, _plan = repro.parallelize(
                loop, backend="simulated", validate="sanitize"
            )
        report = result.extras["sanitize"]
        assert report["ok"] is True
        assert report["pairs_checked"] == 0


class TestTelemetryCounters:
    def test_observed_run_carries_sanitize_metrics(self):
        loop = chain_loop(100, 1)
        runner = make_runner(
            spec=PlanSpec(
                backend="threaded",
                processors=2,
                validate="sanitize",
                observe=True,
            )
        )
        result = runner.run(loop)
        telemetry = result.telemetry.as_dict()
        metrics = telemetry["metrics"]["counters"]
        assert metrics["sanitize_pairs_checked"] == 99
        assert metrics["sanitize_violations"] == 0
        assert metrics["sanitize_events"] > 0
        assert metrics["sanitize_lanes"] >= 1


class TestSanitizeCli:
    def run_cli(self, capsys, *argv):
        from repro.__main__ import main as repro_main

        code = repro_main(["sanitize", *argv])
        return code, capsys.readouterr().out

    def test_clean_target_text_report(self, capsys):
        code, out = self.run_cli(capsys, "chain:n=80,d=1")
        assert code == 0
        assert "clean" in out
        assert "dependence pair(s)" in out

    def test_json_mode(self, capsys):
        code, out = self.run_cli(
            capsys, "chain:n=80,d=1", "--json", "--backend=vectorized"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["backend"] == "vectorized"
        (entry,) = [
            e for e in payload["targets"] if "chain" in str(e["loop"])
        ]
        assert entry["sanitize"]["ok"] is True
        assert entry["sanitize"]["backend"] == "vectorized"

    def test_mutants_mode_meets_the_gate(self, capsys):
        code, out = self.run_cli(capsys, "--mutants", "--min-kill=0.9")
        assert code == 0
        assert "kill rate" in out

    def test_mutants_json(self, capsys):
        code, out = self.run_cli(capsys, "--mutants", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["kill_rate"] >= 0.9
        assert payload["baseline_clean"] is True
