"""Tests for stencil operator generators."""

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.sparse.stencils import (
    five_point,
    grid_index_2d,
    grid_index_3d,
    nine_point,
    seven_point,
)


class TestGridIndexing:
    def test_2d_x_fastest(self):
        assert grid_index_2d(np.array(2), np.array(1), nx=5) == 7

    def test_3d_ordering(self):
        assert grid_index_3d(np.array(1), np.array(2), np.array(3), nx=4, ny=5) == (
            (3 * 5 + 2) * 4 + 1
        )


class TestFivePoint:
    def test_size_and_nnz(self):
        A = five_point(4, 3)
        assert A.shape == (12, 12)
        # nnz = 5n - boundary-truncated neighbors.
        interior_links = 2 * ((4 - 1) * 3 + 4 * (3 - 1))
        assert A.nnz == 12 + interior_links

    def test_symmetric(self):
        A = five_point(5, 4)
        np.testing.assert_allclose(A.to_dense(), A.to_dense().T)

    def test_stencil_values(self):
        A = five_point(3, 3)
        center = 4  # grid point (1, 1)
        assert A.get(center, center) == 4.0
        for nbr in (center - 1, center + 1, center - 3, center + 3):
            assert A.get(center, nbr) == -1.0

    def test_interior_row_sums_zero(self):
        A = five_point(5, 5)
        dense = A.to_dense()
        interior = 2 * 5 + 2  # point (2, 2)
        assert dense[interior].sum() == 0.0

    def test_diagonally_dominant(self):
        A = five_point(6, 6).to_dense()
        diag = np.diag(A)
        off = np.abs(A).sum(axis=1) - np.abs(diag)
        assert np.all(diag >= off)

    def test_invalid_dims(self):
        with pytest.raises(MatrixFormatError):
            five_point(0, 3)


class TestSevenPoint:
    def test_size(self):
        A = seven_point(3, 4, 5)
        assert A.shape == (60, 60)

    def test_symmetric(self):
        A = seven_point(3, 3, 3)
        np.testing.assert_allclose(A.to_dense(), A.to_dense().T)

    def test_interior_row_has_seven_entries(self):
        A = seven_point(3, 3, 3)
        center = grid_index_3d(np.array(1), np.array(1), np.array(1), 3, 3)
        assert A.row_nnz()[int(center)] == 7
        assert A.get(int(center), int(center)) == 6.0

    def test_corner_row_has_four_entries(self):
        A = seven_point(3, 3, 3)
        assert A.row_nnz()[0] == 4


class TestNinePoint:
    def test_size(self):
        A = nine_point(4, 4)
        assert A.shape == (16, 16)

    def test_interior_row_has_nine_entries(self):
        A = nine_point(4, 4)
        center = 5  # point (1, 1)
        assert A.row_nnz()[center] == 9
        assert A.get(center, center) == 8.0
        assert A.get(center, 0) == -1.0  # diagonal neighbor

    def test_symmetric(self):
        A = nine_point(5, 4)
        np.testing.assert_allclose(A.to_dense(), A.to_dense().T)

    def test_denser_than_five_point(self):
        assert nine_point(6, 6).nnz > five_point(6, 6).nnz
