"""Tests for the vectorized wavefront backend.

The backend's contract is stronger than the library's usual tolerance
checks: batching a wavefront performs the oracle's arithmetic in the same
per-term order, so the output must be **bitwise** equal to
``run_sequential`` — asserted with ``np.array_equal`` throughout.
"""

import numpy as np
import pytest

from repro.backends.cache import InspectorCache
from repro.backends.vectorized import VectorizedRunner
from repro.core.doacross import parallelize
from repro.core.sequential import run_reference
from repro.errors import InvalidLoopError, ScheduleError
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import compute_levels
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop, solve_lower_unit
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop


def assert_bitwise_oracle(loop, result):
    reference = run_reference(loop)
    assert np.array_equal(result.y, reference.y), (
        f"vectorized output differs from the sequential oracle on "
        f"{loop.name}"
    )


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_loops(self, seed):
        loop = random_irregular_loop(150, seed=seed)
        assert_bitwise_oracle(loop, VectorizedRunner().run(loop))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_external_init(self, seed):
        loop = random_irregular_loop(120, seed=seed, external_init=True)
        assert_bitwise_oracle(loop, VectorizedRunner().run(loop))

    @pytest.mark.parametrize("m", [1, 2, 5])
    @pytest.mark.parametrize("l", [6, 7, 8, 11])
    def test_figure4_sweep(self, m, l):
        loop = make_test_loop(n=300, m=m, l=l)
        assert_bitwise_oracle(loop, VectorizedRunner().run(loop))

    @pytest.mark.parametrize("distance", [1, 3, 17])
    def test_chain(self, distance):
        loop = chain_loop(250, distance)
        assert_bitwise_oracle(loop, VectorizedRunner().run(loop))

    def test_trisolve(self):
        L, _ = ilu0(five_point(12, 12))
        rhs = np.ones(L.n_rows)
        loop = lower_solve_loop(L, rhs)
        result = VectorizedRunner().run(loop)
        assert_bitwise_oracle(loop, result)
        np.testing.assert_allclose(result.y, solve_lower_unit(L, rhs))

    def test_empty_loop(self):
        loop = random_irregular_loop(0)
        assert_bitwise_oracle(loop, VectorizedRunner().run(loop))

    def test_dependence_free_loop(self):
        loop = random_irregular_loop(100, max_terms=0, seed=1)
        result = VectorizedRunner().run(loop)
        assert_bitwise_oracle(loop, result)
        assert result.extras["levels"] <= 1


class TestResultShape:
    def test_result_fields(self):
        loop = make_test_loop(n=200, m=2, l=8)
        result = VectorizedRunner().run(loop)
        assert result.strategy == "vectorized-wavefront"
        assert result.total_cycles == 0
        assert result.wall_seconds is not None and result.wall_seconds > 0
        assert result.extras["preprocess_seconds"] >= 0
        assert result.extras["execute_seconds"] >= 0
        assert result.extras["cache_hit"] is False

    def test_levels_match_graph(self):
        loop = make_test_loop(n=200, m=2, l=8)
        schedule = compute_levels(DependenceGraph.from_loop(loop))
        result = VectorizedRunner().run(loop)
        assert result.extras["levels"] == schedule.n_levels

    def test_wall_printed_in_summary(self):
        loop = make_test_loop(n=50, m=1, l=7)
        summary = VectorizedRunner().run(loop).summary()
        assert "(measured)" in summary
        assert "speedup=inf" not in summary


class TestOrderHandling:
    def test_legal_order_same_values(self):
        loop = chain_loop(60, 1)
        natural = VectorizedRunner().run(loop)
        ordered = VectorizedRunner().run(
            loop, order=np.arange(loop.n, dtype=np.int64)
        )
        assert np.array_equal(natural.y, ordered.y)

    def test_illegal_order_rejected(self):
        loop = chain_loop(60, 1)
        with pytest.raises(ScheduleError, match="violates true dependence"):
            VectorizedRunner().run(loop, order=np.arange(loop.n)[::-1])


class TestParallelizeBackend:
    def test_vectorized_backend_selected(self):
        loop = random_irregular_loop(130, seed=5)
        result, plan = parallelize(loop, backend="vectorized")
        assert result.strategy == "vectorized-wavefront"
        assert result.extras["plan"] == plan.describe()
        assert_bitwise_oracle(loop, result)

    def test_runner_instance_as_backend(self):
        loop = random_irregular_loop(130, seed=6)
        cache = InspectorCache()
        runner = VectorizedRunner(cache=cache)
        parallelize(loop, backend=runner)
        result, _ = parallelize(loop, backend=runner)
        assert result.extras["cache_hit"] is True
        assert cache.stats() == {
            "entries": 1,
            "capacity": 64,
            "hits": 1,
            "misses": 1,
            "bytes": cache.stats()["bytes"],
            "tuner_entries": 0,
        }

    def test_shared_cache_via_keyword(self):
        loop = random_irregular_loop(130, seed=7)
        cache = InspectorCache()
        parallelize(loop, backend="vectorized", cache=cache)
        result, _ = parallelize(loop, backend="vectorized", cache=cache)
        assert result.extras["cache_hit"] is True


def iterate_oracle(loop, instances, rhs_sequence=None):
    y = loop.y0.copy()
    for k in range(instances):
        clone = loop.with_name(loop.name)
        clone.y0 = y
        if rhs_sequence is not None:
            clone.init_values = np.asarray(rhs_sequence[k], dtype=np.float64)
        y = clone.run_sequential()
    return y


class TestRunRepeated:
    @pytest.mark.parametrize("instances", [1, 2, 7])
    def test_matches_iterated_oracle(self, instances):
        loop = make_test_loop(n=140, m=2, l=6)
        result = VectorizedRunner().run_repeated(loop, instances)
        assert np.array_equal(result.y, iterate_oracle(loop, instances))
        assert result.extras["instances"] == instances
        assert result.extras["inspector_runs"] == 1

    def test_rhs_sequence(self):
        loop = random_irregular_loop(90, seed=2, external_init=True)
        rng = np.random.default_rng(0)
        rhs = [rng.normal(size=loop.n) for _ in range(4)]
        result = VectorizedRunner().run_repeated(loop, 4, rhs_sequence=rhs)
        assert np.array_equal(
            result.y, iterate_oracle(loop, 4, rhs_sequence=rhs)
        )

    def test_warm_cache_skips_inspector(self):
        loop = make_test_loop(n=140, m=2, l=6)
        runner = VectorizedRunner()
        runner.run(loop)
        result = VectorizedRunner(cache=runner.cache).run_repeated(loop, 3)
        assert result.extras["inspector_runs"] == 0
        assert runner.cache.stats()["hits"] == 1

    def test_rejects_zero_instances(self):
        loop = make_test_loop(n=50, m=1, l=6)
        with pytest.raises(InvalidLoopError, match="at least one instance"):
            VectorizedRunner().run_repeated(loop, 0)

    def test_rhs_requires_external_init(self):
        loop = make_test_loop(n=50, m=1, l=6)
        with pytest.raises(InvalidLoopError, match="external-init"):
            VectorizedRunner().run_repeated(
                loop, 2, rhs_sequence=[np.ones(50)] * 2
            )

    def test_rhs_length_checked(self):
        loop = random_irregular_loop(50, seed=0, external_init=True)
        with pytest.raises(InvalidLoopError, match="entries"):
            VectorizedRunner().run_repeated(
                loop, 3, rhs_sequence=[np.ones(50)] * 2
            )


class TestAmortizedIntegration:
    def test_amortized_vectorized_backend(self):
        from repro.core.amortized import AmortizedDoacross

        loop = make_test_loop(n=140, m=2, l=6)
        result = AmortizedDoacross().run(loop, 5, backend="vectorized")
        assert np.array_equal(result.y, iterate_oracle(loop, 5))
        assert result.strategy == "vectorized-wavefront-amortized"

    def test_amortized_unknown_backend(self):
        from repro.core.amortized import AmortizedDoacross

        loop = make_test_loop(n=50, m=1, l=6)
        with pytest.raises(ValueError, match="unknown amortized backend"):
            AmortizedDoacross().run(loop, 2, backend="nope")
