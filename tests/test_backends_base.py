"""Tests for backend-shared order validation."""

import numpy as np
import pytest

from repro.backends.base import inverse_permutation, validate_execution_order
from repro.errors import ScheduleError
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.core.doconsider import level_order


class TestInversePermutation:
    def test_inverts(self):
        order = np.array([2, 0, 1])
        pos = inverse_permutation(order)
        np.testing.assert_array_equal(pos, [1, 2, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ScheduleError, match="out-of-range"):
            inverse_permutation(np.array([0, 3]))

    def test_rejects_duplicates(self):
        with pytest.raises(ScheduleError, match="not a permutation"):
            inverse_permutation(np.array([0, 0, 1]))


class TestValidateExecutionOrder:
    def test_natural_order_always_legal(self):
        loop = chain_loop(40, 1)
        validate_execution_order(loop, np.arange(40))

    def test_reversed_order_illegal_for_chain(self):
        loop = chain_loop(40, 2)
        with pytest.raises(ScheduleError, match="deadlock"):
            validate_execution_order(loop, np.arange(40)[::-1])

    def test_any_order_legal_without_true_deps(self):
        loop = random_irregular_loop(30, max_terms=0, seed=0)
        validate_execution_order(loop, np.arange(30)[::-1])

    def test_level_order_always_legal(self):
        for seed in range(4):
            loop = random_irregular_loop(60, seed=seed)
            order, _ = level_order(loop)
            validate_execution_order(loop, order)

    def test_error_names_the_violated_edge(self):
        loop = chain_loop(5, 1)
        order = np.array([0, 2, 1, 3, 4])  # 1 -> 2 violated
        with pytest.raises(ScheduleError, match="1 → 2|1 -> 2"):
            validate_execution_order(loop, order)
