"""Direct tests of the simulated backend's edge cases and internals."""

import numpy as np
import pytest

from repro.backends.simulated import SimulatedRunner
from repro.core.workspace import DoacrossWorkspace
from repro.errors import InvalidLoopError
from repro.machine.engine import Machine
from repro.machine.scheduler import DynamicSchedule, StaticCyclicSchedule
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


@pytest.fixture
def runner():
    return SimulatedRunner(Machine(4))


class TestScheduleResolution:
    def test_accepts_schedule_instance(self, runner):
        loop = make_test_loop(n=60, m=1, l=3)
        schedule = StaticCyclicSchedule(60, 4, chunk=2)
        result = runner.run_preprocessed(loop, schedule=schedule)
        assert_matches_oracle(result.y, loop)

    def test_rejects_mismatched_schedule_size(self, runner):
        loop = make_test_loop(n=60, m=1, l=3)
        with pytest.raises(InvalidLoopError, match="covers"):
            runner.run_preprocessed(
                loop, schedule=StaticCyclicSchedule(50, 4)
            )

    def test_dynamic_schedule_instance_reset_between_runs(self, runner):
        loop = make_test_loop(n=40, m=1, l=3)
        schedule = DynamicSchedule(40, 4, chunk=8)
        first = runner.run_preprocessed(loop, schedule=schedule)
        second = runner.run_preprocessed(loop, schedule=schedule)
        assert first.total_cycles == second.total_cycles


class TestEdgeCases:
    def test_empty_loop_every_entry_point(self, runner):
        loop = random_irregular_loop(0, seed=0)
        for result in (
            runner.run_preprocessed(loop),
            runner.run_stripmined(loop, block=4),
            runner.run_doall(loop),
            runner.run_amortized(loop, 2),
        ):
            np.testing.assert_allclose(result.y, loop.y0)

    def test_single_iteration_loop(self, runner):
        loop = random_irregular_loop(1, seed=3)
        result = runner.run_preprocessed(loop)
        assert_matches_oracle(result.y, loop)

    def test_more_processors_than_iterations(self):
        runner = SimulatedRunner(Machine(32))
        loop = random_irregular_loop(5, seed=2)
        result = runner.run_preprocessed(loop)
        assert_matches_oracle(result.y, loop)

    def test_one_processor_machine(self):
        runner = SimulatedRunner(Machine(1))
        loop = chain_loop(50, 1)
        result = runner.run_preprocessed(loop)
        assert_matches_oracle(result.y, loop)
        # Nothing to wait for on one processor: the chain is sequential.
        assert result.wait_cycles == 0

    def test_machine_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Machine(0)

    def test_machine_repr(self):
        assert "processors=4" in repr(Machine(4))


class TestDispatchAccounting:
    def test_dynamic_dispatch_counts_recorded(self, runner):
        loop = make_test_loop(n=64, m=1, l=3)
        result = runner.run_preprocessed(loop, schedule="dynamic", chunk=8)
        executor = next(p for p in result.phases if p.name == "executor")
        dispatches = sum(p.dispatches for p in executor.processors)
        # 8 chunks of 8 plus one empty-claim probe per processor.
        assert dispatches == 8 + 4

    def test_static_schedules_have_no_dispatches(self, runner):
        loop = make_test_loop(n=64, m=1, l=3)
        result = runner.run_preprocessed(loop, schedule="cyclic")
        executor = next(p for p in result.phases if p.name == "executor")
        assert sum(p.dispatches for p in executor.processors) == 0

    def test_dispatch_serializes_through_counter(self, runner):
        """Dynamic chunk-1 on a trivial loop: 16+ grabs serialize on the
        dispatch resource, visible as resource wait."""
        loop = make_test_loop(n=64, m=1, l=3)
        result = runner.run_preprocessed(loop, schedule="dynamic", chunk=1)
        executor = next(p for p in result.phases if p.name == "executor")
        assert sum(p.resource_wait_cycles for p in executor.processors) > 0


class TestWorkspaceSharing:
    def test_shared_workspace_between_runner_instances(self):
        ws = DoacrossWorkspace()
        machine = Machine(4)
        a = SimulatedRunner(machine, ws)
        b = SimulatedRunner(machine, ws)
        loop = random_irregular_loop(40, seed=1)
        a.run_preprocessed(loop)
        b.run_preprocessed(loop)
        assert ws.invocations == 2
        assert ws.is_clean()
