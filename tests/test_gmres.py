"""Tests for restarted GMRES (the nonsymmetric Krylov consumer)."""

import numpy as np
import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.errors import MatrixFormatError
from repro.sparse.block import block_seven_point
from repro.sparse.csr import CSRMatrix
from repro.sparse.krylov import IluPreconditioner, gmres
from repro.sparse.stencils import five_point


@pytest.fixture(scope="module")
def nonsymmetric_system():
    """A small SPE-style (nonsymmetric, diagonally dominant) system."""
    A = block_seven_point(3, 3, 2, block=3, seed=4)
    rng = np.random.default_rng(1)
    b = rng.normal(size=A.n_rows)
    x_ref = np.linalg.solve(A.to_dense(), b)
    return A, b, x_ref


class TestGmres:
    def test_solves_nonsymmetric_system(self, nonsymmetric_system):
        A, b, x_ref = nonsymmetric_system
        x, report = gmres(A, b, tol=1e-10)
        assert report.converged
        np.testing.assert_allclose(x, x_ref, rtol=1e-6, atol=1e-8)

    def test_ilu_preconditioning_cuts_iterations(self, nonsymmetric_system):
        A, b, _ = nonsymmetric_system
        _, plain = gmres(A, b, tol=1e-10)
        _, ilu = gmres(A, b, preconditioner=IluPreconditioner(A), tol=1e-10)
        assert ilu.converged
        assert ilu.iterations < plain.iterations

    def test_restarting_still_converges(self, nonsymmetric_system):
        A, b, x_ref = nonsymmetric_system
        x, report = gmres(A, b, tol=1e-9, restart=5)
        assert report.converged
        np.testing.assert_allclose(x, x_ref, rtol=1e-5, atol=1e-7)

    def test_works_on_spd_too(self):
        A = five_point(8, 8)
        b = np.ones(A.n_rows)
        x, report = gmres(A, b, tol=1e-9)
        assert report.converged
        np.testing.assert_allclose(A.matvec(x), b, atol=1e-7)

    def test_zero_rhs_immediate(self, nonsymmetric_system):
        A, _, _ = nonsymmetric_system
        x, report = gmres(A, np.zeros(A.n_rows))
        assert report.converged
        assert report.iterations == 0
        np.testing.assert_allclose(x, 0.0)

    def test_maxiter_caps_and_reports_nonconvergence(
        self, nonsymmetric_system
    ):
        A, b, _ = nonsymmetric_system
        _, report = gmres(A, b, tol=1e-14, maxiter=2)
        assert not report.converged
        assert report.iterations <= 2

    def test_residual_history_decreases_overall(self, nonsymmetric_system):
        A, b, _ = nonsymmetric_system
        _, report = gmres(A, b, tol=1e-10)
        assert report.residuals[-1] < report.residuals[0]

    def test_validation(self, nonsymmetric_system):
        A, b, _ = nonsymmetric_system
        with pytest.raises(MatrixFormatError):
            gmres(A, np.ones(3))
        with pytest.raises(MatrixFormatError):
            gmres(A, b, restart=0)
        with pytest.raises(MatrixFormatError):
            gmres(CSRMatrix.from_dense(np.ones((2, 3))), np.ones(2))

    def test_parallel_preconditioner_identical_solves(
        self, nonsymmetric_system
    ):
        A, b, _ = nonsymmetric_system
        runner = Doconsider(doacross=PreprocessedDoacross(processors=8))
        x_seq, rep_seq = gmres(
            A, b, preconditioner=IluPreconditioner(A), tol=1e-9
        )
        x_par, rep_par = gmres(
            A, b, preconditioner=IluPreconditioner(A, runner=runner), tol=1e-9
        )
        np.testing.assert_allclose(x_seq, x_par, rtol=1e-12)
        assert rep_par.precond_cycles < rep_seq.precond_cycles

    def test_lucky_breakdown_on_identity(self):
        """A = I: the Krylov space degenerates after one vector; GMRES must
        take the lucky-breakdown path and return the exact solution."""
        A = CSRMatrix.from_dense(np.eye(6))
        b = np.arange(1.0, 7.0)
        x, report = gmres(A, b, tol=1e-12)
        assert report.converged
        assert report.iterations == 1
        np.testing.assert_allclose(x, b)

    def test_precond_fraction_large_for_ilu(self, nonsymmetric_system):
        """The paper's motivation holds for the SPE-style problems too."""
        A, b, _ = nonsymmetric_system
        _, report = gmres(
            A, b, preconditioner=IluPreconditioner(A), tol=1e-10
        )
        assert report.precond_fraction > 0.4
