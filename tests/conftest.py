"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.machine.costs import CostModel
from repro.machine.engine import Machine
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture
def machine4(cost_model) -> Machine:
    return Machine(4, cost_model=cost_model)


@pytest.fixture
def machine16(cost_model) -> Machine:
    return Machine(16, cost_model=cost_model)


@pytest.fixture
def runner16() -> PreprocessedDoacross:
    return PreprocessedDoacross(processors=16)


@pytest.fixture
def runner4() -> PreprocessedDoacross:
    return PreprocessedDoacross(processors=4)


@pytest.fixture
def small_random_loop():
    return random_irregular_loop(n=120, max_terms=3, seed=7)


@pytest.fixture
def small_test_loop():
    return make_test_loop(n=200, m=2, l=6)


def assert_matches_oracle(result_y: np.ndarray, loop) -> None:
    """Every strategy must reproduce the sequential oracle exactly (up to
    floating-point associativity, which the executor preserves by summing
    terms in the same order — so we demand tight agreement)."""
    reference = loop.run_sequential()
    np.testing.assert_allclose(result_y, reference, rtol=1e-12, atol=1e-12)
