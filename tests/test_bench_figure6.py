"""Tests for the Figure-6 experiment harness (reduced sizes)."""

import pytest

from repro.bench.figure6 import PAPER_PLATEAU, run_figure6


@pytest.fixture(scope="module")
def small_sweep():
    # Reduced N keeps the suite fast; the qualitative shape is identical.
    return run_figure6(n=1500)


class TestFigure6:
    def test_all_28_points_measured(self, small_sweep):
        assert len(small_sweep.rows) == 28

    def test_shape_check_passes(self, small_sweep):
        small_sweep.check_shape()

    def test_plateaus_near_paper(self, small_sweep):
        assert small_sweep.plateau(1) == pytest.approx(
            PAPER_PLATEAU[1], abs=0.05
        )
        assert small_sweep.plateau(5) == pytest.approx(
            PAPER_PLATEAU[5], abs=0.05
        )

    def test_even_l_rises_with_l(self, small_sweep):
        for m in (1, 5):
            pts = dict(small_sweep.efficiencies(m, parity="even"))
            assert pts[14] > pts[4]

    def test_efficiencies_filterable_by_parity(self, small_sweep):
        odd = small_sweep.efficiencies(1, parity="odd")
        even = small_sweep.efficiencies(1, parity="even")
        assert len(odd) == len(even) == 7
        assert all(l % 2 == 1 for l, _ in odd)
        assert all(l % 2 == 0 for l, _ in even)

    def test_report_contains_chart_and_plateaus(self, small_sweep):
        text = small_sweep.report()
        assert "Figure 6" in text
        assert "parallel efficiency" in text
        assert "plateau" in text
        assert "M=5" in text

    def test_shape_check_catches_broken_plateau(self):
        sweep = run_figure6(n=400, ms=(1,), ls=(1, 3))
        sweep.rows[0].result.total_cycles *= 5  # corrupt one point
        with pytest.raises(AssertionError, match="plateau"):
            sweep.check_shape()

    def test_custom_sweep_dimensions(self):
        sweep = run_figure6(n=300, ms=(2,), ls=(1, 2, 4))
        assert len(sweep.rows) == 3
        assert {r.params["m"] for r in sweep.rows} == {2}
