"""Tests for the Figure-4 test-loop generator."""

import numpy as np
import pytest

from repro.errors import InvalidLoopError
from repro.ir.analysis import is_doall, summarize_dependences
from repro.ir.subscript import AffineSubscript
from repro.workloads.testloop import dependence_distances, make_test_loop


class TestConstruction:
    def test_shape(self):
        loop = make_test_loop(n=50, m=3, l=5)
        assert loop.n == 50
        assert loop.reads.total_terms == 150
        assert isinstance(loop.write_subscript, AffineSubscript)
        assert loop.write_subscript.c == 2  # a(i) = 2i

    def test_all_indices_in_range(self):
        for l in (1, 14):
            loop = make_test_loop(n=30, m=5, l=l)
            assert loop.reads.index.min() >= 0
            assert loop.reads.index.max() < loop.y_size
            assert loop.write.min() >= 0

    def test_default_coefficients_bounded(self):
        loop = make_test_loop(n=20, m=4, l=6)
        np.testing.assert_allclose(loop.reads.coeff, 0.125)

    def test_custom_coefficients(self):
        val = np.array([0.1, 0.2])
        loop = make_test_loop(n=10, m=2, l=3, val=val)
        np.testing.assert_allclose(loop.reads.terms_of(0)[1], val)

    def test_custom_val_shape_checked(self):
        with pytest.raises(InvalidLoopError):
            make_test_loop(n=10, m=2, l=3, val=np.ones(3))

    def test_parameter_validation(self):
        with pytest.raises(InvalidLoopError):
            make_test_loop(n=0, m=1, l=1)
        with pytest.raises(InvalidLoopError):
            make_test_loop(n=1, m=0, l=1)
        with pytest.raises(InvalidLoopError):
            make_test_loop(n=1, m=1, l=0)

    def test_name_encodes_parameters(self):
        assert "N=10" in make_test_loop(n=10, m=1, l=1).name


class TestDependenceStructure:
    @pytest.mark.parametrize("l", [1, 3, 13])
    def test_odd_l_is_doall(self, l):
        assert is_doall(make_test_loop(n=40, m=4, l=l))

    @pytest.mark.parametrize("m,l", [(1, 4), (2, 6), (5, 12)])
    def test_even_l_with_small_j_is_not_doall(self, m, l):
        assert not is_doall(make_test_loop(n=40, m=m, l=l))

    def test_even_l2_m1_is_value_level_doall(self):
        """L=2, M=1: the single term is intra-iteration (distance 0)."""
        assert is_doall(make_test_loop(n=40, m=1, l=2))
        assert dependence_distances(1, 2) == []

    def test_distance_formula(self):
        assert dependence_distances(5, 14) == [6, 5, 4, 3, 2]
        assert dependence_distances(1, 4) == [1]
        assert dependence_distances(1, 2) == []
        assert dependence_distances(3, 7) == []

    def test_bounded_values_on_long_chains(self):
        """The default val keeps the recurrence bounded: no overflow on a
        10k-iteration dependence chain."""
        loop = make_test_loop(n=10000, m=1, l=4)
        y = loop.run_sequential()
        assert np.isfinite(y).all()
        assert np.abs(y).max() < 10.0

    def test_dependence_summary_counts(self):
        # M=3, L=4: per interior iteration j=1 true, j=2 intra, j=3 anti.
        s = summarize_dependences(make_test_loop(n=100, m=3, l=4))
        assert s.intra_terms == 100
        assert s.true_terms == 99  # iteration 0 reads an unwritten slot
        assert s.anti_terms == 99
