"""The schedule-mutation harness: detector power, proven not assumed.

``run_mutation_suite`` is the CI gate; these tests pin the pieces it is
built from — that the protocol interpreter's unmutated logs are clean in
every backend shape (no false positives), that each registered mutant is
killed with the violation kind its description promises, and that the
report's pass/fail arithmetic is honest.
"""

import pytest

from repro.sanitize.detector import detect
from repro.sanitize.mutate import (
    MUTANTS,
    InterpreterConfig,
    MutationReport,
    MutantResult,
    ProtocolInterpreter,
    run_mutation_suite,
)
from repro.workloads.synthetic import chain_loop, random_irregular_loop


@pytest.fixture(scope="module")
def suite_report():
    return run_mutation_suite()


class TestInterpreterConformance:
    @pytest.mark.parametrize(
        "mode", ["chunked", "threaded", "levels", "speculative"]
    )
    def test_unmutated_logs_are_clean(self, mode):
        for loop in (chain_loop(48, 1), random_irregular_loop(100, seed=5)):
            capture = ProtocolInterpreter(
                loop, InterpreterConfig(mode=mode)
            ).interpret()
            report = detect(capture, loop)
            assert report.ok, (
                f"false positive: {mode} on {loop.name}: "
                f"{report.summary()}"
            )
            assert report.pairs_checked > 0

    def test_levels_mode_marks_the_capture_for_the_fast_path(self):
        capture = ProtocolInterpreter(
            chain_loop(24, 1), InterpreterConfig(mode="levels")
        ).interpret()
        assert capture.meta["levels"] == 24  # distance-1 chain: n levels

    def test_unknown_mode_is_rejected(self):
        interp = ProtocolInterpreter(
            chain_loop(8, 1), InterpreterConfig(mode="nope")
        )
        with pytest.raises(ValueError, match="unknown interpreter mode"):
            interp.interpret()


class TestMutantRegistry:
    def test_registry_covers_all_four_shapes(self):
        modes = {m.mode for m in MUTANTS}
        assert modes == {"chunked", "threaded", "levels", "speculative"}
        assert len(MUTANTS) == 14
        assert len({m.name for m in MUTANTS}) == 14

    @pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.name)
    def test_each_mutant_is_killed_with_the_expected_kind(self, mutant):
        loops = [
            ("chain-48-d1", chain_loop(48, 1)),
            ("irregular-100-s5", random_irregular_loop(100, seed=5)),
        ]
        for name, loop in loops:
            if mutant.only is not None and not any(
                tag in name for tag in mutant.only
            ):
                continue
            cfg = InterpreterConfig(mode=mutant.mode)
            mutant.apply(cfg)
            capture = ProtocolInterpreter(loop, cfg).interpret()
            report = detect(capture, loop)
            assert not report.ok, f"{mutant.name} survived on {name}"
            assert any(k in mutant.expect for k in report.counts), (
                f"{mutant.name} on {name}: got {report.counts}, "
                f"expected one of {mutant.expect}"
            )


class TestSuiteGate:
    def test_full_suite_meets_the_ci_gate(self, suite_report):
        assert suite_report.baseline_clean
        assert suite_report.kill_rate >= 0.9
        assert suite_report.passed(min_kill=0.9)
        assert all(r.matched_expected for r in suite_report.results)

    def test_only_filter_restricts_workloads(self, suite_report):
        rrr = next(
            r for r in suite_report.results if r.name == "reverse-round-robin"
        )
        # The mutant needs a multi-chunk dependence shape: it runs on
        # the irregular workload only.
        assert "irregular" in rrr.workload
        assert "chain" not in rrr.workload

    def test_summary_and_dict_round_trip(self, suite_report):
        text = suite_report.summary()
        assert "kill rate 100%" in text
        assert "[KILLED]" in text
        d = suite_report.as_dict()
        assert d["baseline_clean"] is True
        assert len(d["mutants"]) == len(MUTANTS)

    def test_pass_arithmetic(self):
        report = MutationReport(
            results=[
                MutantResult("a", "threaded", "w", True, ("x",), True),
                MutantResult("b", "threaded", "w", False, ("x",), True),
            ],
            baselines=[("threaded", "w", True)],
        )
        assert report.kill_rate == 0.5
        assert not report.passed(min_kill=0.9)
        assert report.passed(min_kill=0.5)
        report.baselines.append(("chunked", "w", False))
        assert not report.passed(min_kill=0.5)  # false positive vetoes
        assert "FALSE POSITIVE" in report.summary()

    def test_empty_report_never_passes(self):
        assert MutationReport().kill_rate == 0.0
        assert not MutationReport().passed()
