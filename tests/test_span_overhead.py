"""The observation budget (ISSUE 8 satellite 1): ``observe=True`` must
cost under 10% wall time on the 50k-row sparse triangular solve.

Telemetry that doubles the run poisons its own numbers — the busy-wait
fractions and phase extents the doctor and tuner consume would describe
the instrumentation, not the loop.  The hot paths therefore batch raw
span rows (:meth:`~repro.obs.spans.SpanRecorder.record_batch` /
:meth:`~repro.obs.spans.SpanRecorder.record_wait_segments`) and
materialize Span objects lazily, outside the timed region.  This file is
the regression gate on that design.

Measurement discipline: bare/observed runs are interleaved in pairs and
compared by medians (single-run wall clocks on a shared CI box jitter by
±20%, far above the effect being measured), against a shared warm
inspector cache so the budget judges steady-state executor overhead.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.backends import InspectorCache, make_runner
from repro.bench.bench_multiproc import _build_loop
from repro.passes import PlanSpec

#: The tested invariant: observed wall / bare wall - 1, per backend.
OVERHEAD_BUDGET = 0.10

#: Interleaved (bare, observed) pairs per backend.
PAIRS = 5


@pytest.fixture(scope="module")
def trisolve():
    loop, _nnz = _build_loop(224, 224)  # the >=50k-row triangular solve
    assert loop.n >= 50_000
    return loop


def measured_overhead(loop, backend: str, processors: int = 4) -> float:
    cache = InspectorCache()
    bare = make_runner(
        spec=PlanSpec(backend=backend, processors=processors), cache=cache
    )
    observed = make_runner(
        spec=PlanSpec(backend=backend, processors=processors, observe=True),
        cache=cache,
    )
    # Warm the shared inspector cache (and the allocator) outside the
    # measurement so preprocessing cost cancels out of both arms.
    result = bare.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())

    bare_walls, observed_walls = [], []
    for _ in range(PAIRS):
        bare_walls.append(float(bare.run(loop).wall_seconds))
        observed_walls.append(float(observed.run(loop).wall_seconds))
    return statistics.median(observed_walls) / statistics.median(bare_walls) - 1.0


@pytest.mark.parametrize("backend", ["threaded", "vectorized"])
def test_observe_overhead_within_budget(trisolve, backend):
    overhead = measured_overhead(trisolve, backend)
    assert overhead < OVERHEAD_BUDGET, (
        f"observe=True costs {overhead:.1%} wall time on the {backend} "
        f"backend (budget {OVERHEAD_BUDGET:.0%}) — span recording has "
        f"crept back into the hot loop"
    )


def test_bench_threaded_reports_the_budget_columns():
    from repro.bench.bench_threaded import run_bench_threaded

    result = run_bench_threaded(n=800)
    assert result.bare_wall_seconds > 0
    assert result.observe_overhead == pytest.approx(
        result.wall_seconds / result.bare_wall_seconds - 1.0
    )
    d = result.as_dict()
    assert {"bare_wall_seconds", "observe_overhead"} <= set(d)


def test_bench_vectorized_reports_the_budget_columns():
    from repro.bench.bench_vectorized import run_bench_vectorized

    result = run_bench_vectorized(n=5_000, repeats=2)
    assert result.vectorized_observed_seconds > 0
    assert result.observe_overhead == pytest.approx(
        result.vectorized_observed_seconds / result.vectorized_warm_seconds
        - 1.0
    )
    assert "observe_overhead" in result.as_dict()
