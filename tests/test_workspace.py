"""Tests for the reusable doacross workspace."""

import numpy as np

from repro.core.workspace import MAXINT, DoacrossWorkspace


class TestWorkspace:
    def test_starts_clean(self):
        ws = DoacrossWorkspace(10)
        assert ws.is_clean()
        assert ws.y_size == 10
        assert ws.invocations == 0

    def test_dirty_detection(self):
        ws = DoacrossWorkspace(5)
        ws.iter_arr[3] = 7
        assert not ws.is_clean()
        np.testing.assert_array_equal(ws.dirty_indices(), [3])

    def test_ensure_size_grows_preserving_state(self):
        ws = DoacrossWorkspace(4)
        ws.iter_arr[1] = 9
        ws.ynew[2] = 3.5
        ws.ensure_size(8)
        assert ws.y_size == 8
        assert ws.iter_arr[1] == 9
        assert ws.ynew[2] == 3.5
        assert np.all(ws.iter_arr[4:] == MAXINT)

    def test_ensure_size_never_shrinks(self):
        ws = DoacrossWorkspace(10)
        ws.ensure_size(3)
        assert ws.y_size == 10

    def test_scratch_bytes(self):
        ws = DoacrossWorkspace(100)
        assert ws.scratch_bytes() == 100 * 8 + 100 * 8

    def test_maxint_is_int64_max(self):
        assert MAXINT == np.iinfo(np.int64).max


class TestDirtyWorkspaceGuard:
    """A dirty workspace (skipped postprocessing) must fail loudly, not
    silently misclassify reads."""

    def _dirty_runner(self):
        from repro.core.doacross import PreprocessedDoacross

        ws = DoacrossWorkspace(64)
        ws.iter_arr[7] = 3  # stale entry
        return PreprocessedDoacross(processors=4, workspace=ws)

    def test_run_rejects_dirty_workspace(self):
        import pytest

        from repro.errors import InvalidLoopError
        from repro.workloads.testloop import make_test_loop

        runner = self._dirty_runner()
        with pytest.raises(InvalidLoopError, match="dirty"):
            runner.run(make_test_loop(n=20, m=1, l=3))

    def test_stripmine_rejects_dirty_workspace(self):
        import pytest

        from repro.errors import InvalidLoopError
        from repro.workloads.testloop import make_test_loop

        runner = self._dirty_runner()
        with pytest.raises(InvalidLoopError, match="dirty"):
            runner.run_stripmined(make_test_loop(n=20, m=1, l=3), block=5)

    def test_amortized_rejects_dirty_workspace(self):
        import pytest

        from repro.core.amortized import AmortizedDoacross
        from repro.errors import InvalidLoopError
        from repro.workloads.testloop import make_test_loop

        runner = AmortizedDoacross(doacross=self._dirty_runner())
        with pytest.raises(InvalidLoopError, match="dirty"):
            runner.run(make_test_loop(n=20, m=1, l=3), 2)
