"""Tests for the sequential oracle runner and its timing model."""

import numpy as np
import pytest

from repro.core.sequential import run_reference, sequential_time
from repro.machine.costs import CostModel, WorkProfile
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop


class TestSequentialTime:
    def test_uniform_terms_formula(self):
        cm = CostModel()
        loop = make_test_loop(n=100, m=3, l=5)
        expected = 100 * cm.seq_iteration(3)
        assert sequential_time(loop, cm) == expected

    def test_respects_loop_work_profile(self):
        cm = CostModel()
        loop = make_test_loop(n=10, m=1, l=3)
        loop.work = WorkProfile(overhead=100, term_setup=10, term_consume=10)
        assert sequential_time(loop, cm) == 10 * (100 + 20)

    def test_varying_term_counts(self):
        cm = CostModel()
        loop = random_irregular_loop(50, max_terms=4, seed=3)
        total_terms = int(loop.reads.term_counts().sum())
        assert (
            sequential_time(loop, cm)
            == 50 * cm.work.overhead + total_terms * cm.work.term
        )

    def test_empty_loop_is_free(self):
        loop = random_irregular_loop(0, seed=0)
        assert sequential_time(loop, CostModel()) == 0


class TestRunReference:
    def test_matches_oracle_values(self):
        loop = random_irregular_loop(60, seed=11)
        result = run_reference(loop)
        np.testing.assert_allclose(result.y, loop.run_sequential())

    def test_is_its_own_baseline(self):
        loop = make_test_loop(n=40, m=2, l=4)
        result = run_reference(loop)
        assert result.total_cycles == result.sequential_cycles
        assert result.speedup == pytest.approx(1.0)
        assert result.efficiency == pytest.approx(1.0)
        assert result.processors == 1
        assert result.strategy == "sequential"
