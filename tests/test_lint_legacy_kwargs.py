"""The ``LEGACY-KWARGS`` source-level lint rule and ``--prune-baseline``."""

import json

from repro.__main__ import main as repro_main
from repro.lint.rules import LegacyKwargsRule, rule_ids


def run_cli(capsys, *argv):
    code = repro_main(["lint", *argv])
    return code, capsys.readouterr().out


LEGACY_SOURCE = '''\
import repro
from repro.backends import make_runner

def run_legacy(loop):  # scanned by AST, never executed by the harvest
    result, _ = repro.parallelize(loop, validate="static", observe=True)
    runner = make_runner("threaded", analyze="symbolic")
    clean = make_runner(spec=repro.PlanSpec(backend="threaded"))
    other = configure(validate="static")  # not an entry point: ignored
    return result

def build_loop():
    return repro.chain_loop(40, 1)
'''


class TestLegacyKwargsRule:
    def test_registered(self):
        assert "LEGACY-KWARGS" in rule_ids()

    def test_scan_flags_deprecated_keywords(self):
        findings = list(
            LegacyKwargsRule().scan("demo.py", LEGACY_SOURCE)
        )
        assert len(findings) == 2
        by_line = {f.location: f for f in findings}
        par = by_line["demo.py:5"]
        assert "parallelize()" in par.message
        assert "validate, observe" in par.message
        assert "spec=PlanSpec(validate=..., observe=...)" in par.suggestion
        run = by_line["demo.py:6"]
        assert "make_runner()" in run.message
        assert "analyze" in run.message

    def test_scan_ignores_spec_calls_and_other_functions(self):
        clean = (
            "import repro\n"
            "r, _ = repro.parallelize(loop, spec=repro.PlanSpec())\n"
            "x = configure(validate='static')\n"
            "y = repro.parallelize(loop, processors=4)\n"
        )
        assert list(LegacyKwargsRule().scan("c.py", clean)) == []

    def test_scan_skips_unparseable_source(self):
        assert list(LegacyKwargsRule().scan("bad.py", "def f(:")) == []

    def test_make_runner_schedule_kwarg_is_not_flagged(self):
        # make_runner never took schedule/chunk; only the three shimmed
        # options count for it.
        src = "make_runner('simulated', schedule='cyclic')\n"
        assert list(LegacyKwargsRule().scan("s.py", src)) == []

    def test_loop_level_check_is_a_no_op(self):
        assert list(LegacyKwargsRule().check(None)) == []


class TestLegacyKwargsCLI:
    def test_cli_reports_legacy_call_sites(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text(LEGACY_SOURCE)
        code, out = run_cli(capsys, str(target))
        assert code == 0  # warnings alone don't fail the gate
        assert "LEGACY-KWARGS" in out
        assert "legacy.py:5" in out
        code, _ = run_cli(capsys, str(target), "--strict")
        assert code == 1

    def test_rules_filter_selects_source_scan(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text(LEGACY_SOURCE)
        code, out = run_cli(capsys, str(target), "--rules=LEGACY-KWARGS")
        assert "LEGACY-KWARGS" in out
        code, out = run_cli(capsys, str(target), "--rules=DOALL-ABLE")
        assert "LEGACY-KWARGS" not in out

    def test_internal_targets_are_clean(self, capsys):
        # Dogfooding: the shipped examples and workloads must not trip
        # the rule they motivated.
        code, out = run_cli(
            capsys,
            "examples/",
            "workloads/",
            "--rules=LEGACY-KWARGS",
            "--strict",
        )
        assert code == 0
        assert "LEGACY-KWARGS" not in out

    def test_findings_are_baselineable(self, tmp_path, capsys):
        target = tmp_path / "legacy.py"
        target.write_text(LEGACY_SOURCE)
        baseline = tmp_path / "base.json"
        code, out = run_cli(
            capsys, str(target), f"--write-baseline={baseline}"
        )
        assert code == 0
        keys = json.loads(baseline.read_text())["findings"]
        assert any(k.startswith("LEGACY-KWARGS|") for k in keys)
        code, out = run_cli(
            capsys, str(target), "--strict", f"--baseline={baseline}"
        )
        assert code == 0
        assert "LEGACY-KWARGS" not in out


class TestPruneBaseline:
    def test_prunes_stale_entries_keeps_live_ones(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        code, _ = run_cli(
            capsys, "figure4:n=60,m=2,l=7", f"--write-baseline={baseline}"
        )
        assert code == 0
        payload = json.loads(baseline.read_text())
        live = set(payload["findings"])
        assert live
        payload["findings"].append("DEAD-WAIT|gone-loop|term slot(s) 9")
        baseline.write_text(json.dumps(payload))

        code, out = run_cli(
            capsys,
            "figure4:n=60,m=2,l=7",
            f"--baseline={baseline}",
            "--prune-baseline",
        )
        assert code == 0
        assert "pruned 1 stale finding key(s)" in out
        assert "DEAD-WAIT|gone-loop|term slot(s) 9" in out
        after = json.loads(baseline.read_text())
        assert set(after["findings"]) == live
        assert after["version"] == 1

    def test_noop_prune_rewrites_identical_set(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        run_cli(capsys, "chain:n=40,d=1", f"--write-baseline={baseline}")
        before = set(json.loads(baseline.read_text())["findings"])
        code, out = run_cli(
            capsys,
            "chain:n=40,d=1",
            f"--baseline={baseline}",
            "--prune-baseline",
        )
        assert code == 0
        assert "pruned 0 stale finding key(s)" in out
        assert set(json.loads(baseline.read_text())["findings"]) == before

    def test_prune_requires_baseline(self, capsys):
        code = repro_main(["lint", "chain:n=40,d=1", "--prune-baseline"])
        capsys.readouterr()
        assert code == 2
