"""Public API surface tests: what a downstream user imports must exist,
be documented, and stay stable."""

import inspect

import pytest

import repro
import repro.backends
import repro.bench
import repro.core
import repro.graph
import repro.ir
import repro.machine
import repro.sparse
import repro.workloads


ALL_PACKAGES = [
    repro,
    repro.core,
    repro.machine,
    repro.ir,
    repro.graph,
    repro.sparse,
    repro.backends,
    repro.workloads,
    repro.bench,
]


class TestExports:
    @pytest.mark.parametrize("pkg", ALL_PACKAGES, ids=lambda p: p.__name__)
    def test_all_names_resolve(self, pkg):
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg.__name__}.{name} missing"

    @pytest.mark.parametrize("pkg", ALL_PACKAGES, ids=lambda p: p.__name__)
    def test_package_docstring(self, pkg):
        assert pkg.__doc__ and len(pkg.__doc__) > 60

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_key_entry_points_present(self):
        for name in (
            "PreprocessedDoacross",
            "Doconsider",
            "AmortizedDoacross",
            "ClassicDoacross",
            "DoallRunner",
            "parallelize",
            "verify_loop",
            "make_test_loop",
            "IrregularLoop",
            "CostModel",
            "WorkProfile",
        ):
            assert name in repro.__all__


class TestDocstrings:
    """Every public callable exported from the top level is documented."""

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_documented(self, name):
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"

    @pytest.mark.parametrize(
        "cls_name",
        [
            "PreprocessedDoacross",
            "Doconsider",
            "AmortizedDoacross",
            "ClassicDoacross",
            "DoallRunner",
            "StripminedDoacross",
            "LinearDoacross",
        ],
    )
    def test_runner_public_methods_documented(self, cls_name):
        cls = getattr(repro, cls_name)
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__, f"{cls_name}.{name} lacks a docstring"
