"""Tests for the exception hierarchy and error payloads."""

import pytest

from repro.errors import (
    CalibrationError,
    InvalidLoopError,
    MatrixFormatError,
    OutputDependenceError,
    ReproError,
    ScheduleError,
    SimulationDeadlockError,
    SingularMatrixError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [
            SimulationDeadlockError,
            InvalidLoopError,
            OutputDependenceError,
            ScheduleError,
            MatrixFormatError,
            SingularMatrixError,
            CalibrationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_output_dependence_is_invalid_loop(self):
        assert issubclass(OutputDependenceError, InvalidLoopError)

    def test_singular_is_matrix_format(self):
        assert issubclass(SingularMatrixError, MatrixFormatError)


class TestPayloads:
    def test_deadlock_error_carries_waiters_and_time(self):
        err = SimulationDeadlockError({0: 7, 3: 2}, time=99)
        assert err.waiters == {0: 7, 3: 2}
        assert err.time == 99
        assert "p0→flag 7" in str(err)
        assert "t=99" in str(err)

    def test_deadlock_waiters_copied(self):
        waiters = {1: 2}
        err = SimulationDeadlockError(waiters, time=0)
        waiters[1] = 99
        assert err.waiters == {1: 2}

    def test_output_dependence_names_participants(self):
        err = OutputDependenceError(index=5, first_writer=2, second_writer=9)
        assert err.index == 5
        assert err.first_writer == 2
        assert err.second_writer == 9
        assert "element 5" in str(err)
        assert "injective" in str(err)

    def test_singular_matrix_names_row(self):
        err = SingularMatrixError(17)
        assert err.row == 17
        assert "row 17" in str(err)

    def test_catch_all_via_base(self):
        with pytest.raises(ReproError):
            raise ScheduleError("bad")
