"""Inspector elision: symbolic records, backend wiring, cache sharing."""

import numpy as np
import pytest

import repro
from repro.analysis import (
    analyze_loop,
    build_symbolic_record,
    record_mismatches,
    records_equal,
    symbolic_fingerprint,
)
from repro.backends import make_runner
from repro.backends.cache import InspectorCache, build_inspector_record
from repro.errors import ProofError
from repro.workloads.synthetic import affine_loop


def counters(result):
    telemetry = result.telemetry
    assert telemetry is not None
    return telemetry.metrics.as_dict()["counters"]


ELIDABLE_LOOPS = [
    repro.chain_loop(96, 1),
    repro.chain_loop(96, 4),
    repro.make_test_loop(96, 2, 8),  # mixed distances 2 and 3
    repro.make_test_loop(96, 2, 7),  # doall
    affine_loop(80, (2, 0), [(2, 1)], name="parity-doall"),
    affine_loop(80, (2, 0), [(2, -2)], name="stride-chain"),
    affine_loop(80, (1, 0), [(1, 1)], name="anti-only"),
]


# ----------------------------------------------------------------------
# Records: symbolic == runtime, array for array
# ----------------------------------------------------------------------
@pytest.mark.parametrize("loop", ELIDABLE_LOOPS, ids=lambda lp: lp.name)
def test_symbolic_record_is_bitwise_identical(loop):
    symbolic = build_symbolic_record(loop)
    runtime = build_inspector_record(loop)
    assert record_mismatches(symbolic, runtime) == []
    assert records_equal(symbolic, runtime)


def test_build_symbolic_record_rejects_unproven_loop():
    loop = repro.random_irregular_loop(64, seed=2)
    with pytest.raises(ProofError, match="not elidable"):
        build_symbolic_record(loop)


def test_record_mismatches_reports_differing_fields():
    a = build_symbolic_record(repro.chain_loop(48, 1))
    b = build_inspector_record(repro.chain_loop(48, 2))
    assert any("differs" in p for p in record_mismatches(a, b))


# ----------------------------------------------------------------------
# Vectorized backend: elision end to end
# ----------------------------------------------------------------------
def test_vectorized_symbolic_elides_inspector():
    loop = repro.make_test_loop(200, 2, 8)
    plain = make_runner("vectorized", cache=InspectorCache(), observe=True)
    elided = make_runner(
        "vectorized",
        cache=InspectorCache(),
        observe=True,
        analyze="symbolic",
    )
    full = plain.run(loop)
    fast = elided.run(loop)
    assert np.array_equal(full.y, fast.y)
    assert np.array_equal(fast.y, loop.run_sequential())

    # The full path inspected every iteration; the elided path none.
    assert counters(full)["inspector_iterations"] == loop.n
    assert counters(fast)["inspector_iterations"] == 0
    assert counters(fast)["inspector_elisions"] == 1
    assert fast.extras["inspector_elided"] is True
    assert fast.extras["analyze"] == "symbolic"
    assert fast.extras["verdict"] == "injective-write"


def test_vectorized_symbolic_check_debug_mode():
    runner = make_runner(
        "vectorized", cache=InspectorCache(), analyze="symbolic+check"
    )
    for loop in ELIDABLE_LOOPS:
        result = runner.run(loop)
        assert np.array_equal(result.y, loop.run_sequential())


def test_vectorized_symbolic_falls_back_on_runtime_only():
    loop = repro.random_irregular_loop(100, seed=5)
    runner = make_runner(
        "vectorized", cache=InspectorCache(), observe=True, analyze="symbolic"
    )
    result = runner.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["inspector_elided"] is False
    assert counters(result)["inspector_iterations"] == loop.n
    assert counters(result)["inspector_elisions"] == 0


def test_symbolic_fingerprint_shares_cache_across_instances():
    # Same structure, different y0 contents: one proof, one cache entry.
    a = affine_loop(120, (1, 0), [(1, -2)], seed=1, name="shared")
    b = affine_loop(120, (1, 0), [(1, -2)], seed=2, name="shared")
    assert not np.array_equal(a.y0, b.y0)
    assert symbolic_fingerprint(a) == symbolic_fingerprint(b)

    cache = InspectorCache()
    runner = make_runner("vectorized", cache=cache, analyze="symbolic")
    ra = runner.run(a)
    rb = runner.run(b)
    assert cache.misses == 1 and cache.hits == 1
    assert np.array_equal(ra.y, a.run_sequential())
    assert np.array_equal(rb.y, b.run_sequential())


def test_run_repeated_with_elision():
    loop = repro.chain_loop(150, 2)
    runner = make_runner(
        "vectorized", cache=InspectorCache(), analyze="symbolic"
    )
    result = runner.run_repeated(loop, instances=3)
    y = loop.y0.copy()
    for _ in range(3):
        clone = loop.with_name(loop.name)
        clone.y0 = y
        y = clone.run_sequential()
    assert np.array_equal(result.y, y)
    assert result.extras["inspector_runs"] == 0


# ----------------------------------------------------------------------
# Threaded backend: prefilled iter array
# ----------------------------------------------------------------------
def test_threaded_symbolic_prefills_iter():
    loop = repro.make_test_loop(120, 2, 8)
    runner = make_runner(
        "threaded", processors=4, observe=True, analyze="symbolic"
    )
    result = runner.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["inspector_elided"] is True
    assert counters(result)["inspector_iterations"] == 0


def test_threaded_symbolic_check_and_fallback():
    dep = repro.make_test_loop(100, 2, 8)
    checked = make_runner("threaded", processors=4, analyze="symbolic+check")
    assert np.array_equal(checked.run(dep).y, dep.run_sequential())
    opaque = repro.random_irregular_loop(100, seed=4)
    fallback = make_runner(
        "threaded", processors=4, observe=True, analyze="symbolic"
    )
    result = fallback.run(opaque)
    assert np.array_equal(result.y, opaque.run_sequential())
    assert result.extras["inspector_elided"] is False
    assert counters(result)["inspector_iterations"] == opaque.n


# ----------------------------------------------------------------------
# make_runner / parallelize wiring
# ----------------------------------------------------------------------
def test_make_runner_rejects_bad_analyze_values():
    with pytest.raises(ValueError, match="analyze"):
        make_runner("vectorized", analyze="magic")
    with pytest.raises(ValueError, match="simulated"):
        make_runner("simulated", analyze="symbolic")


def test_parallelize_analyze_upgrades_strategy():
    chain = repro.chain_loop(120, 3)
    result, plan = repro.parallelize(
        chain, backend="simulated", analyze="symbolic"
    )
    assert plan.strategy == "classic"
    assert np.array_equal(result.y, chain.run_sequential())
    assert result.extras["verdict"] == "constant-distance"
    assert result.extras["verdict_distance"] == 3

    indep = repro.make_test_loop(120, 2, 7)
    result, plan = repro.parallelize(
        indep, backend="simulated", analyze="symbolic+check"
    )
    assert plan.strategy == "doall"
    assert np.array_equal(result.y, indep.run_sequential())


def test_parallelize_analyze_rejects_prebuilt_runner():
    runner = make_runner("vectorized")
    with pytest.raises(ValueError, match="pre-built"):
        repro.parallelize(
            repro.chain_loop(40, 1), backend=runner, analyze="symbolic"
        )
