"""Property tests: the symbolic verdict agrees with the runtime inspector.

The engine's contract is soundness — everything it proves holds for the
concrete instance the runtime inspector sees.  Random affine loops
exercise the proving rules (same-stride, congruence, interval, monotone);
random opaque loops exercise the honest-decline path.  In both cases
``cross_check`` (which audits the proof AND replays the inspector) must
come back clean, and elidable verdicts must reproduce the inspector
record bitwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SLOT_TRUE,
    VERDICT_CONSTANT_DISTANCE,
    VERDICT_DOALL,
    analyze_loop,
    build_symbolic_record,
    cross_check,
    records_equal,
)
from repro.backends.cache import build_inspector_record
from repro.ir.analysis import observed_distances
from repro.workloads.synthetic import affine_loop, random_irregular_loop

# Affine (c, d) pairs kept small so loops stay fast but signs and
# divisibility corner cases are all reachable.
affine_pair = st.tuples(
    st.integers(min_value=-3, max_value=3).filter(lambda c: c != 0),
    st.integers(min_value=-6, max_value=6),
)


@st.composite
def affine_loops(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    write = draw(affine_pair)
    n_slots = draw(st.integers(min_value=0, max_value=3))
    slots = [draw(affine_pair) for _ in range(n_slots)]
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return affine_loop(n, write, slots, seed=seed, name="prop-affine")


@given(affine_loops())
@settings(max_examples=80, deadline=None)
def test_affine_verdict_matches_inspector(loop):
    verdict = analyze_loop(loop)
    # An affine write with nonzero stride is always provably injective
    # (mixed-stride read pairs may still defeat the slot rules).
    assert verdict.write_injective

    report = cross_check(loop, verdict)
    assert report.ok, report.describe()

    observed = observed_distances(loop)
    if verdict.kind == VERDICT_DOALL:
        assert len(observed) == 0
    elif verdict.kind == VERDICT_CONSTANT_DISTANCE:
        assert observed.tolist() == [verdict.distance]
    elif verdict.fully_classified:
        # Mixed distances, all proven: the inspector sees exactly them.
        claimed = sorted(
            {s.distance for s in verdict.slots if s.kind == SLOT_TRUE}
        )
        assert observed.tolist() == claimed


@given(affine_loops())
@settings(max_examples=40, deadline=None)
def test_affine_symbolic_record_matches_inspector_record(loop):
    if not analyze_loop(loop).elidable:
        return  # mixed-stride slot defeated the rules: nothing to elide
    assert records_equal(
        build_symbolic_record(loop), build_inspector_record(loop)
    )


@given(
    st.integers(min_value=2, max_value=80),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=0, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_opaque_verdict_declines_honestly(n, seed, max_terms):
    loop = random_irregular_loop(n, max_terms=max_terms, seed=seed)
    verdict = analyze_loop(loop)
    # A runtime write subscript proves nothing, reads or no reads: the
    # engine must decline rather than guess.
    assert not verdict.write_injective
    assert not verdict.elidable
    report = cross_check(loop, verdict)
    assert report.ok, report.describe()


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=2, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_chain_distance_is_recovered_exactly(d, n):
    from repro.workloads.synthetic import chain_loop

    loop = chain_loop(max(n, d + 1), d)
    verdict = analyze_loop(loop)
    assert verdict.kind == VERDICT_CONSTANT_DISTANCE
    assert verdict.distance == d
    assert np.array_equal(
        build_symbolic_record(loop).iter_array,
        build_inspector_record(loop).iter_array,
    )


# ----------------------------------------------------------------------
# The dependence-test battery (direction/distance vectors)
# ----------------------------------------------------------------------
@given(affine_loops())
@settings(max_examples=60, deadline=None)
def test_battery_bound_never_exceeds_an_observed_distance(loop):
    # The load-bearing soundness property of the distance elision: the
    # proven lower bound must survive contact with the inspector on
    # every instance — a single observed distance below it would make a
    # group-synchronous schedule race.
    verdict = analyze_loop(loop)
    observed = observed_distances(loop)
    if verdict.min_distance is not None and len(observed):
        assert int(observed.min()) >= verdict.min_distance


@given(affine_loops())
@settings(max_examples=60, deadline=None)
def test_battery_vectors_agree_with_brute_force_pairs(loop):
    from repro.analysis import DIR_ANY

    verdict = analyze_loop(loop)
    n = loop.n
    w = loop.write_subscript.materialize(n)
    for vec in verdict.vectors:
        slot = loop.read_slots[vec.slot]
        lo, hi = slot.active_range(n)
        if hi <= lo or not vec.applicable:
            continue
        r = slot.subscript.materialize(hi)
        relations = set()
        true_distances = []
        for ir in range(lo, hi):
            for iw in np.nonzero(w == r[ir])[0]:
                if iw < ir:
                    relations.add("<")
                    true_distances.append(ir - int(iw))
                elif iw == ir:
                    relations.add("=")
                else:
                    relations.add(">")
        # Every observed relation must be in the claimed direction set
        # (DIR_NONE claims no aliasing at all; vacuously checked).
        if vec.direction != DIR_ANY:
            assert all(rel in vec.direction for rel in relations), (
                f"slot {vec.slot}: claimed {vec.direction!r}, "
                f"observed {sorted(relations)}"
            )
        if true_distances:
            if vec.min_distance is not None:
                assert min(true_distances) >= vec.min_distance
            if vec.distance is not None:
                assert set(true_distances) == {vec.distance}
