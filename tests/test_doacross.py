"""Tests for the preprocessed doacross on the simulated machine: semantic
equivalence, phase structure, workspace reuse, overhead plateaus."""

import numpy as np
import pytest

from repro.core.doacross import PreprocessedDoacross, parallelize
from repro.core.sequential import sequential_time
from repro.core.workspace import DoacrossWorkspace
from repro.errors import ScheduleError
from repro.machine.costs import CostModel
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


class TestSemanticEquivalence:
    @pytest.mark.parametrize("l", [1, 2, 4, 6, 7, 10, 14])
    @pytest.mark.parametrize("m", [1, 3])
    def test_figure4_loop_all_parameters(self, runner16, m, l):
        loop = make_test_loop(n=150, m=m, l=l)
        result = runner16.run(loop)
        assert_matches_oracle(result.y, loop)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_loops(self, runner16, seed):
        loop = random_irregular_loop(100, seed=seed)
        assert_matches_oracle(runner16.run(loop).y, loop)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_loops_external_init(self, runner16, seed):
        loop = random_irregular_loop(100, seed=seed, external_init=True)
        assert_matches_oracle(runner16.run(loop).y, loop)

    @pytest.mark.parametrize(
        "schedule,chunk",
        [
            ("cyclic", 1),
            ("cyclic", 7),
            ("block", 1),
            ("dynamic", 1),
            ("dynamic", 5),
            ("guided", 2),
        ],
    )
    def test_every_schedule_kind(self, schedule, chunk):
        runner = PreprocessedDoacross(
            processors=8, schedule=schedule, chunk=chunk
        )
        loop = make_test_loop(n=120, m=2, l=6)
        assert_matches_oracle(runner.run(loop).y, loop)

    @pytest.mark.parametrize("p", [1, 2, 3, 16, 64])
    def test_any_processor_count(self, p):
        runner = PreprocessedDoacross(processors=p)
        loop = random_irregular_loop(60, seed=1)
        assert_matches_oracle(runner.run(loop).y, loop)

    def test_chain_loop(self, runner16):
        loop = chain_loop(200, 5)
        assert_matches_oracle(runner16.run(loop).y, loop)

    def test_empty_loop(self, runner16):
        loop = random_irregular_loop(0, seed=0)
        result = runner16.run(loop)
        np.testing.assert_allclose(result.y, loop.y0)


class TestPhaseStructure:
    def test_three_phases_present(self, runner16, small_test_loop):
        result = runner16.run(small_test_loop)
        assert [p.name for p in result.phases] == [
            "inspector",
            "executor",
            "postprocessor",
        ]

    def test_breakdown_sums_to_total(self, runner16, small_test_loop):
        result = runner16.run(small_test_loop)
        assert result.breakdown.total == result.total_cycles
        assert result.breakdown.barriers == 3 * CostModel().barrier(16)

    def test_inspector_and_post_cost_scale_with_n(self):
        cm = CostModel()
        runner = PreprocessedDoacross(processors=4)
        loop = make_test_loop(n=400, m=1, l=3)
        result = runner.run(loop)
        assert result.breakdown.inspector == 100 * cm.pre_iter
        assert result.breakdown.postprocessor == 100 * cm.post_iter

    def test_all_iterations_executed_once(self, runner16, small_test_loop):
        result = runner16.run(small_test_loop)
        executor = next(p for p in result.phases if p.name == "executor")
        assert executor.total_iterations == small_test_loop.n

    def test_wait_cycles_zero_without_dependencies(self, runner16):
        loop = make_test_loop(n=300, m=2, l=7)  # odd L: no dependencies
        assert runner16.run(loop).wait_cycles == 0

    def test_wait_cycles_positive_with_tight_chain(self, runner16):
        loop = make_test_loop(n=300, m=1, l=4)  # distance-1 chain
        assert runner16.run(loop).wait_cycles > 0

    def test_flags_set_once_per_iteration(self, runner16, small_test_loop):
        result = runner16.run(small_test_loop)
        executor = next(p for p in result.phases if p.name == "executor")
        assert sum(p.flag_sets for p in executor.processors) == (
            small_test_loop.n
        )


class TestDeterminism:
    def test_identical_runs_identical_cycles(self, small_test_loop):
        a = PreprocessedDoacross(processors=16).run(small_test_loop)
        b = PreprocessedDoacross(processors=16).run(small_test_loop)
        assert a.total_cycles == b.total_cycles
        assert a.wait_cycles == b.wait_cycles
        assert a.breakdown.as_dict() == b.breakdown.as_dict()


class TestWorkspaceReuse:
    def test_postprocess_leaves_workspace_clean(self):
        ws = DoacrossWorkspace()
        runner = PreprocessedDoacross(processors=8, workspace=ws)
        runner.run(make_test_loop(n=100, m=2, l=6))
        assert ws.is_clean()

    def test_reuse_across_different_loops(self):
        """The paper's Figure-3 design point: one workspace, many loops."""
        ws = DoacrossWorkspace()
        runner = PreprocessedDoacross(processors=8, workspace=ws)
        for seed in range(6):
            loop = random_irregular_loop(80, seed=seed)
            assert_matches_oracle(runner.run(loop).y, loop)
            assert ws.is_clean()
        assert ws.invocations == 6

    def test_workspace_grows_to_largest_loop(self):
        ws = DoacrossWorkspace()
        runner = PreprocessedDoacross(processors=4, workspace=ws)
        runner.run(random_irregular_loop(20, seed=0))
        small_size = ws.y_size
        runner.run(random_irregular_loop(200, seed=1))
        assert ws.y_size > small_size


class TestEfficiencyPlateaus:
    """Figure 6's headline numbers, asserted analytically at modest n."""

    def test_m1_plateau_near_one_third(self):
        runner = PreprocessedDoacross(processors=16)
        result = runner.run(make_test_loop(n=8000, m=1, l=3))
        assert result.efficiency == pytest.approx(1 / 3, abs=0.04)

    def test_m5_plateau_near_half(self):
        runner = PreprocessedDoacross(processors=16)
        result = runner.run(make_test_loop(n=8000, m=5, l=3))
        assert result.efficiency == pytest.approx(0.49, abs=0.04)

    def test_dependences_reduce_efficiency(self):
        runner = PreprocessedDoacross(processors=16)
        free = runner.run(make_test_loop(n=2000, m=1, l=3))
        chained = runner.run(make_test_loop(n=2000, m=1, l=4))
        assert chained.efficiency < free.efficiency

    def test_longer_distances_help(self):
        runner = PreprocessedDoacross(processors=16)
        close = runner.run(make_test_loop(n=2000, m=1, l=4))
        far = runner.run(make_test_loop(n=2000, m=1, l=12))
        assert far.efficiency > close.efficiency

    def test_sequential_cycles_match_formula(self, runner16):
        loop = make_test_loop(n=500, m=2, l=5)
        result = runner16.run(loop)
        assert result.sequential_cycles == sequential_time(loop, CostModel())


class TestExecutionOrder:
    def test_valid_reorder_preserves_semantics(self, runner16):
        loop = make_test_loop(n=100, m=1, l=6)  # distance-2 chain
        # Evens before odds is legal here iff it keeps writers before
        # readers; distance-2 deps connect same-parity iterations in order.
        order = np.concatenate(
            [np.arange(0, 100, 2), np.arange(1, 100, 2)]
        )
        result = runner16.run(loop, order=order, order_label="evens-first")
        assert_matches_oracle(result.y, loop)
        assert result.order_label == "evens-first"

    def test_illegal_order_rejected_not_deadlocked(self, runner16):
        loop = make_test_loop(n=50, m=1, l=4)  # distance-1 chain
        with pytest.raises(ScheduleError, match="violates true dependence"):
            runner16.run(loop, order=np.arange(50)[::-1])

    def test_non_permutation_rejected(self, runner16, small_test_loop):
        bad = np.zeros(small_test_loop.n, dtype=np.int64)
        with pytest.raises(ScheduleError, match="not a permutation"):
            runner16.run(small_test_loop, order=bad)


class TestParallelize:
    def test_auto_linear_for_affine_writes(self):
        loop = make_test_loop(n=100, m=1, l=5)
        result, plan = parallelize(loop, processors=8)
        assert plan.strategy == "linear"
        assert_matches_oracle(result.y, loop)

    def test_auto_preprocessed_for_indirect_writes(self):
        loop = random_irregular_loop(80, seed=2)
        result, plan = parallelize(loop, processors=8)
        assert plan.strategy == "preprocessed"
        assert_matches_oracle(result.y, loop)

    def test_auto_classic_with_distance_hint(self):
        loop = chain_loop(100, 4)
        result, plan = parallelize(loop, processors=8, known_distance=4)
        assert plan.strategy == "classic"
        assert_matches_oracle(result.y, loop)

    def test_auto_doall_with_assertion(self):
        loop = random_irregular_loop(50, max_terms=0, seed=0)
        result, plan = parallelize(loop, processors=8, assert_independent=True)
        assert plan.strategy == "doall"
        assert_matches_oracle(result.y, loop)

    def test_plan_recorded_in_extras(self):
        loop = random_irregular_loop(30, seed=4)
        result, _ = parallelize(loop, processors=4)
        assert "plan" in result.extras
