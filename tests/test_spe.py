"""Tests for the paper's five test problems (appendix sizes)."""

from repro.sparse.spe import (
    PAPER_PROBLEM_SIZES,
    five_pt_problem,
    nine_pt_problem,
    paper_problems,
    seven_pt_problem,
    spe2,
    spe5,
)


class TestPaperSizes:
    """The appendix is explicit about each problem's equation count; these
    assert our generators hit them exactly."""

    def test_spe2_is_1080(self):
        assert spe2().n_rows == 1080 == PAPER_PROBLEM_SIZES["SPE2"]

    def test_spe5_is_3312(self):
        assert spe5().n_rows == 3312 == PAPER_PROBLEM_SIZES["SPE5"]

    def test_five_pt_is_3969(self):
        assert five_pt_problem().n_rows == 3969

    def test_seven_pt_is_8000(self):
        assert seven_pt_problem().n_rows == 8000

    def test_nine_pt_is_3969(self):
        assert nine_pt_problem().n_rows == 3969


class TestProblemSets:
    def test_full_set_names_and_sizes(self):
        probs = paper_problems()
        assert list(probs) == ["SPE2", "SPE5", "5-PT", "7-PT", "9-PT"]
        for name, A in probs.items():
            assert A.n_rows == PAPER_PROBLEM_SIZES[name]
            assert A.n_rows == A.n_cols

    def test_small_set_same_names_smaller_sizes(self):
        small = paper_problems(small=True)
        full_sizes = PAPER_PROBLEM_SIZES
        assert list(small) == list(full_sizes)
        for name, A in small.items():
            assert 0 < A.n_rows < full_sizes[name]

    def test_problems_deterministic(self):
        a = spe5()
        b = spe5()
        assert a.nnz == b.nnz
        assert (a.data == b.data).all()

    def test_all_have_full_diagonals(self):
        for name, A in paper_problems(small=True).items():
            diag = A.diagonal()
            assert (diag != 0).all(), name
