"""Tests for the 'Table 2' amortization experiment (reduced grids)."""

import pytest

from repro.bench.amortized_table import MODES, run_amortized_table


@pytest.fixture(scope="module")
def result():
    return run_amortized_table(small=True, instances=8)


class TestAmortizedTable:
    def test_all_problems_all_modes(self, result):
        assert len(result.rows) == 5
        for r in result.rows:
            for mode in MODES:
                assert r.metrics[mode] > 0

    def test_shape_check_passes(self, result):
        result.check_shape()

    def test_amortization_always_helps(self, result):
        for r in result.rows:
            assert r.metrics["amortized"] < r.metrics["full"]

    def test_amortization_composes_with_reordering(self, result):
        """With the (equal) reorder share cancelled, the combined mode's
        advantage over plain reordering is pure inspector amortization."""
        for r in result.rows:
            assert r.metrics["amort+reord"] < r.metrics["reordered"]

    def test_report_contains_gains(self, result):
        text = result.report()
        assert "Table 2" in text
        assert "gain" in text
        assert "5-PT" in text

    def test_shape_check_detects_inversion(self, result):
        r = result.rows[0]
        saved = r.metrics["amort+reord"]
        r.metrics["amort+reord"] = r.metrics["full"] * 2
        with pytest.raises(AssertionError):
            result.check_shape()
        r.metrics["amort+reord"] = saved

    def test_main_runs(self, capsys):
        from repro.bench.amortized_table import main

        assert main(["--small", "4"]) == 0
        assert "shape check: PASS" in capsys.readouterr().out
