"""Tests for the dependence DAG (CSR adjacency)."""

import numpy as np
import pytest

from repro.graph.depgraph import DependenceGraph
from repro.ir.analysis import dependence_pairs
from repro.workloads.synthetic import chain_loop, random_irregular_loop


class TestConstruction:
    def test_from_edges(self):
        g = DependenceGraph(4, np.array([[0, 1], [0, 3], [1, 3]]))
        np.testing.assert_array_equal(g.successors(0), [1, 3])
        np.testing.assert_array_equal(g.successors(1), [3])
        np.testing.assert_array_equal(g.successors(2), [])
        np.testing.assert_array_equal(g.predecessors(3), [0, 1])
        assert g.edge_count == 3

    def test_rejects_backward_edges(self):
        with pytest.raises(ValueError, match="writer < reader"):
            DependenceGraph(3, np.array([[2, 1]]))

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            DependenceGraph(3, np.array([[1, 1]]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DependenceGraph(3, np.array([[0, 5]]))

    def test_empty_graph(self):
        g = DependenceGraph(5, np.empty((0, 2), dtype=np.int64))
        assert g.edge_count == 0
        np.testing.assert_array_equal(g.sources(), np.arange(5))

    def test_from_loop_matches_analysis(self):
        loop = random_irregular_loop(80, seed=4)
        g = DependenceGraph.from_loop(loop)
        pairs = dependence_pairs(loop)
        rebuilt = sorted(
            (int(w), int(r))
            for w in range(g.n)
            for r in g.successors(w)
        )
        assert rebuilt == sorted(map(tuple, pairs.tolist()))


class TestQueries:
    def test_degrees(self):
        g = DependenceGraph(4, np.array([[0, 1], [0, 2], [1, 2]]))
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 2, 0])
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 0, 0])

    def test_sources(self):
        g = DependenceGraph(4, np.array([[0, 1], [2, 3]]))
        np.testing.assert_array_equal(g.sources(), [0, 2])

    def test_chain_loop_graph(self):
        g = DependenceGraph.from_loop(chain_loop(10, 3))
        assert g.edge_count == 7
        for r in range(3, 10):
            np.testing.assert_array_equal(g.predecessors(r), [r - 3])

    def test_brute_force_equivalence(self):
        """CSR adjacency vs a plain dict-of-sets build."""
        loop = random_irregular_loop(60, seed=12)
        pairs = dependence_pairs(loop)
        succ = {}
        for w, r in pairs:
            succ.setdefault(int(w), set()).add(int(r))
        g = DependenceGraph.from_loop(loop)
        for w in range(g.n):
            assert set(g.successors(w).tolist()) == succ.get(w, set())
