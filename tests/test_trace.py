"""Tests for execution tracing: segment accounting and Gantt rendering."""

import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.machine.costs import CostModel
from repro.machine.engine import Engine
from repro.machine.flags import FlagStore
from repro.machine.ops import Compute, SetFlag, UseResource, WaitFlag
from repro.machine.resource import SerialResource
from repro.machine.trace import SEG_COMPUTE, SEG_QUEUE, SEG_WAIT, Segment, Tracer
from repro.workloads.testloop import make_test_loop


class TestTracerBasics:
    def test_zero_length_dropped(self):
        t = Tracer()
        t.record(0, 5, 5, SEG_COMPUTE)
        assert t.segments == []

    def test_adjacent_same_kind_merged(self):
        t = Tracer()
        t.record(0, 0, 5, SEG_COMPUTE)
        t.record(0, 5, 9, SEG_COMPUTE)
        assert t.segments == [Segment(0, 0, 9, SEG_COMPUTE)]

    def test_different_kind_not_merged(self):
        t = Tracer()
        t.record(0, 0, 5, SEG_COMPUTE)
        t.record(0, 5, 9, SEG_WAIT)
        assert len(t.segments) == 2

    def test_totals_and_span(self):
        t = Tracer()
        t.record(0, 0, 5, SEG_COMPUTE)
        t.record(1, 2, 10, SEG_WAIT)
        assert t.total(SEG_COMPUTE) == 5
        assert t.total(SEG_WAIT) == 8
        assert t.total(SEG_WAIT, proc=0) == 0
        assert t.span() == 10

    def test_overlap_validation(self):
        t = Tracer()
        t.record(0, 0, 5, SEG_COMPUTE)
        t.record(0, 3, 7, SEG_WAIT)
        with pytest.raises(AssertionError, match="overlaps"):
            t.validate_non_overlapping()


class TestEngineTracing:
    def _run(self):
        tracer = Tracer()
        flags = FlagStore(1)
        engine = Engine(
            CostModel(),
            flags=flags,
            resources={0: SerialResource()},
            tracer=tracer,
        )

        def setter(st):
            yield Compute(30)
            yield SetFlag(0)

        def waiter(st):
            yield Compute(5)
            yield WaitFlag(0)
            yield UseResource(0, 4)

        phase = engine.run("t", [setter, waiter])
        return tracer, phase

    def test_segments_match_stats_exactly(self):
        tracer, phase = self._run()
        for p in phase.processors:
            assert tracer.total(SEG_COMPUTE, proc=p.proc) == p.compute_cycles
            assert tracer.total(SEG_WAIT, proc=p.proc) == p.wait_cycles
            assert (
                tracer.total(SEG_QUEUE, proc=p.proc)
                == p.resource_wait_cycles
            )

    def test_segments_non_overlapping(self):
        tracer, _ = self._run()
        tracer.validate_non_overlapping()

    def test_queue_segment_recorded(self):
        tracer = Tracer()
        res = SerialResource()
        engine = Engine(CostModel(), resources={0: res}, tracer=tracer)

        def task(st):
            yield UseResource(0, 10)

        engine.run("t", [task, task])
        assert tracer.total(SEG_QUEUE) == 10


class TestDoacrossTracing:
    def test_trace_attached_on_request(self):
        runner = PreprocessedDoacross(processors=8)
        loop = make_test_loop(n=200, m=1, l=4)
        result = runner.run(loop, trace=True)
        tracer = result.extras["trace"]
        executor = next(p for p in result.phases if p.name == "executor")
        assert tracer.span() == executor.span
        assert tracer.total(SEG_WAIT) == executor.total_wait
        tracer.validate_non_overlapping()

    def test_no_trace_by_default(self):
        runner = PreprocessedDoacross(processors=4)
        result = runner.run(make_test_loop(n=50, m=1, l=3))
        assert "trace" not in result.extras

    def test_gantt_renders(self):
        runner = PreprocessedDoacross(processors=4)
        result = runner.run(make_test_loop(n=100, m=1, l=4), trace=True)
        chart = result.extras["trace"].gantt(width=60)
        assert "p0" in chart
        assert "#" in chart
        assert "." in chart  # tight chain: waits visible

    def test_empty_trace_gantt(self):
        assert Tracer().gantt() == "(empty trace)"

    def test_gantt_shows_queue_glyph(self):
        t = Tracer()
        t.record(0, 0, 50, SEG_QUEUE)
        t.record(0, 50, 100, SEG_COMPUTE)
        chart = t.gantt(width=20)
        assert "~" in chart
        assert "#" in chart

    def test_gantt_compute_wins_shared_columns(self):
        t = Tracer()
        t.record(0, 0, 1, SEG_WAIT)
        t.record(0, 1, 100, SEG_COMPUTE)
        # At width 10 the first column holds both; compute must win.
        row = t.gantt(width=10).splitlines()[1]
        assert "." not in row
