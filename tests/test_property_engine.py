"""Property-based tests of the discrete-event engine itself."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costs import CostModel
from repro.machine.engine import Engine
from repro.machine.flags import FlagStore
from repro.machine.ops import Compute, SetFlag, UseResource, WaitFlag
from repro.machine.resource import SerialResource


def build_workload(n_procs, n_flags, script_seed):
    """A random but causally-safe workload: processor p sets flags in block
    p and may wait on flags of blocks < p (set by construction, eventually)."""
    rng = np.random.default_rng(script_seed)
    per_proc = []
    for p in range(n_procs):
        steps = []
        for f in range(n_flags):
            steps.append(("compute", int(rng.integers(1, 20))))
            if p > 0 and rng.random() < 0.5:
                steps.append(("wait", (p - 1) * n_flags + f))
            steps.append(("set", p * n_flags + f))
        per_proc.append(steps)
    return per_proc


def run_workload(per_proc, n_flags_total):
    flags = FlagStore(n_flags_total)
    engine = Engine(CostModel(), flags=flags, resources={0: SerialResource()})

    def factory(steps):
        def task(st):
            for kind, arg in steps:
                if kind == "compute":
                    yield Compute(arg)
                elif kind == "wait":
                    yield WaitFlag(arg)
                elif kind == "set":
                    yield SetFlag(arg)
                elif kind == "res":
                    yield UseResource(0, arg)

        return task

    return engine.run("t", [factory(s) for s in per_proc])


@given(
    n_procs=st.integers(1, 6),
    n_flags=st.integers(1, 8),
    seed=st.integers(0, 5000),
)
@settings(max_examples=80, deadline=None)
def test_engine_deterministic(n_procs, n_flags, seed):
    per_proc = build_workload(n_procs, n_flags, seed)
    a = run_workload(per_proc, n_procs * n_flags)
    b = run_workload(per_proc, n_procs * n_flags)
    assert a.span == b.span
    for pa, pb in zip(a.processors, b.processors):
        assert pa.finish_time == pb.finish_time
        assert pa.compute_cycles == pb.compute_cycles
        assert pa.wait_cycles == pb.wait_cycles


@given(
    n_procs=st.integers(1, 6),
    n_flags=st.integers(1, 8),
    seed=st.integers(0, 5000),
)
@settings(max_examples=80, deadline=None)
def test_engine_time_conservation(n_procs, n_flags, seed):
    """Each processor's finish time equals its accounted cycles: nothing is
    lost or double-counted."""
    per_proc = build_workload(n_procs, n_flags, seed)
    phase = run_workload(per_proc, n_procs * n_flags)
    for p in phase.processors:
        assert p.finish_time == p.total_cycles


@given(
    n_procs=st.integers(2, 6),
    holds=st.lists(st.integers(1, 10), min_size=2, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_resource_serialization_conserves_busy_time(n_procs, holds):
    """Total span of pure-resource workloads equals the sum of holds (a
    single-server queue can't parallelize)."""
    res = SerialResource()
    engine = Engine(CostModel(), resources={0: res})

    assignments = [holds[i::n_procs] for i in range(n_procs)]

    def factory(my_holds):
        def task(st):
            for h in my_holds:
                yield UseResource(0, h)

        return task

    phase = engine.run("t", [factory(a) for a in assignments])
    assert phase.span == sum(holds)
    assert res.busy_cycles == sum(holds)
