"""Tests for the ablation experiments: each knob moves the metric the way
its design rationale predicts."""

import pytest

from repro.bench.ablations import (
    ablation_amortization,
    ablation_bus,
    ablation_coherence,
    ablation_linear,
    ablation_processors,
    ablation_processors_testloop,
    ablation_scheduling,
    ablation_stripmine,
)


class TestScheduling:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_scheduling(n=2000, m=1, l=4)

    def test_covers_all_kinds(self, rows):
        kinds = {r.params["kind"] for r in rows}
        assert kinds == {"cyclic", "block", "dynamic", "guided"}

    def test_chunk1_cyclic_beats_chunked_on_tight_chains(self, rows):
        by = {r.label: r for r in rows}
        assert (
            by["cyclic/chunk=1"].result.total_cycles
            < by["cyclic/chunk=64"].result.total_cycles
        )

    def test_block_schedule_worst_for_chains(self, rows):
        """Contiguous blocks serialize distance-1 chains within a
        processor: block must lose to cyclic chunk-1."""
        by = {r.label: r for r in rows}
        assert (
            by["block/chunk=1"].result.total_cycles
            > by["cyclic/chunk=1"].result.total_cycles
        )


class TestStripmine:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_stripmine(n=2000, blocks=(100, 500, 2000))

    def test_smaller_blocks_use_less_scratch(self, rows):
        blocked = [r for r in rows if r.params["block"]]
        scratch = [r.metrics["scratch_elements"] for r in blocked]
        assert scratch == sorted(scratch)

    def test_unblocked_baseline_included(self, rows):
        assert rows[0].label == "unblocked"


class TestLinear:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_linear(n=2000)

    def test_linear_has_no_inspector(self, rows):
        for r in rows:
            if r.params["linear"]:
                assert r.metrics["inspector_cycles"] == 0
            else:
                assert r.metrics["inspector_cycles"] > 0

    def test_linear_strictly_faster(self, rows):
        by_m = {}
        for r in rows:
            by_m.setdefault(r.params["m"], {})[r.params["linear"]] = r
        for m, pair in by_m.items():
            assert (
                pair[True].result.total_cycles
                < pair[False].result.total_cycles
            )


class TestProcessors:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_processors(
            problem="5-PT", processor_counts=(1, 4, 16), small=True
        )

    def test_speedup_grows_with_processors(self, rows):
        speedups = [r.metrics["reordered_speedup"] for r in rows]
        assert speedups == sorted(speedups)

    def test_single_processor_near_unity_speedup(self, rows):
        # One processor still pays inspector/checks/postprocessing: the
        # "speedup" must be below 1 (pure overhead measurement).
        assert rows[0].metrics["plain_speedup"] < 1.0

    def test_efficiency_degrades_with_processors(self, rows):
        effs = [r.metrics["reordered_efficiency"] for r in rows]
        assert effs == sorted(effs, reverse=True)


class TestBus:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_bus(n=1000, bus_costs=(0, 2, 4))

    def test_contention_slows_execution_monotonically(self, rows):
        totals = [r.result.total_cycles for r in rows]
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]


class TestProcessorSweepTestloop:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_processors_testloop(
            n=1500, processor_counts=(1, 8, 16), ls=(3, 4)
        )

    def test_dependence_free_scales(self, rows):
        free = {
            r.params["processors"]: r.result.speedup
            for r in rows
            if r.params["l"] == 3
        }
        assert free[16] > 1.7 * free[8] > 3 * free[1]

    def test_chain_saturates(self, rows):
        """A distance-1 chain's speedup barely moves from 8 to 16
        processors — the chain, not the machine, is the limit."""
        chained = {
            r.params["processors"]: r.result.speedup
            for r in rows
            if r.params["l"] == 4
        }
        assert chained[16] < chained[8] * 1.15


class TestCoherence:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_coherence(n=800, miss_costs=(0, 10, 200))

    def test_cyclic_pays_per_dependence(self, rows):
        by = {r.label: r for r in rows}
        assert by["cyclic/miss=10"].metrics["misses"] == 799

    def test_block_pays_only_boundaries(self, rows):
        by = {r.label: r for r in rows}
        assert by["block/miss=10"].metrics["misses"] < 20

    def test_crossover_with_miss_cost(self, rows):
        by = {r.label: r for r in rows}
        assert (
            by["cyclic/miss=0"].result.total_cycles
            < by["block/miss=0"].result.total_cycles
        )
        assert (
            by["block/miss=200"].result.total_cycles
            < by["cyclic/miss=200"].result.total_cycles
        )


class TestAmortization:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_amortization(n=800, instance_counts=(1, 4, 16))

    def test_per_instance_cost_monotone_down(self, rows):
        costs = [r.metrics["per_instance_cycles"] for r in rows]
        assert costs == sorted(costs, reverse=True)

    def test_gain_exceeds_one_and_grows(self, rows):
        gains = [r.metrics["gain_vs_full"] for r in rows]
        assert gains == sorted(gains)
        assert gains[-1] > 1.1
