"""Property-based tests: the source front end agrees with direct
construction across random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.frontend import loop_from_source
from repro.ir.subscript import AffineSubscript, IndirectSubscript


@given(
    n=st.integers(1, 40),
    m=st.integers(1, 4),
    seed=st.integers(0, 5000),
    affine=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_frontend_matches_direct_construction(n, m, seed, affine):
    """Random uniform-template loops: the parsed loop's structure and
    semantics equal the directly constructed one."""
    from repro.ir.accesses import ReadTable
    from repro.ir.loop import IrregularLoop

    rng = np.random.default_rng(seed)
    y_size = 2 * n + 8
    if affine:
        write_sub = AffineSubscript(2, 3)
        write_source = "2*i + 3"
        write_vec = write_sub.materialize(n)
    else:
        write_vec = rng.permutation(y_size)[:n]
        write_sub = IndirectSubscript(write_vec)
        write_source = "a[i]"
    reads = rng.integers(0, y_size, size=(n, m))
    coeffs = rng.uniform(-0.2, 0.2, size=m)
    y0 = rng.normal(size=y_size)

    direct = IrregularLoop(
        n=n,
        y_size=y_size,
        write_subscript=write_sub,
        reads=ReadTable.from_uniform(
            reads, np.broadcast_to(coeffs, (n, m)).copy()
        ),
        y0=y0,
    )

    source = f"""
    for i in range({n}):
        for j in range({m}):
            y[{write_source}] += w[j] * y[r[{m}*i + j]]
    """
    parsed = loop_from_source(
        source,
        arrays={"a": write_vec, "w": coeffs, "r": reads.reshape(-1)},
        y0=y0,
        y_size=y_size,
    )
    np.testing.assert_array_equal(parsed.write, direct.write)
    np.testing.assert_array_equal(parsed.reads.index, direct.reads.index)
    np.testing.assert_allclose(parsed.reads.coeff, direct.reads.coeff)
    np.testing.assert_allclose(
        parsed.run_sequential(), direct.run_sequential(), rtol=1e-12
    )
    # Affine sources must be detected; indirect sources are detected as
    # affine exactly when their values happen to lie on a line (always
    # true for n <= 2 — any two points define one).
    if affine:
        assert isinstance(parsed.write_subscript, AffineSubscript)
    else:
        d0 = int(write_vec[0])
        c0 = int(write_vec[1] - write_vec[0]) if n > 1 else 1
        accidentally_affine = np.array_equal(
            c0 * np.arange(n) + d0, write_vec
        )
        assert (
            isinstance(parsed.write_subscript, AffineSubscript)
            == accidentally_affine
        )


@given(n=st.integers(1, 40), seed=st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_frontend_csr_template_matches_read_table(n, seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 3, size=n)
    ptr = np.zeros(n + 1, dtype=np.int64)
    ptr[1:] = np.cumsum(counts)
    total = int(ptr[-1])
    index = rng.integers(0, n, size=total)
    coeff = rng.uniform(-0.3, 0.3, size=total)
    rhs = rng.normal(size=n)

    source = f"""
    for i in range({n}):
        y[i] = rhs[i]
        for k in range(ptr[i], ptr[i + 1]):
            y[i] += c[k] * y[idx[k]]
    """
    parsed = loop_from_source(
        source,
        arrays={"rhs": rhs, "ptr": ptr, "c": coeff, "idx": index},
        y_size=n,
    )
    np.testing.assert_array_equal(parsed.reads.ptr, ptr)
    np.testing.assert_array_equal(parsed.reads.index, index)
    np.testing.assert_allclose(parsed.reads.coeff, coeff)
    assert parsed.init_kind == "external"
    np.testing.assert_allclose(parsed.init_values, rhs)
