"""Tests for the CSR-style read-term tables."""

import numpy as np
import pytest

from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadTable


class TestConstruction:
    def test_from_lists(self):
        t = ReadTable.from_lists([[(3, 1.5)], [], [(0, -2.0), (1, 0.5)]])
        assert t.n == 3
        assert t.total_terms == 3
        np.testing.assert_array_equal(t.ptr, [0, 1, 1, 3])
        np.testing.assert_array_equal(t.index, [3, 0, 1])
        np.testing.assert_allclose(t.coeff, [1.5, -2.0, 0.5])

    def test_from_uniform(self):
        idx = np.array([[0, 1], [2, 3], [4, 5]])
        coeff = np.ones((3, 2))
        t = ReadTable.from_uniform(idx, coeff)
        assert t.n == 3
        assert t.term_count(1) == 2
        np.testing.assert_array_equal(t.index, [0, 1, 2, 3, 4, 5])

    def test_from_uniform_shape_mismatch(self):
        with pytest.raises(InvalidLoopError):
            ReadTable.from_uniform(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_loop(self):
        t = ReadTable.from_lists([])
        assert t.n == 0
        assert t.total_terms == 0


class TestValidation:
    def test_ptr_must_start_at_zero(self):
        with pytest.raises(InvalidLoopError, match=r"ptr\[0\]"):
            ReadTable([1, 2], [0], [1.0])

    def test_ptr_end_must_match_terms(self):
        with pytest.raises(InvalidLoopError):
            ReadTable([0, 2], [0], [1.0])

    def test_ptr_monotone(self):
        with pytest.raises(InvalidLoopError, match="non-decreasing"):
            ReadTable([0, 2, 1, 3], [0, 1, 2], [1.0, 1.0, 1.0])

    def test_index_coeff_length_mismatch(self):
        with pytest.raises(InvalidLoopError):
            ReadTable([0, 2], [0, 1], [1.0])

    def test_empty_ptr_rejected(self):
        with pytest.raises(InvalidLoopError):
            ReadTable([], [], [])


class TestQueries:
    def _table(self):
        return ReadTable.from_lists(
            [[(0, 1.0), (5, 2.0)], [(3, -1.0)], [], [(2, 4.0)]]
        )

    def test_terms_of(self):
        idx, coeff = self._table().terms_of(0)
        np.testing.assert_array_equal(idx, [0, 5])
        np.testing.assert_allclose(coeff, [1.0, 2.0])

    def test_term_counts(self):
        np.testing.assert_array_equal(
            self._table().term_counts(), [2, 1, 0, 1]
        )

    def test_iteration_of_term(self):
        np.testing.assert_array_equal(
            self._table().iteration_of_term(), [0, 0, 1, 3]
        )

    def test_check_bounds_ok(self):
        self._table().check_bounds(6)

    def test_check_bounds_too_small(self):
        with pytest.raises(InvalidLoopError, match="out of range"):
            self._table().check_bounds(5)

    def test_check_bounds_negative(self):
        t = ReadTable.from_lists([[(-1, 1.0)]])
        with pytest.raises(InvalidLoopError):
            t.check_bounds(10)

    def test_check_bounds_empty_ok(self):
        ReadTable.from_lists([[], []]).check_bounds(0)
