"""``lint --fix``: the LEGACY-KWARGS rewriter and its CLI surface."""

import ast

import pytest

from repro.__main__ import main as repro_main
from repro.lint.fixes import _PLANSPEC_IMPORT, fix_legacy_kwargs

SIMPLE = '''\
import repro

result = repro.parallelize(loop, backend="threaded", chunk=4, observe=True)
'''


# ----------------------------------------------------------------------
# The rewriter
# ----------------------------------------------------------------------
def test_fix_folds_deprecated_kwargs_into_planspec():
    result = fix_legacy_kwargs("demo.py", SIMPLE)
    assert result.changed
    assert result.fixed_calls == 1
    assert result.skipped == []
    fixed = result.fixed_source
    assert "spec=PlanSpec(chunk=4, observe=True)" in fixed
    assert 'backend="threaded"' in fixed or "backend='threaded'" in fixed
    assert "chunk=4, observe=True)" in fixed
    assert _PLANSPEC_IMPORT in fixed
    ast.parse(fixed)  # the rewrite must stay valid Python


def test_fix_import_goes_after_the_import_block():
    fixed = fix_legacy_kwargs("demo.py", SIMPLE).fixed_source
    lines = fixed.splitlines()
    assert lines[0] == "import repro"
    assert lines[1] == _PLANSPEC_IMPORT


def test_fix_skips_files_that_already_name_planspec():
    src = (
        "from repro.passes.spec import PlanSpec\n"
        "r = parallelize(loop, chunk=2)\n"
    )
    fixed = fix_legacy_kwargs("demo.py", src).fixed_source
    assert fixed.count("import PlanSpec") == 1
    assert "spec=PlanSpec(chunk=2)" in fixed


def test_fix_leaves_spec_calls_alone_with_a_note():
    src = "r = parallelize(loop, chunk=2, spec=PlanSpec())\n"
    result = fix_legacy_kwargs("demo.py", src)
    assert not result.changed
    assert result.fixed_calls == 0
    assert len(result.skipped) == 1
    assert "merge" in result.skipped[0]


def test_fix_returns_syntax_error_files_unchanged():
    src = "def broken(:\n"
    result = fix_legacy_kwargs("demo.py", src)
    assert not result.changed
    assert result.fixed_calls == 0


def test_fix_ignores_clean_files_and_unknown_calls():
    src = "r = parallelize(loop, backend='threaded')\nother(chunk=3)\n"
    assert not fix_legacy_kwargs("demo.py", src).changed


def test_fix_handles_nested_offending_calls():
    src = "r = parallelize(make_runner('threaded', observe=True), chunk=2)\n"
    result = fix_legacy_kwargs("demo.py", src)
    assert result.fixed_calls == 2
    fixed = result.fixed_source
    # The inner call's fold must survive the outer call's unparse.
    assert "make_runner('threaded', spec=PlanSpec(observe=True))" in fixed
    assert "spec=PlanSpec(chunk=2)" in fixed
    ast.parse(fixed)


def test_fix_handles_multiple_sites_and_method_calls():
    src = (
        "a = repro.parallelize(l1, chunk=1)\n"
        "b = make_runner('simulated', validate='static')\n"
    )
    result = fix_legacy_kwargs("demo.py", src)
    assert result.fixed_calls == 2
    fixed = result.fixed_source
    assert "spec=PlanSpec(chunk=1)" in fixed
    assert "spec=PlanSpec(validate='static')" in fixed


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------
@pytest.fixture
def offender(tmp_path):
    path = tmp_path / "legacy.py"
    path.write_text(SIMPLE)
    return path


def test_cli_fix_dry_run_prints_a_diff_and_writes_nothing(
    offender, capsys
):
    code = repro_main(["lint", str(offender), "--fix"])
    out = capsys.readouterr().out
    assert code == 0
    assert "--- " in out and "+++ " in out  # unified diff
    assert "+" in out and "spec=PlanSpec" in out
    assert "dry run" in out
    assert offender.read_text() == SIMPLE  # untouched


def test_cli_fix_write_applies_in_place(offender, capsys):
    code = repro_main(["lint", str(offender), "--fix", "--write"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fixed 1 file(s)" in out
    rewritten = offender.read_text()
    assert "spec=PlanSpec(chunk=4, observe=True)" in rewritten
    assert _PLANSPEC_IMPORT in rewritten
    # A second pass finds nothing left to fix.
    repro_main(["lint", str(offender), "--fix", "--write"])
    assert offender.read_text() == rewritten


def test_cli_fix_reports_skipped_spec_calls(tmp_path, capsys):
    path = tmp_path / "mixed.py"
    path.write_text("r = parallelize(loop, chunk=2, spec=PlanSpec())\n")
    code = repro_main(["lint", str(path), "--fix"])
    out = capsys.readouterr().out
    assert code == 0
    assert "already passes spec=" in out


def test_cli_write_without_fix_is_a_usage_error(offender, capsys):
    code = repro_main(["lint", str(offender), "--write"])
    assert code == 2
    assert "--write" in capsys.readouterr().err
