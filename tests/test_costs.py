"""Tests for the cost model and work profiles."""

import pytest

from repro.errors import CalibrationError
from repro.machine.costs import CostModel, WorkProfile


class TestWorkProfile:
    def test_defaults(self):
        w = WorkProfile()
        assert w.overhead == 4
        assert w.term == w.term_setup + w.term_consume == 6

    def test_rejects_negative(self):
        with pytest.raises(CalibrationError):
            WorkProfile(overhead=-1)
        with pytest.raises(CalibrationError):
            WorkProfile(term_setup=-2)

    def test_rejects_non_int(self):
        with pytest.raises(CalibrationError):
            WorkProfile(term_consume=1.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            WorkProfile().overhead = 3


class TestCostModel:
    def test_defaults_valid(self):
        CostModel()  # must not raise

    def test_rejects_negative_field(self):
        with pytest.raises(CalibrationError):
            CostModel(dep_check=-1)

    def test_rejects_float_field(self):
        with pytest.raises(CalibrationError):
            CostModel(pre_iter=2.5)

    def test_rejects_zero_cycles_per_us(self):
        with pytest.raises(CalibrationError):
            CostModel(cycles_per_us=0)

    def test_seq_iteration_formula(self):
        cm = CostModel()
        w = cm.work
        assert cm.seq_iteration(3) == w.overhead + 3 * w.term

    def test_seq_iteration_with_profile(self):
        cm = CostModel()
        p = WorkProfile(overhead=10, term_setup=7, term_consume=3)
        assert cm.seq_iteration(2, p) == 10 + 2 * 10

    def test_exec_iteration_base(self):
        cm = CostModel()
        w = cm.work
        expected = cm.exec_iter_overhead + w.overhead + 2 * (
            w.term + cm.dep_check
        )
        assert cm.exec_iteration_base(2) == expected

    def test_barrier_scales_with_processors(self):
        cm = CostModel()
        assert cm.barrier(16) == cm.barrier_base + 16 * cm.barrier_per_proc
        assert cm.barrier(1) < cm.barrier(32)

    def test_calibrated_plateaus_match_paper(self):
        """DESIGN.md §7: the defaults put the Figure-6 zero-dependence
        plateaus at the paper's ≈0.33 (M=1) and ≈0.49 (M=5)."""
        cm = CostModel()
        assert cm.overhead_plateau(1) == pytest.approx(10 / 30)
        assert cm.overhead_plateau(5) == pytest.approx(34 / 70)

    def test_plateau_increases_with_terms(self):
        cm = CostModel()
        values = [cm.overhead_plateau(t) for t in range(1, 8)]
        assert values == sorted(values)

    def test_cycles_to_ms(self):
        cm = CostModel(cycles_per_us=10)
        assert cm.cycles_to_ms(10_000) == pytest.approx(1.0)

    def test_scaled_returns_modified_copy(self):
        cm = CostModel()
        cm2 = cm.scaled(dep_check=9)
        assert cm2.dep_check == 9
        assert cm.dep_check == 4
        assert cm2.pre_iter == cm.pre_iter

    def test_effective_work_prefers_profile(self):
        cm = CostModel()
        p = WorkProfile(overhead=99)
        assert cm.effective_work(p) is p
        assert cm.effective_work(None) is cm.work
