"""Tests for the closed-form performance model against the simulator."""

import pytest

from repro.bench.model import (
    ModelPrediction,
    predict_chain_loop,
    predict_dependence_free,
    predict_figure4,
    relative_error,
)
from repro.core.doacross import PreprocessedDoacross
from repro.machine.costs import CostModel
from repro.workloads.synthetic import chain_loop
from repro.workloads.testloop import make_test_loop


@pytest.fixture(scope="module")
def runner():
    return PreprocessedDoacross(processors=16)


class TestDependenceFree:
    def test_exact_for_odd_l(self, runner):
        """No stochastic effects anywhere: the throughput regime is exact."""
        for m in (1, 3, 5):
            loop = make_test_loop(n=3200, m=m, l=3)
            sim = runner.run(loop)
            pred = predict_dependence_free(3200, m, 16)
            assert pred.total == sim.total_cycles
            assert pred.regime == "throughput-bound"

    def test_efficiency_matches_plateau(self):
        pred = predict_dependence_free(100_000, 1, 16)
        assert pred.efficiency == pytest.approx(
            CostModel().overhead_plateau(1), abs=0.01
        )


class TestFigure4:
    @pytest.mark.parametrize("m", [1, 2, 5])
    @pytest.mark.parametrize("l", [4, 6, 8, 10, 12, 14])
    def test_within_seven_percent(self, runner, m, l):
        loop = make_test_loop(n=4000, m=m, l=l)
        sim = runner.run(loop)
        pred = predict_figure4(4000, m, l, 16)
        assert relative_error(pred, sim) < 0.07

    def test_regime_identification(self):
        assert predict_figure4(4000, 1, 3, 16).regime == "throughput-bound"
        assert predict_figure4(4000, 1, 4, 16).regime == "chain-bound"

    def test_predicts_monotone_even_l_improvement(self):
        totals = [
            predict_figure4(4000, 1, l, 16).total for l in (4, 6, 8, 10, 12)
        ]
        assert totals == sorted(totals, reverse=True)


class TestChainLoop:
    @pytest.mark.parametrize("d", [1, 2, 4, 8, 16])
    def test_within_six_percent(self, runner, d):
        sim = runner.run(chain_loop(3000, d))
        pred = predict_chain_loop(3000, d, 16)
        assert relative_error(pred, sim) < 0.06

    def test_sequential_correction_for_leading_iterations(self):
        pred = predict_chain_loop(100, 30, 4)
        cm = CostModel()
        assert pred.sequential == 100 * cm.work.overhead + 70 * cm.work.term


class TestPredictionRecord:
    def test_total_composition(self):
        pred = ModelPrediction(
            n=10,
            processors=2,
            inspector=5,
            executor_throughput=50,
            executor_chain=70,
            postprocessor=10,
            barriers=9,
            sequential=100,
        )
        assert pred.executor == 70
        assert pred.total == 94
        assert pred.regime == "chain-bound"
        assert pred.efficiency == pytest.approx(100 / (2 * 94))

    def test_relative_error_zero_totals(self):
        import numpy as np

        from repro.core.results import RunResult

        pred = predict_dependence_free(0, 1, 2)
        result = RunResult(
            loop_name="x",
            strategy="s",
            processors=2,
            y=np.zeros(1),
            total_cycles=0,
            sequential_cycles=0,
            cost_model=CostModel(),
        )
        # Prediction has barrier cycles even at n=0; that's "infinitely"
        # wrong relative to a zero-cycle run.
        assert relative_error(pred, result) == float("inf")
