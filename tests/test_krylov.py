"""Tests for preconditioned CG and the preconditioner cost accounting."""

import numpy as np
import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.errors import MatrixFormatError
from repro.machine.costs import CostModel
from repro.sparse.csr import CSRMatrix
from repro.sparse.krylov import (
    IluPreconditioner,
    JacobiPreconditioner,
    cg,
)
from repro.sparse.stencils import five_point, nine_point


@pytest.fixture(scope="module")
def system():
    A = five_point(12, 12)
    rng = np.random.default_rng(5)
    b = rng.normal(size=A.n_rows)
    x_ref = np.linalg.solve(A.to_dense(), b)
    return A, b, x_ref


class TestPlainCG:
    def test_solves_spd_system(self, system):
        A, b, x_ref = system
        x, report = cg(A, b, tol=1e-10)
        assert report.converged
        np.testing.assert_allclose(x, x_ref, rtol=1e-6, atol=1e-8)

    def test_residuals_reach_tolerance(self, system):
        A, b, _ = system
        _, report = cg(A, b, tol=1e-10)
        assert report.residuals[-1] <= 1e-10
        assert report.residuals[0] > report.residuals[-1]

    def test_zero_rhs_immediate(self, system):
        A, _, _ = system
        x, report = cg(A, np.zeros(A.n_rows))
        assert report.converged
        assert report.iterations == 0
        np.testing.assert_allclose(x, 0.0)

    def test_maxiter_caps(self, system):
        A, b, _ = system
        _, report = cg(A, b, tol=1e-14, maxiter=3)
        assert not report.converged
        assert report.iterations == 3

    def test_non_spd_detected(self):
        dense = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(MatrixFormatError, match="SPD"):
            cg(CSRMatrix.from_dense(dense), np.array([1.0, 1.0]))

    def test_shape_validation(self, system):
        A, _, _ = system
        with pytest.raises(MatrixFormatError):
            cg(A, np.ones(3))


class TestPreconditioners:
    def test_jacobi_preserves_solution(self, system):
        A, b, x_ref = system
        x, report = cg(A, b, preconditioner=JacobiPreconditioner(A), tol=1e-10)
        assert report.converged
        np.testing.assert_allclose(x, x_ref, rtol=1e-6, atol=1e-8)

    def test_ilu_preserves_solution(self, system):
        A, b, x_ref = system
        x, report = cg(A, b, preconditioner=IluPreconditioner(A), tol=1e-10)
        assert report.converged
        np.testing.assert_allclose(x, x_ref, rtol=1e-6, atol=1e-8)

    def test_ilu_cuts_iterations(self, system):
        """The reason anyone pays for triangular solves at all."""
        A, b, _ = system
        _, plain = cg(A, b, tol=1e-10)
        _, ilu = cg(A, b, preconditioner=IluPreconditioner(A), tol=1e-10)
        assert ilu.iterations < plain.iterations / 2

    def test_ilu_on_nine_point(self):
        A = nine_point(10, 10)
        b = np.ones(A.n_rows)
        x, report = cg(A, b, preconditioner=IluPreconditioner(A), tol=1e-9)
        assert report.converged
        np.testing.assert_allclose(A.matvec(x), b, atol=1e-7)

    def test_jacobi_rejects_zero_diagonal(self):
        dense = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(MatrixFormatError):
            JacobiPreconditioner(CSRMatrix.from_dense(dense))


class TestCycleAccounting:
    def test_trisolve_dominates_sequential_pcg(self, system):
        """The paper's motivating claim, as an assertion: triangular solves
        account for a large fraction of sequential PCG time."""
        A, b, _ = system
        _, report = cg(A, b, preconditioner=IluPreconditioner(A), tol=1e-10)
        assert report.precond_fraction > 0.4

    def test_parallel_preconditioner_changes_only_cycles(self, system):
        A, b, _ = system
        runner = Doconsider(doacross=PreprocessedDoacross(processors=16))
        seq_pc = IluPreconditioner(A)
        par_pc = IluPreconditioner(A, runner=runner)
        x_seq, rep_seq = cg(A, b, preconditioner=seq_pc, tol=1e-10)
        x_par, rep_par = cg(A, b, preconditioner=par_pc, tol=1e-10)
        np.testing.assert_allclose(x_seq, x_par, rtol=1e-12)
        assert rep_seq.iterations == rep_par.iterations
        assert rep_par.precond_cycles < rep_seq.precond_cycles

    def test_parallel_preconditioner_speeds_whole_solver(self, system):
        """The Amdahl payoff the paper is after."""
        A, b, _ = system
        runner = Doconsider(doacross=PreprocessedDoacross(processors=16))
        _, rep_seq = cg(A, b, preconditioner=IluPreconditioner(A), tol=1e-10)
        _, rep_par = cg(
            A, b, preconditioner=IluPreconditioner(A, runner=runner), tol=1e-10
        )
        assert rep_par.total_cycles < rep_seq.total_cycles

    def test_breakdown_sums(self, system):
        A, b, _ = system
        _, report = cg(A, b, preconditioner=JacobiPreconditioner(A), tol=1e-8)
        assert report.total_cycles == (
            report.matvec_cycles
            + report.precond_cycles
            + report.vector_cycles
        )

    def test_summary_string(self, system):
        A, b, _ = system
        _, report = cg(A, b, tol=1e-8)
        s = report.summary()
        assert "converged" in s
        assert "matvec=" in s

    def test_sequential_apply_cycles_cached(self, system):
        A, _, _ = system
        pc = IluPreconditioner(A, cost_model=CostModel())
        c1 = pc.sequential_apply_cycles
        _, cycles = pc.apply(np.ones(A.n_rows))
        assert cycles == c1
