"""Telemetry exporters: Chrome trace-event JSON, JSONL spans, ASCII Gantt."""

import json

import pytest

from repro.backends import make_runner
from repro.obs import (
    CLOCK_CYCLES,
    MetricsRegistry,
    Span,
    Telemetry,
    chrome_trace,
    gantt,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.spans import CAT_COMPUTE, CAT_RUN, CAT_WAIT, WHOLE_RUN_LANE
from repro.workloads.testloop import make_test_loop


@pytest.fixture(scope="module")
def threaded_telemetry():
    loop = make_test_loop(n=300, m=2, l=8)
    runner = make_runner("threaded", processors=4, observe=True)
    return runner.run(loop).telemetry


def synthetic_telemetry() -> Telemetry:
    spans = [
        Span("run", CAT_RUN, 0.0, 100.0, lane=WHOLE_RUN_LANE),
        Span("compute", CAT_COMPUTE, 0.0, 40.0, lane=0),
        Span("wait", CAT_WAIT, 40.0, 60.0, lane=0, attrs={"element": 7}),
        Span("compute", CAT_COMPUTE, 60.0, 100.0, lane=0),
        Span("compute", CAT_COMPUTE, 0.0, 100.0, lane=1),
    ]
    metrics = MetricsRegistry()
    metrics.count("busy_waits", 1)
    return Telemetry(backend="simulated", clock=CLOCK_CYCLES, spans=spans,
                     metrics=metrics)


class TestChromeTrace:
    def test_structure(self, threaded_telemetry):
        trace = chrome_trace(threaded_telemetry)
        events = trace["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"X", "M"}
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
                assert isinstance(e["name"], str)
        # One X event per span, metadata names each lane.
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(threaded_telemetry.spans)
        names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert "construct" in names
        assert any(n.startswith("lane ") for n in names)
        json.dumps(trace)  # must be JSON-safe as-is

    def test_wall_clock_scaled_to_microseconds(self, threaded_telemetry):
        trace = chrome_trace(threaded_telemetry)
        span_total = threaded_telemetry.span_total()
        max_end = max(
            e["ts"] + e["dur"]
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        )
        assert max_end == pytest.approx(span_total * 1e6, rel=1e-9)
        assert trace["otherData"]["time_unit"] == "microseconds"

    def test_cycle_clock_one_cycle_is_one_us(self):
        trace = chrome_trace(synthetic_telemetry())
        run = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "run"
        )
        assert run["ts"] == 0.0 and run["dur"] == 100.0
        assert trace["otherData"]["time_unit"] == "cycles-as-us"

    def test_whole_run_lane_maps_to_tid_zero(self):
        trace = chrome_trace(synthetic_telemetry())
        run = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "run"
        )
        assert run["tid"] == 0
        lane0 = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "wait"
        ]
        assert lane0[0]["tid"] == 1  # lane k -> tid k+1
        assert lane0[0]["args"] == {"element": 7}

    def test_write_round_trips(self, threaded_telemetry, tmp_path):
        path = write_chrome_trace(threaded_telemetry, tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["backend"] == "threaded"
        assert "metrics" in loaded["otherData"]


class TestSpansJsonl:
    def test_every_line_parses(self, threaded_telemetry):
        lines = spans_jsonl(threaded_telemetry).strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "telemetry"
        assert records[0]["backend"] == "threaded"
        assert "metrics" in records[0]
        spans = [r for r in records if r["record"] == "span"]
        assert len(spans) == len(threaded_telemetry.spans)
        for r in spans:
            assert {"name", "cat", "start", "end", "lane", "attrs"} <= r.keys()

    def test_write(self, threaded_telemetry, tmp_path):
        path = write_spans_jsonl(threaded_telemetry, tmp_path / "s.jsonl")
        assert len(path.read_text().strip().splitlines()) == (
            len(threaded_telemetry.spans) + 1
        )


class TestGantt:
    def test_glyphs_and_rows(self):
        chart = gantt(synthetic_telemetry(), width=50)
        lines = chart.splitlines()
        assert "busy-wait" in lines[0]
        assert lines[1].startswith("p0  |")
        assert lines[2].startswith("p1  |")
        assert "." in lines[1]  # the wait span
        assert "#" in lines[1]
        assert set(lines[2]) <= {"p", "1", " ", "|", "#"}  # lane 1 never waits
        assert len(lines[1]) == len("p0  |") + 50 + 1

    def test_threaded_chart_renders(self, threaded_telemetry):
        chart = gantt(threaded_telemetry)
        assert chart.splitlines()[0].startswith("t = 0 ..")
        assert "ms" in chart.splitlines()[0]
        assert "#" in chart

    def test_empty_telemetry(self):
        empty = Telemetry(backend="threaded", clock=CLOCK_CYCLES)
        assert gantt(empty) == "(no activity spans to draw)"


class TestEdgeCases:
    """Exporter edge cases: empty recorders, single spans, round-trips."""

    def test_empty_recorder_normalizes_and_exports(self):
        from repro.obs import SpanRecorder

        recorder = SpanRecorder()
        assert recorder.normalized() == []
        telemetry = Telemetry(
            backend="threaded", clock=CLOCK_CYCLES, spans=recorder.normalized()
        )
        assert telemetry.spans == []
        assert gantt(telemetry) == "(no activity spans to draw)"
        trace = chrome_trace(telemetry)
        assert all(e["ph"] == "M" for e in trace["traceEvents"])
        lines = spans_jsonl(telemetry).strip().splitlines()
        assert len(lines) == 1  # header only
        assert json.loads(lines[0])["record"] == "telemetry"

    def test_single_span_gantt(self):
        only = Telemetry(
            backend="simulated",
            clock=CLOCK_CYCLES,
            spans=[Span("compute", CAT_COMPUTE, 0.0, 10.0, lane=0)],
        )
        lines = gantt(only, width=20).splitlines()
        assert lines[1].startswith("p0  |")
        assert "#" in lines[1]

    def test_zero_duration_single_span_does_not_crash(self):
        instant = Telemetry(
            backend="simulated",
            clock=CLOCK_CYCLES,
            spans=[Span("compute", CAT_COMPUTE, 5.0, 5.0, lane=0)],
        )
        assert isinstance(gantt(instant), str)

    def test_chrome_trace_events_are_pid_tagged(self, threaded_telemetry):
        trace = chrome_trace(threaded_telemetry)
        assert all("pid" in e and "tid" in e for e in trace["traceEvents"])
        # All lanes share one process; tids partition the spans by lane.
        assert {e["pid"] for e in trace["traceEvents"]} == {0}
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len({e["tid"] for e in xs}) > 1

    def test_jsonl_round_trip(self, threaded_telemetry, tmp_path):
        from repro.obs import read_spans_jsonl

        path = write_spans_jsonl(threaded_telemetry, tmp_path / "rt.jsonl")
        loaded = read_spans_jsonl(path)
        assert loaded.as_dict() == threaded_telemetry.as_dict()

    def test_jsonl_round_trip_from_raw_text(self):
        from repro.obs import read_spans_jsonl

        source = synthetic_telemetry()
        loaded = read_spans_jsonl(spans_jsonl(source))
        assert loaded.as_dict() == source.as_dict()

    def test_jsonl_read_rejects_missing_header(self):
        from repro.obs import read_spans_jsonl

        span_only = (
            '{"record": "span", "name": "c", "cat": "compute", '
            '"start": 0.0, "end": 1.0, "lane": 0, "attrs": {}}\n'
        )
        with pytest.raises(ValueError, match="header"):
            read_spans_jsonl(span_only)

    def test_jsonl_read_rejects_duplicate_header_and_unknown_kind(self):
        from repro.obs import read_spans_jsonl

        header = spans_jsonl(synthetic_telemetry()).strip().splitlines()[0]
        with pytest.raises(ValueError, match="duplicate"):
            read_spans_jsonl(header + "\n" + header + "\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            read_spans_jsonl(header + '\n{"record": "mystery"}\n')
