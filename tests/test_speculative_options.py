"""Option handling and constructor validation of the speculative backend.

The conformance matrix and property suites drive the execution engine;
this file pins the API surface around it: constructor rejection of
nonsensical configurations, the ``analyze="symbolic"`` diagnosis path
(which, unlike the inspector backends, never changes execution — there
is no inspector phase to elide), and the note-and-continue contract for
options speculation cannot honor (``order``/``schedule``/``trace``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import SpeculativeRunner
from repro.errors import ScheduleError
from repro.workloads.synthetic import chain_loop, random_irregular_loop


class TestConstructorValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least one worker"):
            SpeculativeRunner(workers=0)

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError, match="chunk must be >= 1"):
            SpeculativeRunner(chunk=0)

    def test_rejects_empty_retry_budget(self):
        with pytest.raises(ValueError, match="retry budget"):
            SpeculativeRunner(max_rounds=0)

    def test_rejects_unknown_analyze_mode(self):
        with pytest.raises(ValueError, match="unknown analyze mode"):
            SpeculativeRunner(analyze="psychic")

    def test_rejects_nonpositive_run_chunk(self):
        with pytest.raises(ValueError, match="chunk must be >= 1"):
            SpeculativeRunner().run(chain_loop(16, 1), chunk=0)


class TestSymbolicDiagnosis:
    def test_verdict_attached_without_changing_values(self):
        loop = chain_loop(64, 3)
        result = SpeculativeRunner(workers=2, analyze="symbolic").run(loop)
        assert np.array_equal(result.y, loop.run_sequential())
        assert result.extras["analyze"] == "symbolic"
        assert result.extras["verdict"] == "constant-distance"
        assert result.extras["verdict_distance"] == 3

    def test_cross_checked_mode_runs_clean(self):
        loop = random_irregular_loop(80, seed=3)
        runner = SpeculativeRunner(workers=2, analyze="symbolic+check")
        result = runner.run(loop)
        assert np.array_equal(result.y, loop.run_sequential())
        assert result.extras["analyze"] == "symbolic+check"


class TestIgnoredOptions:
    def test_valid_order_is_validated_then_noted(self):
        loop = chain_loop(32, 1)
        result = SpeculativeRunner(workers=2).run(
            loop, order=np.arange(loop.n)
        )
        assert np.array_equal(result.y, loop.run_sequential())
        notes = {n["option"]: n for n in result.extras["ignored_options"]}
        assert "order" in notes
        assert "natural chunk order" in notes["order"]["reason"]

    def test_invalid_order_is_still_rejected(self):
        # Ignored-but-validated: a bogus order is an API misuse even
        # though a valid one would not change the result.
        loop = chain_loop(32, 1)
        with pytest.raises(ScheduleError, match="not a permutation"):
            SpeculativeRunner(workers=2).run(
                loop, order=np.zeros(loop.n, dtype=np.int64)
            )

    def test_schedule_and_trace_are_noted(self):
        loop = chain_loop(32, 1)
        result = SpeculativeRunner(workers=2).run(
            loop, schedule="block", trace=True
        )
        assert np.array_equal(result.y, loop.run_sequential())
        options = {
            n["option"] for n in result.extras["ignored_options"]
        }
        assert options == {"schedule", "trace"}

    def test_defaults_leave_no_notes(self):
        result = SpeculativeRunner(workers=2).run(chain_loop(32, 1))
        assert "ignored_options" not in result.extras
