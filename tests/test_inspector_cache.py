"""Tests for the content-addressed inspector cache.

The cache's correctness story: equal dependence *content* (index arrays)
shares preprocessing, and any in-place mutation of that content changes the
fingerprint — a stale inspector result is unreachable by construction.
"""

import numpy as np
import pytest

from repro.backends.cache import (
    InspectorCache,
    build_inspector_record,
    loop_fingerprint,
)
from repro.core.workspace import MAXINT
from repro.errors import InvalidLoopError
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop


class TestFingerprint:
    def test_distinct_objects_same_structure(self):
        a = make_test_loop(n=100, m=2, l=8)
        b = make_test_loop(n=100, m=2, l=8)
        assert a is not b
        assert loop_fingerprint(a) == loop_fingerprint(b)

    def test_different_structure_differs(self):
        a = make_test_loop(n=100, m=2, l=8)
        b = make_test_loop(n=100, m=2, l=6)
        assert loop_fingerprint(a) != loop_fingerprint(b)

    def test_coefficients_excluded(self):
        a = random_irregular_loop(80, seed=3)
        b = random_irregular_loop(80, seed=3)
        b.reads.coeff[:] = 2.0 * b.reads.coeff
        assert loop_fingerprint(a) == loop_fingerprint(b)

    def test_index_mutation_changes_fingerprint(self):
        loop = random_irregular_loop(80, seed=3)
        before = loop_fingerprint(loop)
        loop.reads.index[0] = (loop.reads.index[0] + 1) % loop.y_size
        assert loop_fingerprint(loop) != before

    def test_write_mutation_changes_fingerprint(self):
        loop = chain_loop(40, 2)
        before = loop_fingerprint(loop)
        # Swap two write targets: still injective, different content.
        loop.write[0], loop.write[1] = loop.write[1], loop.write[0]
        assert loop_fingerprint(loop) != before


class TestCacheBehavior:
    def test_hit_and_miss_counters(self):
        cache = InspectorCache()
        loop = make_test_loop(n=100, m=2, l=8)
        _, hit1 = cache.get_or_build(loop)
        _, hit2 = cache.get_or_build(loop)
        assert (hit1, hit2) == (False, True)
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1
        assert loop in cache

    def test_structural_twin_hits(self):
        cache = InspectorCache()
        cache.get_or_build(make_test_loop(n=100, m=2, l=8))
        _, hit = cache.get_or_build(make_test_loop(n=100, m=2, l=8))
        assert hit is True

    def test_rescaled_coefficients_hit(self):
        cache = InspectorCache()
        loop = random_irregular_loop(80, seed=4)
        cache.get_or_build(loop)
        rescaled = random_irregular_loop(80, seed=4)
        rescaled.reads.coeff[:] = 3.0 * rescaled.reads.coeff
        _, hit = cache.get_or_build(rescaled)
        assert hit is True

    def test_index_mutation_misses(self):
        cache = InspectorCache()
        loop = random_irregular_loop(80, seed=4)
        cache.get_or_build(loop)
        loop.reads.index[5] = (loop.reads.index[5] + 1) % loop.y_size
        _, hit = cache.get_or_build(loop)
        assert hit is False
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = InspectorCache(capacity=2)
        loops = [make_test_loop(n=60, m=1, l=l) for l in (6, 7, 8)]
        for loop in loops:
            cache.get_or_build(loop)
        assert len(cache) == 2
        assert loops[0] not in cache  # least recently used, evicted
        assert loops[1] in cache and loops[2] in cache

    def test_lru_order_refreshed_by_hit(self):
        cache = InspectorCache(capacity=2)
        a, b, c = (make_test_loop(n=60, m=1, l=l) for l in (6, 7, 8))
        cache.get_or_build(a)
        cache.get_or_build(b)
        cache.get_or_build(a)  # refresh a; b becomes LRU
        cache.get_or_build(c)
        assert a in cache and c in cache and b not in cache

    def test_clear_keeps_counters(self):
        cache = InspectorCache()
        cache.get_or_build(make_test_loop(n=60, m=1, l=6))
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(InvalidLoopError, match="capacity"):
            InspectorCache(capacity=0)

    def test_stats_shape(self):
        cache = InspectorCache(capacity=8)
        cache.get_or_build(make_test_loop(n=60, m=1, l=6))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["capacity"] == 8
        assert stats["bytes"] > 0


class TestRecordContents:
    def test_iter_array_matches_paper(self):
        loop = random_irregular_loop(60, seed=1)
        record = build_inspector_record(loop)
        expected = np.full(loop.y_size, MAXINT, dtype=np.int64)
        expected[loop.write] = np.arange(loop.n)
        assert np.array_equal(record.iter_array, expected)

    def test_exec_order_is_level_major_permutation(self):
        loop = random_irregular_loop(60, seed=1)
        record = build_inspector_record(loop)
        assert np.array_equal(
            np.sort(record.exec_order), np.arange(loop.n)
        )
        levels_in_order = record.schedule.levels[record.exec_order]
        assert np.all(np.diff(levels_in_order) >= 0)

    def test_term_source_is_permutation_of_terms(self):
        loop = random_irregular_loop(60, seed=2)
        record = build_inspector_record(loop)
        total = int(loop.reads.ptr[-1])
        assert np.array_equal(
            np.sort(record.term_source), np.arange(total)
        )

    def test_counts_nonincreasing_within_level(self):
        loop = random_irregular_loop(60, seed=2)
        record = build_inspector_record(loop)
        for k in range(record.n_levels):
            lo = int(record.schedule.level_ptr[k])
            hi = int(record.schedule.level_ptr[k + 1])
            cnt = record.exec_counts[lo:hi]
            assert np.all(np.diff(cnt) <= 0)
