"""Property-based conformance of the speculative backend.

Speculation's correctness story is subtler than the inspector paths':
nothing *prevents* a wrong interleaving up front — chunks run
optimistically and the conflict detector must catch every cross-chunk
true dependence after the fact.  So the properties drive it through
arbitrary runtime dependence structures (including the adversarial
high-conflict chains that maximize rollbacks), arbitrary chunk sizes,
and arbitrary retry budgets (small budgets force the sequential
fallback), and demand the bitwise oracle answer every time.

The flip side is pinned too: on conflict-free loops speculation must
*not* pay — one round, zero conflicts, zero rollbacks.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import SpeculativeRunner
from repro.workloads.synthetic import (
    chain_loop,
    conflict_frontier_loop,
    random_irregular_loop,
)


@given(
    n=st.integers(0, 60),
    seed=st.integers(0, 2000),
    max_terms=st.integers(0, 5),
    external=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_random_loops_match_oracle(n, seed, max_terms, external):
    loop = random_irregular_loop(
        n, max_terms=max_terms, seed=seed, external_init=external
    )
    result = SpeculativeRunner(workers=2).run(loop)
    assert np.array_equal(result.y, loop.run_sequential())


@given(
    n=st.integers(0, 60),
    seed=st.integers(0, 2000),
    chunk=st.integers(1, 80),
)
@settings(max_examples=30, deadline=None)
def test_any_chunk_size_matches_oracle(n, seed, chunk):
    """Chunking changes which conflicts exist (a dependence inside one
    chunk is invisible to the detector; across chunks it forces a
    rollback) but never the committed values."""
    loop = random_irregular_loop(n, seed=seed)
    result = SpeculativeRunner(workers=2).run(loop, chunk=chunk)
    assert np.array_equal(result.y, loop.run_sequential())
    if n:
        assert result.extras["speculation"]["chunk"] == chunk


@given(
    n=st.integers(8, 120),
    distance=st.integers(1, 3),
    chunk=st.integers(4, 8),
)
@settings(max_examples=30, deadline=None)
def test_adversarial_chains_roll_back_and_still_match(n, distance, chunk):
    """Uniform chains with distance < chunk make every chunk boundary a
    RAW conflict: the detector *must* fire (at least one rollback, more
    than one round) and the committed values must still be the
    oracle's."""
    loop = chain_loop(n, distance)
    result = SpeculativeRunner(workers=2).run(loop, chunk=chunk)
    assert np.array_equal(result.y, loop.run_sequential())
    stats = result.extras["speculation"]
    if n > chunk and distance < chunk:
        assert stats["chunks_conflicted"] >= 1
        assert stats["chunks_rolled_back"] >= 1
        assert stats["rounds"] >= 2 or stats["sequential_fallback"]


@given(
    n=st.integers(1, 120),
    chunk=st.integers(1, 40),
    seed=st.integers(0, 500),
    terms=st.integers(0, 3),
)
@settings(max_examples=30, deadline=None)
def test_conflict_free_loops_commit_in_one_round(n, chunk, seed, terms):
    """A DOALL (reads only touch the never-written pad) must speculate
    for free: one round, nothing conflicted, nothing rolled back."""
    loop = conflict_frontier_loop(n, chunk, 0.0, terms=terms, seed=seed)
    result = SpeculativeRunner(workers=2).run(loop, chunk=chunk)
    assert np.array_equal(result.y, loop.run_sequential())
    stats = result.extras["speculation"]
    assert stats["rounds"] == 1
    assert stats["chunks_conflicted"] == 0
    assert stats["chunks_rolled_back"] == 0
    assert not stats["sequential_fallback"]


@given(
    n=st.integers(1, 80),
    seed=st.integers(0, 1000),
    max_rounds=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_any_retry_budget_matches_oracle(n, seed, max_rounds):
    """Tiny retry budgets force the sequential fallback mid-flight; the
    committed prefix plus the fallback suffix must still compose to the
    bitwise oracle answer."""
    loop = random_irregular_loop(n, seed=seed)
    runner = SpeculativeRunner(workers=2, max_rounds=max_rounds)
    result = runner.run(loop, chunk=3)
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["speculation"]["rounds"] <= max_rounds
