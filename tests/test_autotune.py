"""Tests for the telemetry-driven auto-tuner (ISSUE 6 tentpole):
``backend="auto"`` through the schedule-pass pipeline.

Covers the feature extraction, the explore-then-exploit policy, the
persistence of decisions/measurements on a shared
:class:`~repro.backends.cache.InspectorCache` (keyed by the same
structural fingerprint the inspector cache amortizes under), and the
end-to-end correctness contract: whatever the tuner picks, ``y`` is
bitwise equal to the sequential oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.cache import InspectorCache, loop_fingerprint
from repro.core.doacross import parallelize
from repro.passes import (
    PlanSpec,
    features_from_telemetry,
    plan_loop,
    record_run_outcome,
)
from repro.passes.autotune import record_doctor_hints
from repro.passes.autotune import AUTO_CANDIDATES, _MAX_SAMPLES, TunerDecision
from repro.workloads.testloop import make_test_loop


@pytest.fixture
def loop():
    return make_test_loop(n=120, m=2, l=8)


@pytest.fixture
def cache():
    return InspectorCache()


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------


class TestFeatures:
    def test_threaded_run_yields_wait_fractions(self, loop):
        result, _ = parallelize(
            loop, spec=PlanSpec(backend="threaded", processors=2, observe=True)
        )
        features = features_from_telemetry(result.telemetry)
        assert set(features) >= {"wait_fraction", "mean_wait_fraction"}
        assert all(isinstance(k, str) for k in features["wait_fraction"])
        assert all(v >= 0.0 for v in features["wait_fraction"].values())
        assert features["mean_wait_fraction"] >= 0.0

    def test_vectorized_run_yields_level_width_histogram(self, loop):
        result, _ = parallelize(
            loop,
            spec=PlanSpec(backend="vectorized", processors=2, observe=True),
        )
        features = features_from_telemetry(result.telemetry)
        hist = features["level_width"]
        assert hist["count"] > 0
        assert hist["sum"] == loop.n  # widths over all levels sum to n

    def test_features_are_json_safe(self, loop):
        import json

        result, _ = parallelize(
            loop, spec=PlanSpec(backend="threaded", processors=2, observe=True)
        )
        features = features_from_telemetry(result.telemetry)
        assert json.loads(json.dumps(features)) == features


# ---------------------------------------------------------------------------
# The tuner store on InspectorCache
# ---------------------------------------------------------------------------


class TestTunerStore:
    def test_state_shape_and_identity(self, cache):
        state = cache.tuner_state("fp-1")
        assert state == {"measurements": {}, "features": {}, "decision": None}
        assert cache.tuner_state("fp-1") is state  # persistent, not a copy
        assert cache.stats()["tuner_entries"] == 1

    def test_record_run_outcome_caps_samples(self, cache):
        for i in range(_MAX_SAMPLES + 4):
            record_run_outcome(cache, "fp-1", "threaded", float(i))
        samples = cache.tuner_state("fp-1")["measurements"]["threaded"]
        assert len(samples) == _MAX_SAMPLES
        assert samples == [float(i) for i in range(4, _MAX_SAMPLES + 4)]

    def test_record_run_outcome_stores_features(self, cache, loop):
        result, _ = parallelize(
            loop, spec=PlanSpec(backend="threaded", processors=2, observe=True)
        )
        record_run_outcome(
            cache, "fp-1", "threaded", 0.01, telemetry=result.telemetry
        )
        stored = cache.tuner_state("fp-1")["features"]["threaded"]
        assert "mean_wait_fraction" in stored

    def test_clear_drops_tuner_state(self, cache):
        cache.tuner_state("fp-1")["measurements"]["threaded"] = [1.0]
        cache.clear()
        assert cache.stats()["tuner_entries"] == 0
        assert cache.tuner_state("fp-1")["measurements"] == {}


# ---------------------------------------------------------------------------
# Explore-then-exploit policy
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_first_sight_uses_width_heuristic(self, loop, cache):
        plan = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        assert plan.backend in AUTO_CANDIDATES
        assert plan.tuner.source == "heuristic"
        assert "wavefront width" in plan.tuner.reason
        assert plan.tuner.fingerprint == loop_fingerprint(loop)

    def test_explores_unmeasured_candidates_before_exploiting(self, loop, cache):
        fp = loop_fingerprint(loop)
        seen: list[str] = []
        for _ in range(len(AUTO_CANDIDATES)):
            plan = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
            seen.append(plan.backend)
            # Simulate the measured run the planner would normally feed back.
            record_run_outcome(cache, fp, plan.backend, 0.01)
        assert sorted(seen) == sorted(AUTO_CANDIDATES)
        sources = [
            cache.tuner_state(fp)["decision"]["source"],
        ]
        assert sources == ["explore"]  # last pre-exploit decision

    def test_exploits_best_median_once_all_measured(self, loop, cache):
        fp = loop_fingerprint(loop)
        walls = {
            "vectorized": 0.002,
            "threaded": 0.010,
            "multiproc": 0.050,
            "speculative": 0.020,
        }
        for backend, wall in walls.items():
            for jitter in (0.0, wall, -0.0005):
                record_run_outcome(cache, fp, backend, wall + jitter)
        plan = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        assert plan.backend == "vectorized"
        assert plan.tuner.source == "telemetry"
        assert "median wall" in plan.tuner.reason

    def test_decision_persisted_on_cache(self, loop, cache):
        plan = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        stored = cache.tuner_state(loop_fingerprint(loop))["decision"]
        assert stored == plan.tuner.as_dict()

    def test_separate_structures_tune_separately(self, cache):
        wide = make_test_loop(n=120, m=2, l=8)
        narrow = make_test_loop(n=60, m=2, l=2)
        plan_loop(wide, PlanSpec(backend="auto"), cache=cache)
        plan_loop(narrow, PlanSpec(backend="auto"), cache=cache)
        assert cache.stats()["tuner_entries"] == 2

    def test_decision_audit_is_json_safe(self):
        import json

        decision = TunerDecision(
            backend="vectorized",
            chunk=None,
            source="telemetry",
            reason="test",
            fingerprint="fp",
        )
        assert json.loads(json.dumps(decision.as_dict())) == decision.as_dict()


# ---------------------------------------------------------------------------
# End-to-end: parallelize(backend="auto")
# ---------------------------------------------------------------------------


class TestAutoEndToEnd:
    def test_auto_is_correct_and_audited(self, loop, cache):
        result, plan = parallelize(loop, backend="auto", cache=cache)
        assert np.array_equal(result.y, loop.run_sequential())
        audit = result.extras["schedule_plan"]
        assert audit["requested_backend"] == "auto"
        assert audit["backend"] in AUTO_CANDIDATES
        assert result.extras["tuner"]["source"] in (
            "heuristic",
            "explore",
            "telemetry",
        )
        assert plan.describe()  # the transform plan still rides along

    def test_auto_runs_are_always_observed(self, loop, cache):
        # Telemetry is the tuner's training data, so observe is forced on.
        result, _ = parallelize(loop, backend="auto", cache=cache)
        assert result.telemetry is not None

    def test_auto_feeds_measurements_back(self, loop, cache):
        parallelize(loop, backend="auto", cache=cache)
        state = cache.tuner_state(loop_fingerprint(loop))
        measured = [b for b, s in state["measurements"].items() if s]
        assert len(measured) == 1
        assert measured[0] == state["decision"]["backend"]

    def test_auto_converges_to_telemetry_source(self, loop, cache):
        sources = []
        for _ in range(len(AUTO_CANDIDATES) + 2):
            result, _ = parallelize(loop, backend="auto", cache=cache)
            sources.append(result.extras["tuner"]["source"])
            assert np.array_equal(result.y, loop.run_sequential())
        assert sources[0] == "heuristic"
        assert set(sources[1 : len(AUTO_CANDIDATES)]) <= {"explore"}
        assert sources[-1] == "telemetry"

    def test_auto_via_spec_matches_backend_kwarg(self, loop, cache):
        result, _ = parallelize(
            loop, spec=PlanSpec(backend="auto", processors=4), cache=cache
        )
        assert np.array_equal(result.y, loop.run_sequential())
        assert result.extras["schedule_plan"]["backend"] in AUTO_CANDIDATES


# ---------------------------------------------------------------------------
# Perf-doctor hints as tuner priors
# ---------------------------------------------------------------------------


class TestDoctorHints:
    def _hint(self, cache, fp, backend="vectorized"):
        from repro.perf.findings import Finding

        record_doctor_hints(
            cache,
            fp,
            [
                Finding(
                    kind="wait_bound",
                    severity="critical",
                    summary="lanes mostly busy-wait",
                    evidence={"mean_wait_fraction": 0.9},
                    recommendation={"backend": backend},
                )
            ],
        )

    def test_hint_recorded_from_first_backend_recommendation(self, cache):
        self._hint(cache, "fp-1")
        hints = cache.tuner_state("fp-1")["hints"]
        assert hints["backend"] == "vectorized"
        assert hints["kind"] == "wait_bound"

    def test_finding_without_backend_records_nothing(self, cache):
        from repro.perf.findings import Finding

        record_doctor_hints(
            cache,
            "fp-1",
            [
                Finding(
                    kind="cache_cold",
                    severity="info",
                    summary="cold cache",
                    evidence={},
                    recommendation={"cache": "share"},
                )
            ],
        )
        assert "hints" not in cache.tuner_state("fp-1")

    def test_hinted_backend_is_measured_first(self, loop, cache):
        # The width heuristic would rank vectorized first on this wide
        # loop; a threaded hint overrides it.
        self._hint(cache, loop_fingerprint(loop), backend="threaded")
        plan = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        assert plan.backend == "threaded"
        assert plan.tuner.source == "hint"
        assert "doctor" in plan.tuner.reason

    def test_hint_shortcuts_remaining_exploration(self, loop, cache):
        # With a hint, explore stops after the hinted backend is timed —
        # the tuner exploits without measuring the other two candidates.
        fp = loop_fingerprint(loop)
        self._hint(cache, fp, backend="threaded")
        first = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        record_run_outcome(cache, fp, first.backend, 0.01)
        second = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        assert second.backend == "threaded"
        assert second.tuner.source == "hint"
        assert "without timing" in second.tuner.reason
        # Unhinted, the same state would still be exploring.
        del cache.tuner_state(fp)["hints"]
        unhinted = plan_loop(loop, PlanSpec(backend="auto"), cache=cache)
        assert unhinted.tuner.source == "explore"

    def test_diagnose_run_with_cache_plants_hint(self, cache):
        # End to end: a PlanSpec(diagnose=True) run on a wait-bound loop
        # leaves a hint the next auto plan consumes.
        from repro import chain_loop

        chain = chain_loop(300, 1)
        result, _ = parallelize(
            chain,
            spec=PlanSpec(backend="threaded", processors=8, diagnose=True),
            cache=cache,
        )
        kinds = [f["kind"] for f in result.extras["doctor"]]
        assert "wait_bound" in kinds
        hints = cache.tuner_state(loop_fingerprint(chain)).get("hints")
        assert hints is not None
        plan = plan_loop(chain, PlanSpec(backend="auto"), cache=cache)
        assert plan.tuner.source == "hint"
        assert plan.backend == hints["backend"]
