"""Tests for the Table-1 experiment harness (reduced grids)."""

import pytest

from repro.bench.table1 import PAPER_TABLE1, run_table1


@pytest.fixture(scope="module")
def small_table():
    return run_table1(small=True)


class TestTable1:
    def test_all_five_problems(self, small_table):
        assert [r.label for r in small_table.rows] == list(PAPER_TABLE1)

    def test_shape_check_passes(self, small_table):
        small_table.check_shape()

    def test_reordered_at_least_as_fast_everywhere(self, small_table):
        for r in small_table.rows:
            assert r.metrics["reordered_cycles"] <= r.metrics["plain_cycles"]

    def test_parallel_beats_sequential_everywhere(self, small_table):
        for r in small_table.rows:
            assert r.metrics["plain_cycles"] < r.metrics["sequential_cycles"]

    def test_levels_recorded(self, small_table):
        for r in small_table.rows:
            assert 1 <= r.params["n_levels"] <= r.params["n"]

    def test_report_lists_paper_reference_numbers(self, small_table):
        text = small_table.report()
        assert "Table 1" in text
        assert "34/21/223" in text  # SPE2's paper row
        assert "SPE5" in text

    def test_row_lookup(self, small_table):
        assert small_table.row("5-PT").params["n"] == 144
        with pytest.raises(KeyError):
            small_table.row("nope")

    def test_shape_check_catches_inversion(self, small_table):
        r = small_table.rows[0]
        saved = r.metrics["reordered_cycles"]
        r.metrics["reordered_cycles"] = r.metrics["plain_cycles"] * 2
        with pytest.raises(AssertionError, match="slower"):
            small_table.check_shape()
        r.metrics["reordered_cycles"] = saved
