"""Sanitizer core: vector clocks, shadow capture, and the detector.

The logs here are hand-built, event by event, so each test pins one
protocol-violation kind to the exact replay behaviour that produces it.
The substrate is ``chain_loop(4, 1)`` — iteration ``i`` writes element
``i`` and reads element ``i-1``, so the required triples are exactly
``(i-1, i, i-1)`` for ``i in 1..3`` — split over two block lanes:
lane 0 runs iterations 0..1, lane 1 runs 2..3, and the only cross-lane
edge is the post of token 1 acquired before iteration 2's read.
"""

import numpy as np
import pytest

from repro.sanitize import ShadowCapture, detect
from repro.sanitize.detector import MAX_REPORTED, required_pairs
from repro.sanitize.events import SRC_NEW, SRC_OLD
from repro.sanitize.vclock import VectorClock
from repro.workloads.synthetic import chain_loop


class TestVectorClock:
    def test_missing_components_are_zero(self):
        vc = VectorClock()
        assert vc.get("t0") == 0
        assert not vc.covers("t0", 1)
        assert vc.covers("t0", 0)
        assert len(vc) == 0

    def test_advance_is_monotone(self):
        vc = VectorClock()
        vc.advance("t0", 5)
        vc.advance("t0", 3)  # no regression
        assert vc.get("t0") == 5
        assert vc.covers("t0", 5) and not vc.covers("t0", 6)

    def test_join_is_componentwise_max(self):
        a = VectorClock({"x": 1, "y": 7})
        b = VectorClock({"x": 4, "z": 2})
        a.join(b)
        assert a.as_dict() == {"x": 4, "y": 7, "z": 2}
        assert b.as_dict() == {"x": 4, "z": 2}  # join mutates only self

    def test_copy_is_independent(self):
        a = VectorClock({"x": 1})
        b = a.copy()
        b.advance("x", 9)
        assert a.get("x") == 1 and b.get("x") == 9
        assert a == VectorClock({"x": 1})
        assert a != b


class TestShadowCapture:
    def test_lane_returns_the_live_list(self):
        cap = ShadowCapture()
        events = cap.lane("t0")
        events.append(("w", 0, 0))
        assert cap.lanes["t0"] == [("w", 0, 0)]
        assert cap.lane("t0") is events

    def test_ingest_pid_tags_the_lane(self):
        cap = ShadowCapture()
        cap.ingest(0, [("w", 0, 0)], pid=111)
        cap.ingest(0, [("w", 1, 1)], pid=222)
        assert set(cap.lanes) == {(111, 0), (222, 0)}
        assert cap.meta["pids"] == [111, 222]

    def test_total_events_counts_bulk_by_width(self):
        cap = ShadowCapture()
        cap.lane(0).extend(
            [
                ("p", 3),
                ("R", np.arange(4), np.arange(4), np.zeros(4, int)),
                ("W", np.arange(2), np.arange(2)),
            ]
        )
        assert cap.total_events() == 1 + 4 + 2


@pytest.fixture
def chain4():
    return chain_loop(4, 1)


def conforming_log(chain4) -> ShadowCapture:
    """Two block lanes over chain(4,1), one cross-lane post/wait edge."""
    cap = ShadowCapture()
    cap.lane(0).extend(
        [
            ("w", 0, 0),
            ("p", 0),
            ("r", 1, 0, SRC_NEW),  # same-lane: program order covers it
            ("w", 1, 1),
            ("p", 1),
        ]
    )
    cap.lane(1).extend(
        [
            ("a", 1),
            ("r", 2, 1, SRC_NEW),
            ("w", 2, 2),
            ("p", 2),
            ("r", 3, 2, SRC_NEW),  # same-lane again
            ("w", 3, 3),
            ("p", 3),
        ]
    )
    return cap


class TestRequiredPairs:
    def test_chain_triples(self, chain4):
        assert required_pairs(chain4) == [(0, 1, 0), (1, 2, 1), (2, 3, 2)]

    def test_independent_loop_has_none(self):
        from repro.ir.accesses import ReadTable
        from repro.ir.loop import IrregularLoop
        from repro.ir.subscript import IndirectSubscript

        loop = IrregularLoop(
            n=4,
            y_size=4,
            write_subscript=IndirectSubscript(np.array([2, 0, 3, 1])),
            reads=ReadTable.from_lists([[], [], [], []]),
        )
        assert required_pairs(loop) == []


class TestDetectGeneralPath:
    def test_conforming_log_is_clean(self, chain4):
        report = detect(conforming_log(chain4), chain4)
        assert report.ok
        assert report.pairs_checked == 3
        assert report.lanes == 2
        assert report.events == 12
        assert "clean" in report.summary()

    def test_missing_acquire_is_no_hb_edge(self, chain4):
        cap = conforming_log(chain4)
        cap.lanes[1].remove(("a", 1))
        report = detect(cap, chain4)
        assert report.counts == {"no-hb-edge": 1}
        v = report.violations[0]
        assert (v.writer, v.reader, v.element) == (1, 2, 1)
        assert (v.writer_lane, v.reader_lane) == (0, 1)
        assert "no witnessed post/wait" in v.detail

    def test_same_lane_program_order_reversal_is_flagged(self, chain4):
        cap = conforming_log(chain4)
        # Lane 1 reads element 2 (iteration 3) *before* writing it.
        cap.lanes[1] = [
            ("a", 1),
            ("r", 2, 1, SRC_NEW),
            ("r", 3, 2, SRC_NEW),
            ("w", 2, 2),
            ("p", 2),
            ("w", 3, 3),
            ("p", 3),
        ]
        report = detect(cap, chain4)
        assert report.counts == {"no-hb-edge": 1}
        assert "program order reversed" in report.violations[0].detail

    def test_stale_read_is_flagged_regardless_of_edges(self, chain4):
        cap = conforming_log(chain4)
        i = cap.lanes[1].index(("r", 2, 1, SRC_NEW))
        cap.lanes[1][i] = ("r", 2, 1, SRC_OLD)
        report = detect(cap, chain4)
        assert report.counts == {"stale-read": 1}
        assert "untouched input value" in report.violations[0].detail

    def test_missing_read_and_write_only_in_full_mode(self, chain4):
        cap = conforming_log(chain4)
        cap.lanes[1].remove(("r", 2, 1, SRC_NEW))
        cap.lanes[0].remove(("w", 1, 1))
        full = detect(cap, chain4)
        assert full.counts == {"missing-read": 1}
        partial = detect(cap, chain4, partial=True)
        assert partial.ok

    def test_missing_write_with_surviving_read(self, chain4):
        cap = conforming_log(chain4)
        cap.lanes[0].remove(("w", 1, 1))
        full = detect(cap, chain4)
        assert full.counts == {"missing-write": 1}
        assert detect(cap, chain4, partial=True).ok

    def test_unexpected_new_read_only_in_full_mode(self, chain4):
        cap = conforming_log(chain4)
        cap.lanes[0].append(("r", 1, 3, SRC_NEW))  # no true dep (1, 3)
        full = detect(cap, chain4)
        assert full.counts == {"unexpected-new-read": 1}
        assert "corrupt iter array" in full.violations[0].detail
        assert detect(cap, chain4, partial=True).ok

    def test_unposted_acquire_stalls_and_is_named(self, chain4):
        cap = conforming_log(chain4)
        i = cap.lanes[1].index(("a", 1))
        cap.lanes[1][i] = ("a", 99)
        report = detect(cap, chain4)
        # The stall is broken and the rest of the log still checked: the
        # forced advance grants no knowledge, so the read behind the
        # bogus acquire also loses its edge.
        assert report.counts == {"unsatisfied-acquire": 1, "no-hb-edge": 1}
        stall = next(
            v for v in report.violations if v.kind == "unsatisfied-acquire"
        )
        assert stall.token == 99
        assert stall.reader_lane == 1

    def test_first_post_wins(self, chain4):
        """Re-posting a token must not grant later acquirers knowledge
        beyond the first post: lane 0 posts token 1 *before* writing
        element 1, and the later legitimate-looking re-post is ignored,
        so iteration 2's read has no witnessed edge."""
        cap = ShadowCapture()
        cap.lane(0).extend(
            [
                ("w", 0, 0),
                ("p", 0),
                ("r", 1, 0, SRC_NEW),
                ("p", 1),  # premature: the write has not happened
                ("w", 1, 1),
                ("p", 1),  # the honest post; first one already won
            ]
        )
        cap.lane(1).extend(
            [
                ("a", 1),
                ("r", 2, 1, SRC_NEW),
                ("w", 2, 2),
                ("p", 2),
                ("r", 3, 2, SRC_NEW),
                ("w", 3, 3),
                ("p", 3),
            ]
        )
        report = detect(cap, chain4)
        assert report.counts == {"no-hb-edge": 1}
        assert report.violations[0].element == 1

    def test_barrier_orders_all_lanes(self, chain4):
        """With no post/wait edges at all, a barrier between the writes
        and the reads is the only ordering — and it is sufficient."""
        cap = ShadowCapture()
        cap.lane(0).extend(
            [("w", 0, 0), ("w", 1, 1), ("b", 0), ("r", 1, 0, SRC_NEW)]
        )
        cap.lane(1).extend(
            [
                ("w", 2, 2),
                ("w", 3, 3),
                ("b", 0),
                ("r", 2, 1, SRC_NEW),
                ("r", 3, 2, SRC_NEW),
            ]
        )
        assert detect(cap, chain4).ok

    def test_skipped_barrier_is_unsatisfied(self, chain4):
        cap = ShadowCapture()
        cap.lane(0).extend(
            [("w", 0, 0), ("w", 1, 1), ("b", 0), ("r", 1, 0, SRC_NEW)]
        )
        # Lane 1 never arrives at generation 0.
        cap.lane(1).extend(
            [
                ("w", 2, 2),
                ("w", 3, 3),
                ("r", 2, 1, SRC_NEW),
                ("r", 3, 2, SRC_NEW),
            ]
        )
        report = detect(cap, chain4)
        assert report.counts["unsatisfied-barrier"] == 1
        assert report.counts["no-hb-edge"] == 1  # (1, 2, 1) lost its edge
        stall = next(
            v for v in report.violations if v.kind == "unsatisfied-barrier"
        )
        assert "1/2 lane(s) arrived" in stall.detail

    def test_bulk_events_expand_on_the_general_path(self, chain4):
        cap = ShadowCapture()
        cap.lane(0).extend(
            [
                ("W", np.array([0, 1]), np.array([0, 1])),
                ("p", 1),
                (
                    "R",
                    np.array([1]),
                    np.array([0]),
                    np.array([SRC_NEW]),
                ),
            ]
        )
        cap.lane(1).extend(
            [
                ("a", 1),
                (
                    "R",
                    np.array([2, 3]),
                    np.array([1, 2]),
                    np.array([SRC_NEW, SRC_NEW]),
                ),
                ("W", np.array([2, 3]), np.array([2, 3])),
            ]
        )
        report = detect(cap, chain4)
        # (2,3,2) is same-lane but the bulk read precedes the bulk write.
        assert report.counts == {"no-hb-edge": 1}
        assert report.violations[0].element == 2

    def test_sync_only_log_is_uninstrumented_note_in_full_mode(self, chain4):
        cap = ShadowCapture()
        cap.lane(0).extend([("p", 0), ("p", 1)])
        report = detect(cap, chain4)
        assert report.ok
        assert report.pairs_checked == 0
        assert any("uninstrumented" in n for n in report.notes)

    def test_sync_only_log_still_replays_under_partial(self, chain4):
        """A run that stalled before its first access must not be
        mistaken for an uninstrumented one: the blocked acquire is the
        whole story."""
        cap = ShadowCapture()
        cap.lane(0).extend([("a", 7)])
        report = detect(cap, chain4, partial=True)
        assert report.counts == {"unsatisfied-acquire": 1}
        assert report.violations[0].token == 7

    def test_violations_are_capped_but_counted(self):
        chain = chain_loop(60, 1)
        cap = ShadowCapture()
        # Evens and odds on separate lanes with no synchronization at
        # all: every one of the 59 required pairs is cross-lane and
        # unordered.
        for lane in (0, 1):
            events = cap.lane(lane)
            for i in range(lane, 60, 2):
                if i > 0:
                    events.append(("r", i, i - 1, SRC_NEW))
                events.append(("w", i, i))
                events.append(("p", i))
        report = detect(cap, chain)
        assert report.total_violations == 59
        assert len(report.violations) == MAX_REPORTED
        assert "and" in report.summary()  # "... and N more"

    def test_report_as_dict_is_json_shaped(self, chain4):
        import json

        cap = conforming_log(chain4)
        cap.lanes[1].remove(("a", 1))
        d = detect(cap, chain4).as_dict()
        json.dumps(d)  # no numpy scalars or tuples leak through
        assert d["ok"] is False
        assert d["total_violations"] == 1
        assert d["violations"][0]["kind"] == "no-hb-edge"
        assert "summary" in d


class TestDetectLevelFastPath:
    def levels_log(self, chain4, *, drop_link=None, merge=False):
        """Chain(4,1) as wavefront levels: level k runs iteration k,
        chained by synthetic tokens -(k+1)."""
        cap = ShadowCapture()
        n_levels = 2 if merge else 4
        cap.meta["levels"] = n_levels
        if merge:
            groups = [[0, 1], [2, 3]]
        else:
            groups = [[0], [1], [2], [3]]
        for k, iters in enumerate(groups):
            events = cap.lane(k)
            if k > 0:
                events.append(("a", -k))
            r_it = [i for i in iters if i > 0]
            if r_it:
                events.append(
                    (
                        "R",
                        np.array(r_it),
                        np.array([i - 1 for i in r_it]),
                        np.full(len(r_it), SRC_NEW),
                    )
                )
            events.append(("W", np.array(iters), np.array(iters)))
            if k + 1 < n_levels and drop_link != k:
                events.append(("p", -(k + 1)))
        return cap

    def test_intact_chain_is_clean(self, chain4):
        report = detect(self.levels_log(chain4), chain4)
        assert report.ok
        assert report.pairs_checked == 3

    def test_broken_chain_link_loses_downstream_edges(self, chain4):
        report = detect(self.levels_log(chain4, drop_link=1), chain4)
        assert report.counts["unsatisfied-acquire"] == 1
        # The (1, 2, 1) pair crosses the broken link.
        assert report.counts["no-hb-edge"] >= 1
        bad = next(v for v in report.violations if v.kind == "no-hb-edge")
        assert (bad.writer, bad.reader, bad.element) == (1, 2, 1)

    def test_merged_levels_are_unordered(self, chain4):
        report = detect(self.levels_log(chain4, merge=True), chain4)
        assert report.counts == {"no-hb-edge": 2}
        details = {v.detail for v in report.violations}
        assert "same wavefront level" in details
