"""Property-based tests of the composed/extended strategies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amortized import AmortizedDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import level_order
from repro.workloads.mesh import mesh_orderings, random_mesh, sweep_loop
from repro.workloads.synthetic import random_irregular_loop


def iterate_oracle(loop, instances):
    y = loop.y0.copy()
    for _ in range(instances):
        clone = loop.with_name(loop.name)
        clone.y0 = y
        y = clone.run_sequential()
    return y


@given(
    n=st.integers(0, 50),
    seed=st.integers(0, 2000),
    instances=st.integers(1, 4),
    processors=st.integers(1, 9),
)
@settings(max_examples=50, deadline=None)
def test_amortized_equals_iterated_oracle(n, seed, instances, processors):
    loop = random_irregular_loop(n, seed=seed)
    result = AmortizedDoacross(processors=processors).run(loop, instances)
    np.testing.assert_allclose(
        result.y, iterate_oracle(loop, instances), rtol=1e-12, atol=1e-12
    )


@given(
    n=st.integers(0, 50),
    seed=st.integers(0, 2000),
    instances=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_amortized_in_doconsider_order_equals_oracle(n, seed, instances):
    loop = random_irregular_loop(n, seed=seed)
    order, _ = level_order(loop)
    result = AmortizedDoacross(processors=4).run(loop, instances, order=order)
    np.testing.assert_allclose(
        result.y, iterate_oracle(loop, instances), rtol=1e-12, atol=1e-12
    )


@given(
    n=st.integers(2, 120),
    seed=st.integers(0, 500),
    ordering=st.sampled_from(["natural", "random", "bfs", "coloring"]),
    processors=st.integers(1, 8),
)
@settings(max_examples=30, deadline=None)
def test_mesh_sweeps_match_their_oracles(n, seed, ordering, processors):
    mesh = random_mesh(n, seed=seed)
    order = mesh_orderings(mesh, seed=seed)[ordering]
    loop = sweep_loop(mesh, order=order)
    result = PreprocessedDoacross(processors=processors).run(loop)
    np.testing.assert_allclose(
        result.y, loop.run_sequential(), rtol=1e-12, atol=1e-12
    )


@given(n=st.integers(0, 40), seed=st.integers(0, 2000))
@settings(max_examples=12, deadline=None)
def test_verify_loop_passes_on_arbitrary_loops(n, seed):
    """The verification tool itself is a property: every applicable
    strategy agrees with the oracle on arbitrary runtime structures."""
    from repro.core.verify import verify_loop

    loop = random_irregular_loop(n, seed=seed)
    report = verify_loop(loop, processors=4, include_threaded=False)
    assert report.passed, report.summary()


@given(n=st.integers(0, 60), seed=st.integers(0, 2000))
@settings(max_examples=40, deadline=None)
def test_coherence_and_bus_models_never_change_values(n, seed):
    from repro.machine.costs import CostModel

    loop = random_irregular_loop(n, seed=seed)
    base = PreprocessedDoacross(processors=4).run(loop)
    modeled = PreprocessedDoacross(
        processors=4,
        cost_model=CostModel(coherence_miss=25, bus_per_access=3),
        coherence=True,
        bus=True,
    ).run(loop)
    np.testing.assert_array_equal(base.y, modeled.y)
    assert modeled.total_cycles >= base.total_cycles
