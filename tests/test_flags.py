"""Tests for the simulated busy-wait flag store."""

import pytest

from repro.machine.flags import UNSET, FlagStore


class TestFlagStore:
    def test_initially_unset(self):
        fs = FlagStore(4)
        assert not any(fs.is_set(f) for f in range(4))
        assert fs.set_time == [UNSET] * 4

    def test_set_records_time(self):
        fs = FlagStore(3)
        fs.set(1, 42)
        assert fs.is_set(1)
        assert fs.set_time[1] == 42
        assert not fs.is_set(0)

    def test_double_set_rejected(self):
        fs = FlagStore(2)
        fs.set(0, 5)
        with pytest.raises(ValueError, match="set twice"):
            fs.set(0, 9)

    def test_set_returns_parked_waiters_in_order(self):
        fs = FlagStore(2)
        fs.park(1, proc=3)
        fs.park(1, proc=0)
        woken = fs.set(1, 10)
        assert woken == [3, 0]
        assert fs.waiters == {}

    def test_set_without_waiters_returns_empty(self):
        fs = FlagStore(1)
        assert fs.set(0, 1) == []

    def test_parked_processors_mapping(self):
        fs = FlagStore(5)
        fs.park(2, proc=0)
        fs.park(2, proc=1)
        fs.park(4, proc=7)
        assert fs.parked_processors() == {0: 2, 1: 2, 7: 4}

    def test_reset_clears_all(self):
        fs = FlagStore(3)
        fs.set(0, 1)
        fs.set(2, 5)
        fs.reset()
        assert fs.set_time == [UNSET] * 3

    def test_reset_with_waiters_rejected(self):
        fs = FlagStore(2)
        fs.park(0, proc=1)
        with pytest.raises(ValueError, match="parked waiters"):
            fs.reset()

    def test_total_sets_counter(self):
        fs = FlagStore(4)
        fs.set(0, 1)
        fs.set(3, 2)
        assert fs.total_sets == 2
        fs.reset()
        fs.set(0, 9)
        assert fs.total_sets == 3  # counter survives reset (per workspace)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FlagStore(-1)

    def test_zero_size_allowed(self):
        fs = FlagStore(0)
        assert fs.size == 0
