"""Tests for value-level dependence analysis."""

import numpy as np
import pytest

from repro.ir.accesses import ReadTable
from repro.ir.analysis import (
    CAT_ANTI,
    CAT_INTRA,
    CAT_NONE,
    CAT_TRUE,
    classify_reads,
    dependence_pairs,
    is_doall,
    summarize_dependences,
    uniform_distance,
    writer_map,
)
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import IndirectSubscript
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import dependence_distances, make_test_loop


def build(write, read_lists, y_size):
    return IrregularLoop(
        n=len(write),
        y_size=y_size,
        write_subscript=IndirectSubscript(np.array(write)),
        reads=ReadTable.from_lists(
            [[(i, 1.0) for i in terms] for terms in read_lists]
        ),
    )


class TestWriterMap:
    def test_maps_written_elements(self):
        loop = build([2, 0, 4], [[], [], []], y_size=6)
        wm = writer_map(loop)
        np.testing.assert_array_equal(wm, [1, -1, 0, -1, 2, -1])


class TestClassification:
    def test_all_four_categories(self):
        # Iteration 0 writes 5; iteration 1 writes 3 and reads:
        #   5 -> TRUE (written by earlier it 0)
        #   3 -> INTRA (written by itself)
        #   7 -> ANTI (written by later it 2)
        #   1 -> NONE (never written)
        loop = build([5, 3, 7], [[], [5, 3, 7, 1], []], y_size=8)
        readers, writers, cats = classify_reads(loop)
        np.testing.assert_array_equal(readers, [1, 1, 1, 1])
        np.testing.assert_array_equal(writers, [0, 1, 2, -1])
        np.testing.assert_array_equal(
            cats, [CAT_TRUE, CAT_INTRA, CAT_ANTI, CAT_NONE]
        )

    def test_no_reads(self):
        loop = build([0, 1], [[], []], y_size=2)
        _, _, cats = classify_reads(loop)
        assert len(cats) == 0


class TestDependencePairs:
    def test_unique_sorted_pairs(self):
        loop = build(
            [0, 1, 2], [[], [0, 0], [0, 1]], y_size=3
        )  # duplicate read of 0 in iter 1
        pairs = dependence_pairs(loop)
        np.testing.assert_array_equal(pairs, [[0, 1], [0, 2], [1, 2]])

    def test_empty_when_independent(self):
        loop = build([0, 1], [[5], [6]], y_size=7)
        assert len(dependence_pairs(loop)) == 0


class TestDoall:
    def test_independent_loop(self):
        loop = build([0, 1], [[5], [6]], y_size=7)
        assert is_doall(loop)

    def test_anti_only_is_doall(self):
        # With write renaming, antidependencies don't order iterations.
        loop = build([0, 1], [[1], []], y_size=2)
        assert is_doall(loop)

    def test_true_dep_blocks_doall(self):
        loop = build([0, 1], [[], [0]], y_size=2)
        assert not is_doall(loop)


class TestUniformDistance:
    def test_chain_loop_has_uniform_distance(self):
        assert uniform_distance(chain_loop(50, 7)) == 7

    def test_mixed_distances_return_none(self):
        loop = build([0, 1, 2, 3], [[], [0], [0], []], y_size=4)
        assert uniform_distance(loop) is None  # distances 1 and 2

    def test_no_deps_returns_none(self):
        loop = build([0, 1], [[], []], y_size=2)
        assert uniform_distance(loop) is None


class TestSummary:
    def test_counts(self):
        loop = build([5, 3, 7], [[], [5, 3, 7, 1], [5]], y_size=8)
        s = summarize_dependences(loop)
        assert s.n == 3
        assert s.total_terms == 5
        assert s.true_terms == 2  # 5 read by its 1 and 2
        assert s.intra_terms == 1
        assert s.anti_terms == 1
        assert s.unwritten_terms == 1
        assert s.unique_true_edges == 2
        assert s.min_distance == 1
        assert s.max_distance == 2
        assert s.dependent_iterations == 2
        assert s.dependence_fraction == pytest.approx(2 / 3)

    def test_empty_loop_summary(self):
        loop = build([], [], y_size=0)
        s = summarize_dependences(loop)
        assert s.n == 0
        assert s.min_distance is None
        assert s.dependence_fraction == 0.0


class TestFigure4Structure:
    """The analysis must reproduce the paper's Figure-6 dependence facts."""

    @pytest.mark.parametrize("l", [1, 3, 5, 7, 9, 11, 13])
    def test_odd_l_has_no_dependencies_at_all(self, l):
        loop = make_test_loop(n=60, m=3, l=l)
        _, _, cats = classify_reads(loop)
        # Offsets are odd, writes are even: nothing is ever written.
        assert np.all(cats == CAT_NONE)

    @pytest.mark.parametrize("m,l", [(1, 4), (1, 8), (5, 6), (5, 14), (3, 12)])
    def test_even_l_distances_match_formula(self, m, l):
        loop = make_test_loop(n=100, m=m, l=l)
        pairs = dependence_pairs(loop)
        measured = sorted(set(int(r - w) for w, r in pairs))
        assert measured == sorted(set(dependence_distances(m, l)))

    def test_even_l_intra_iteration_term(self):
        # j = L/2 reads the element this iteration writes.
        loop = make_test_loop(n=50, m=3, l=4)  # j=2 is intra
        _, _, cats = classify_reads(loop)
        per_iter = cats.reshape(50, 3)
        # Interior iterations: j=1 true/none, j=2 intra, j=3 anti.
        assert np.all(per_iter[:, 1] == CAT_INTRA)
        assert np.all(per_iter[1:, 0] == CAT_TRUE)
        assert np.all(per_iter[:-1, 2] == CAT_ANTI)


class TestRandomLoops:
    @pytest.mark.parametrize("seed", range(5))
    def test_categories_are_consistent_with_definitions(self, seed):
        loop = random_irregular_loop(80, seed=seed)
        wm = writer_map(loop)
        readers, writers, cats = classify_reads(loop)
        for k in range(len(readers)):
            idx = loop.reads.index[k]
            assert writers[k] == wm[idx]
            if writers[k] == -1:
                assert cats[k] == CAT_NONE
            elif writers[k] < readers[k]:
                assert cats[k] == CAT_TRUE
            elif writers[k] == readers[k]:
                assert cats[k] == CAT_INTRA
            else:
                assert cats[k] == CAT_ANTI
