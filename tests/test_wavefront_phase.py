"""Tests for the simulated wavefront-preprocessing phases and the
weighted parallel-do helper."""

import numpy as np
import pytest

from repro.backends.simulated import SimulatedRunner
from repro.graph.depgraph import DependenceGraph
from repro.graph.levels import compute_levels
from repro.machine.costs import CostModel
from repro.machine.engine import Machine
from repro.workloads.synthetic import chain_loop, random_irregular_loop


@pytest.fixture
def runner():
    return SimulatedRunner(Machine(4))


class TestWeightedPhase:
    def test_uniform_costs_match_uniform_phase(self, runner):
        n, cost = 40, 7
        weighted = runner._weighted_phase("w", np.full(n, cost))
        uniform = runner._uniform_phase("u", n, cost, 1)
        assert weighted.span == uniform.span
        assert weighted.total_compute == uniform.total_compute

    def test_imbalance_shows_in_span(self, runner):
        """One heavy chunk dominates the phase span (static block split)."""
        costs = np.ones(40, dtype=np.int64)
        costs[:10] = 100  # processor 0's block is heavy
        phase = runner._weighted_phase("w", costs)
        assert phase.span == 1000
        assert phase.total_compute == int(costs.sum())

    def test_empty(self, runner):
        phase = runner._weighted_phase("w", np.empty(0, dtype=np.int64))
        assert phase.span == 0


class TestWavefrontPreprocessing:
    def test_phase_count_is_levels_plus_init(self, runner):
        loop = chain_loop(60, 4)  # 15 levels
        graph = DependenceGraph.from_loop(loop)
        schedule = compute_levels(graph)
        total, phases = runner.run_wavefront_preprocessing(
            loop, graph, schedule
        )
        assert len(phases) == schedule.n_levels + 1
        assert phases[0].name == "wf-init"
        assert total > 0

    def test_total_includes_barrier_per_round(self, runner):
        loop = chain_loop(20, 2)
        graph = DependenceGraph.from_loop(loop)
        schedule = compute_levels(graph)
        total, phases = runner.run_wavefront_preprocessing(
            loop, graph, schedule
        )
        barrier = CostModel().barrier(4)
        spans = sum(p.span for p in phases)
        assert total == spans + barrier * len(phases)

    def test_deeper_dags_cost_more(self, runner):
        """Same work volume, more levels → more rounds and barriers."""
        shallow = chain_loop(120, 30)  # 4 levels
        deep = chain_loop(120, 2)  # 60 levels

        def cost(loop):
            graph = DependenceGraph.from_loop(loop)
            schedule = compute_levels(graph)
            total, _ = runner.run_wavefront_preprocessing(
                loop, graph, schedule
            )
            return total

        assert cost(deep) > cost(shallow)

    def test_all_iterations_touched_once_across_rounds(self, runner):
        loop = random_irregular_loop(80, seed=5)
        graph = DependenceGraph.from_loop(loop)
        schedule = compute_levels(graph)
        _, phases = runner.run_wavefront_preprocessing(loop, graph, schedule)
        round_iterations = sum(p.total_iterations for p in phases[1:])
        assert round_iterations == loop.n
