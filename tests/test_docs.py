"""Documentation-consistency tests: the docs must track the repository.

Stale docs are bugs too: these tests fail when an example, benchmark
target, or experiment command named in README/DESIGN/EXPERIMENTS stops
existing (or a new example is added without being documented).
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestExamplesDocumented:
    def test_readme_lists_every_example(self):
        readme = read("README.md")
        examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
        assert examples, "no examples found"
        for example in examples:
            assert example in readme, f"README does not mention {example}"

    def test_readme_mentions_no_phantom_examples(self):
        readme = read("README.md")
        mentioned = set(re.findall(r"examples/([a-z_]+\.py)", readme))
        existing = {p.name for p in (ROOT / "examples").glob("*.py")}
        assert mentioned <= existing, mentioned - existing


class TestDesignTargetsExist:
    def test_bench_targets_in_design_exist(self):
        design = read("DESIGN.md")
        for target in set(re.findall(r"benchmarks/([a-z_0-9]+\.py)", design)):
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_module_paths_in_design_exist(self):
        design = read("DESIGN.md")
        for mod in set(re.findall(r"`src/repro/([a-z_]+)/`", design)):
            assert (ROOT / "src" / "repro" / mod).is_dir(), mod

    def test_named_module_files_exist(self):
        design = read("DESIGN.md")
        # `- `name.py` — ...` bullets under the inventory sections.
        current_pkg = None
        for line in design.splitlines():
            pkg = re.search(r"`src/repro/([a-z_]+)/`", line)
            if pkg:
                current_pkg = pkg.group(1)
                continue
            m = re.match(r"\s+- `([a-z_]+\.py)`", line)
            if m and current_pkg:
                path = ROOT / "src" / "repro" / current_pkg / m.group(1)
                assert path.exists(), f"{current_pkg}/{m.group(1)}"


class TestExperimentCommandsRun:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.bench.figure6",
            "repro.bench.table1",
            "repro.bench.ablations",
            "repro.bench.amortized_table",
            "repro.bench.krylov_fraction",
        ],
    )
    def test_documented_commands_importable(self, module):
        """Every `python -m <module>` named in the docs must import and
        expose main()."""
        for doc in ("README.md", "EXPERIMENTS.md", "DESIGN.md"):
            if module in read(doc):
                break
        else:
            pytest.fail(f"{module} not mentioned in any doc")
        __import__(module)
        assert hasattr(sys.modules[module], "main")

    def test_cli_help_lists_commands_that_exist(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        assert out.returncode == 0
        for command in ("figure6", "table1", "ablations", "verify", "demo",
                        "codegen", "table2", "krylov"):
            assert command in out.stdout


class TestExperimentsDocNumbers:
    def test_paper_table1_numbers_match_source(self):
        """EXPERIMENTS.md's 'Paper (ms)' table must agree with the
        PAPER_TABLE1 constants the bench uses."""
        from repro.bench.table1 import PAPER_TABLE1

        text = read("EXPERIMENTS.md")
        for name, (doacross, rearranged, seq) in PAPER_TABLE1.items():
            pattern = rf"\| {re.escape(name)} \| {doacross} \| {rearranged} \| {seq} \|"
            assert re.search(pattern, text), f"paper row for {name}"
