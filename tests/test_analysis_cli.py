"""The ``python -m repro analyze`` command and the elision benchmark."""

import json

import numpy as np

from repro.__main__ import main as repro_main


def run_cli(capsys, *argv):
    code = repro_main(["analyze", *argv])
    return code, capsys.readouterr().out


def test_analyze_text_output(capsys):
    code, out = run_cli(capsys, "chain:n=60,d=3")
    assert code == 0
    assert "constant-distance" in out
    assert "inspector-elidable" in out
    assert "analyzed 1 loop(s)" in out


def test_analyze_cross_check(capsys):
    code, out = run_cli(
        capsys, "figure4:n=60,m=2,l=8", "random:n=40,seed=1", "--cross-check"
    )
    assert code == 0
    assert out.count("cross-check OK") == 2
    assert "runtime-only" in out


def test_analyze_json_output(capsys):
    code, out = run_cli(capsys, "chain:n=50,d=2", "--json", "--cross-check")
    assert code == 0
    payload = json.loads(out)
    assert payload["failed"] == 0
    (record,) = payload["targets"]
    assert record["loop"] == "chain(n=50,d=2)"
    assert record["verdict"]["kind"] == "constant-distance"
    assert record["verdict"]["distance"] == 2
    assert record["elidable"] is True
    assert record["problems"] == []
    assert record["checked_terms"] == 48
    assert record["verdict"]["proof"]["steps"]


def test_analyze_workloads_directory(capsys):
    code, out = run_cli(capsys, "workloads/", "--cross-check")
    assert code == 0
    assert "doall-proven" in out
    assert "runtime-only" in out


def test_analyze_usage_errors(capsys):
    code = repro_main(["analyze"])
    assert code == 2
    code = repro_main(["analyze", "--bogus", "chain"])
    assert code == 2


def test_bench_elision_smoke(tmp_path):
    from repro.bench.bench_elision import run_bench_elision, write_bench_json
    from repro.bench.schema import validate_bench_payload

    result = run_bench_elision(n=400, repeats=1)
    result.check()
    assert {c.workload for c in result.cases} == {
        "chain-d3",
        "figure4-dep",
        "figure4-indep",
    }
    for case in result.cases:
        assert case.outputs_equal
        assert case.inspector_iterations_elided == 0
        assert np.isfinite(case.inspect_pre_seconds)

    out = tmp_path / "BENCH_elision.json"
    write_bench_json(result, out)
    payload = json.loads(out.read_text())
    validate_bench_payload(payload)  # raises TelemetryError on violation
    assert len(payload["records"]) == 6
    backends = {r["backend"] for r in payload["records"]}
    assert backends == {"vectorized-inspector", "vectorized-symbolic"}
