"""Tests for the strip-mined doacross (paper §2.3)."""

import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.core.stripmine import StripminedDoacross
from repro.errors import InvalidLoopError
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop
from tests.conftest import assert_matches_oracle


class TestSemantics:
    @pytest.mark.parametrize("block", [1, 7, 32, 100, 1000])
    def test_any_block_size_preserves_semantics(self, runner16, block):
        loop = make_test_loop(n=150, m=2, l=6)
        result = runner16.run_stripmined(loop, block=block)
        assert_matches_oracle(result.y, loop)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_loops(self, runner16, seed):
        loop = random_irregular_loop(90, seed=seed)
        result = runner16.run_stripmined(loop, block=16)
        assert_matches_oracle(result.y, loop)

    def test_cross_block_dependencies_resolved_through_y(self, runner16):
        """A distance-d chain with block < d: every dependence crosses a
        block boundary and must be satisfied via the postprocessed y."""
        loop = chain_loop(120, 30)
        result = runner16.run_stripmined(loop, block=10)
        assert_matches_oracle(result.y, loop)
        assert result.wait_cycles == 0  # cross-block deps never busy-wait

    def test_intra_block_dependencies_still_synchronize(self, runner16):
        loop = chain_loop(120, 1)
        result = runner16.run_stripmined(loop, block=60)
        assert_matches_oracle(result.y, loop)
        assert result.wait_cycles > 0

    def test_block_must_be_positive(self, runner16, small_test_loop):
        with pytest.raises(InvalidLoopError):
            runner16.run_stripmined(small_test_loop, block=0)


class TestTradeoffs:
    def test_scratch_footprint_shrinks_with_block(self, runner16):
        loop = make_test_loop(n=1000, m=1, l=4)
        small = runner16.run_stripmined(loop, block=50)
        large = runner16.run_stripmined(loop, block=500)
        assert (
            small.extras["modeled_scratch_elements"]
            < large.extras["modeled_scratch_elements"]
        )
        assert (
            large.extras["modeled_scratch_elements"]
            < large.extras["full_scratch_elements"]
        )

    def test_barrier_overhead_grows_as_blocks_shrink(self, runner16):
        loop = make_test_loop(n=600, m=1, l=3)
        few = runner16.run_stripmined(loop, block=300)
        many = runner16.run_stripmined(loop, block=30)
        assert many.breakdown.barriers > few.breakdown.barriers

    def test_block_count_recorded(self, runner16):
        loop = make_test_loop(n=100, m=1, l=3)
        result = runner16.run_stripmined(loop, block=30)
        assert result.extras["blocks"] == 4
        assert result.strategy == "stripmined-doacross"

    def test_single_block_close_to_unblocked(self, runner16):
        """block >= n degenerates to one inner doacross; only identical
        phase structure, so totals must match the unblocked run exactly."""
        loop = make_test_loop(n=200, m=2, l=6)
        unblocked = runner16.run(loop)
        one_block = runner16.run_stripmined(loop, block=200)
        assert one_block.total_cycles == unblocked.total_cycles


class TestFacade:
    def test_stripmined_doacross_class(self):
        loop = make_test_loop(n=80, m=1, l=4)
        runner = StripminedDoacross(block=20, processors=8)
        result = runner.run(loop)
        assert_matches_oracle(result.y, loop)
        assert result.extras["block"] == 20

    def test_facade_block_override(self):
        loop = make_test_loop(n=80, m=1, l=4)
        runner = StripminedDoacross(block=20, processors=8)
        result = runner.run(loop, block=40)
        assert result.extras["block"] == 40

    def test_facade_rejects_bad_block(self):
        with pytest.raises(ValueError):
            StripminedDoacross(block=0, processors=2)

    def test_facade_wraps_existing_runner(self):
        pd = PreprocessedDoacross(processors=4)
        runner = StripminedDoacross(block=10, doacross=pd)
        assert runner.doacross is pd
