"""Tests for the pseudo-Fortran source generator."""

from repro.ir.codegen import generate_original_source, generate_source
from repro.ir.transform import plan_transform
from repro.workloads.synthetic import chain_loop, random_irregular_loop
from repro.workloads.testloop import make_test_loop


class TestOriginalSource:
    def test_figure7_style_identity_write(self):
        loop = chain_loop(100, 2)
        text = generate_original_source(loop)
        assert "do i = 1, 100" in text
        assert "y(i) = y(i) + coeff(k) * y(index(k))" in text

    def test_affine_write_rendered(self):
        loop = make_test_loop(n=50, m=1, l=4)  # write = 2i + shift
        text = generate_original_source(loop)
        assert "y(2*i +" in text

    def test_indirect_write_rendered_as_a_of_i(self):
        loop = random_irregular_loop(20, seed=0)
        assert "y(a(i))" in generate_original_source(loop)

    def test_external_init_uses_rhs(self):
        loop = random_irregular_loop(20, seed=0, external_init=True)
        assert "= rhs(i)" in generate_original_source(loop)


class TestTransformedSource:
    def test_preprocessed_has_all_three_phases(self):
        loop = random_irregular_loop(30, seed=1)
        text = generate_source(loop)
        assert "inspector" in text
        assert "executor" in text
        assert "postprocessor" in text
        assert "iter(a(i)) = i" in text
        assert "iter(a(i)) = MAXINT" in text

    def test_figure5_trichotomy_present(self):
        loop = random_irregular_loop(30, seed=1)
        text = generate_source(loop)
        assert "check = writer - i" in text
        assert "check .lt. 0" in text
        assert "check .eq. 0" in text
        assert "while (ready(offset) .ne. DONE)" in text
        assert "ready(a(i)) = DONE" in text

    def test_linear_variant_has_no_inspector_no_iter(self):
        loop = make_test_loop(n=40, m=1, l=4)
        text = generate_source(loop)
        assert "inspector" not in text
        assert "closed form" in text
        assert "mod(offset" in text
        # No iter array anywhere (the §2.3 storage saving).
        assert "iter(" not in text

    def test_classic_source(self):
        loop = chain_loop(60, 3)
        plan = plan_transform(loop, known_distance=3)
        text = generate_source(loop, plan)
        assert "a-priori dependence distance 3" in text
        assert "done(i - 3)" in text
        assert "iter" not in text

    def test_doall_source(self):
        loop = random_irregular_loop(20, max_terms=0, seed=0)
        plan = plan_transform(loop, assert_independent=True)
        text = generate_source(loop, plan)
        assert "no synchronization" in text
        assert "ready" not in text

    def test_header_names_strategy(self):
        loop = random_irregular_loop(10, seed=0)
        text = generate_source(loop)
        assert text.startswith("! strategy: preprocessed")

    def test_deterministic(self):
        loop = random_irregular_loop(25, seed=9)
        assert generate_source(loop) == generate_source(loop)

    def test_negative_affine_offset_rendered(self):
        from repro.ir.accesses import ReadTable
        from repro.ir.loop import IrregularLoop
        from repro.ir.subscript import AffineSubscript

        loop = IrregularLoop(
            n=3,
            y_size=10,
            write_subscript=AffineSubscript(-1, 9),
            reads=ReadTable.from_lists([[], [], []]),
        )
        text = generate_original_source(loop)
        assert "y(-1*i + 9)" in text
