"""Golden-record regression tests.

The simulator is deterministic, so fresh runs must match the committed
golden records *exactly*.  A failure here means a code change altered
simulated behavior; if intentional, regenerate with
``python benchmarks/update_golden.py`` and commit the diff.
"""

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "golden"


@pytest.fixture(scope="module")
def golden_figure6():
    return json.loads((GOLDEN_DIR / "figure6.json").read_text())


@pytest.fixture(scope="module")
def golden_table1():
    return json.loads((GOLDEN_DIR / "table1.json").read_text())


class TestGoldenFigure6:
    def test_exact_match(self, golden_figure6):
        from benchmarks.update_golden import figure6_record

        assert figure6_record() == golden_figure6

    def test_golden_covers_all_28_points(self, golden_figure6):
        assert len(golden_figure6["points"]) == 28

    def test_golden_plateau_values_sane(self, golden_figure6):
        """Cross-check the stored numbers against the calibration: the
        odd-L points' efficiency must be the documented plateau."""
        point = golden_figure6["points"]["M=1,L=1"]
        eff = point["sequential_cycles"] / (
            golden_figure6["processors"] * point["total_cycles"]
        )
        assert abs(eff - 1 / 3) < 0.03


class TestGoldenTable1:
    def test_exact_match(self, golden_table1):
        from benchmarks.update_golden import table1_record

        assert table1_record() == golden_table1

    def test_golden_orderings_hold(self, golden_table1):
        for name, row in golden_table1["rows"].items():
            assert row["reordered_cycles"] <= row["plain_cycles"], name
            assert row["plain_cycles"] < row["sequential_cycles"], name
