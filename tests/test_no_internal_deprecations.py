"""No repro-internal caller may hit its own deprecation shims.

The legacy ``validate=``/``observe=``/``analyze=``/``schedule=``/
``chunk=`` keywords on ``parallelize``/``make_runner`` warn and forward
to the consolidated :class:`~repro.passes.spec.PlanSpec` path.  The shims
exist for *external* callers; internal code (CLIs, benches, passes) must
be migrated, not shimmed — otherwise every bench run spams warnings and
the deprecation can never be completed.

Each test runs an internal entry point with ``DeprecationWarning``
escalated to an error *for warnings attributed to repro modules* (the
shims use ``stacklevel=2``, so a warning's origin is its caller: an
internal call site is attributed to ``repro.*``, an external one to the
test module).
"""

from __future__ import annotations

import contextlib
import io
import warnings

import pytest


@contextlib.contextmanager
def _no_internal_deprecations():
    with warnings.catch_warnings():
        warnings.filterwarnings(
            "error",
            category=DeprecationWarning,
            module=r"repro(\..*)?",
        )
        yield


class TestBenchesUseSpecPath:
    def test_bench_threaded(self):
        from repro.bench.bench_threaded import run_bench_threaded

        with _no_internal_deprecations():
            result = run_bench_threaded(n=300, threads=2)
        assert result.wall_seconds > 0

    def test_bench_elision(self):
        from repro.bench.bench_elision import run_bench_elision

        with _no_internal_deprecations():
            result = run_bench_elision(n=400, repeats=1)
        assert len(result.cases) == 3

    @pytest.mark.slow
    def test_bench_multiproc(self):
        from repro.bench.bench_multiproc import run_bench_multiproc

        with _no_internal_deprecations():
            result = run_bench_multiproc(
                nx=24, threads=2, worker_counts=(2,)
            )
        assert result.rows

    def test_bench_sanitize(self):
        from repro.bench.bench_sanitize import run_bench_sanitize

        with _no_internal_deprecations():
            result = run_bench_sanitize(nx=16, threads=2)
        result.check()  # small n: correctness + cleanliness only
        assert result.overhead("threaded") > 0


class TestCLIsUseSpecPath:
    def test_profile_cli(self):
        from repro.obs.cli import main

        with _no_internal_deprecations():
            with contextlib.redirect_stdout(io.StringIO()):
                code = main(
                    [
                        "--loop=chain:n=200,d=1",
                        "--backend=threaded",
                        "--processors=2",
                    ]
                )
        assert code == 0

    def test_analyze_cli(self):
        from repro.analysis.cli import main

        with _no_internal_deprecations():
            with contextlib.redirect_stdout(io.StringIO()):
                code = main(["chain:n=100,d=2"])
        assert code == 0

    def test_sanitize_cli(self):
        from repro.sanitize.cli import main

        with _no_internal_deprecations():
            with contextlib.redirect_stdout(io.StringIO()):
                code = main(
                    ["chain:n=60,d=2", "--backend=threaded",
                     "--processors=2"]
                )
        assert code == 0


class TestSpecPathIsWarningFree:
    def test_parallelize_spec(self):
        import numpy as np

        from repro.core.doacross import parallelize
        from repro.passes.spec import PlanSpec
        from repro.workloads.synthetic import chain_loop

        loop = chain_loop(80, 2)
        with _no_internal_deprecations():
            result, _plan = parallelize(
                loop,
                spec=PlanSpec(
                    backend="threaded", processors=2, validate="sanitize"
                ),
            )
        assert np.allclose(result.y, loop.run_sequential())

    def test_legacy_keyword_still_warns_caller(self):
        # The shim itself must stay: external callers get exactly one
        # DeprecationWarning attributed to *their* frame.
        from repro.backends import make_runner
        from repro.workloads.synthetic import chain_loop

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runner = make_runner("threaded", processors=2, observe=True)
            runner.run(chain_loop(40, 1))
        deps = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deps) == 1
        assert "PlanSpec" in str(deps[0].message)
