"""Tests for the classic (a-priori distance) doacross baseline."""

import pytest

from repro.core.classic import ClassicDoacross
from repro.core.doacross import PreprocessedDoacross
from repro.errors import InvalidLoopError
from repro.ir.accesses import ReadTable
from repro.ir.loop import IrregularLoop
from repro.ir.subscript import AffineSubscript
from repro.workloads.synthetic import chain_loop
from tests.conftest import assert_matches_oracle


class TestEligibility:
    def test_wrong_distance_rejected(self):
        with pytest.raises(InvalidLoopError, match="actual uniform distance"):
            ClassicDoacross(processors=4).run(chain_loop(50, 3), distance=2)

    def test_loop_without_uniform_distance_rejected(self):
        # Distances 1 and 2 mixed.
        reads = ReadTable.from_lists([[], [(0, 0.5)], [(0, 0.5)], []])
        loop = IrregularLoop(
            n=4,
            y_size=4,
            write_subscript=AffineSubscript(1, 0),
            reads=reads,
        )
        with pytest.raises(InvalidLoopError):
            ClassicDoacross(processors=4).run(loop, distance=1)

    def test_antidependence_rejected(self):
        # Uniform true distance 1 but also an antidependence: in-place
        # classic execution would clobber the old value.
        reads = ReadTable.from_lists([[(1, 0.5)], [(0, 0.5)]])
        loop = IrregularLoop(
            n=2,
            y_size=2,
            write_subscript=AffineSubscript(1, 0),
            reads=reads,
        )
        with pytest.raises(InvalidLoopError, match="antidependencies"):
            ClassicDoacross(processors=4).run(loop, distance=1)

    def test_distance_must_be_positive(self):
        with pytest.raises(InvalidLoopError, match=">= 1"):
            ClassicDoacross(processors=4).run(chain_loop(10, 1), distance=0)


class TestExecution:
    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_values_correct(self, d):
        loop = chain_loop(120, d)
        result = ClassicDoacross(processors=8).run(loop, distance=d)
        assert_matches_oracle(result.y, loop)

    def test_strategy_label_and_extras(self):
        result = ClassicDoacross(processors=4).run(chain_loop(40, 2), 2)
        assert result.strategy == "classic-doacross"
        assert result.extras["distance"] == 2

    def test_larger_distance_means_more_parallelism(self):
        runner = ClassicDoacross(processors=16)
        tight = runner.run(chain_loop(300, 1), distance=1)
        loose = runner.run(chain_loop(300, 8), distance=8)
        assert loose.total_cycles < tight.total_cycles

    def test_cheaper_than_preprocessed_when_applicable(self):
        """The paper's framing: when the compiler knows the distance, the
        classic doacross skips the inspector, the postprocessor, and every
        per-term iter check — it must beat the preprocessed doacross."""
        loop = chain_loop(400, 8)
        classic = ClassicDoacross(processors=16).run(loop, distance=8)
        preprocessed = PreprocessedDoacross(processors=16).run(loop)
        assert classic.total_cycles < preprocessed.total_cycles

    def test_waits_accounted_on_tight_chain(self):
        result = ClassicDoacross(processors=8).run(
            chain_loop(100, 1), distance=1
        )
        assert result.wait_cycles > 0
