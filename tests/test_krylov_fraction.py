"""Tests for the Krylov-fraction experiment (reduced grids)."""

import pytest

from repro.bench.krylov_fraction import SOLVER_FOR, run_krylov_fraction


@pytest.fixture(scope="module")
def result():
    return run_krylov_fraction(small=True)


class TestKrylovFraction:
    def test_all_problems_measured(self, result):
        assert [r.label for r in result.rows] == list(SOLVER_FOR)

    def test_shape_check_passes(self, result):
        result.check_shape()

    def test_solver_selection(self, result):
        by = {r.label: r for r in result.rows}
        assert by["SPE2"].params["solver"] == "gmres"
        assert by["5-PT"].params["solver"] == "cg"

    def test_fractions_large_sequentially(self, result):
        for r in result.rows:
            assert r.metrics["precond_fraction_seq"] > 0.5

    def test_parallel_shrinks_fraction(self, result):
        for r in result.rows:
            assert (
                r.metrics["precond_fraction_par"]
                < r.metrics["precond_fraction_seq"]
            )

    def test_solver_speedup_below_solve_speedup(self, result):
        """Amdahl: the whole-solver gain is diluted by the sequential
        matvec and vector work."""
        for r in result.rows:
            assert 1.0 < r.metrics["solver_speedup"] < r.metrics["solve_speedup"]

    def test_report_format(self, result):
        text = result.report()
        assert "Krylov motivation" in text
        assert "gmres" in text
        assert "cg" in text

    def test_shape_check_detects_small_fraction(self, result):
        r = result.rows[0]
        saved = r.metrics["precond_fraction_seq"]
        r.metrics["precond_fraction_seq"] = 0.1
        with pytest.raises(AssertionError, match="large"):
            result.check_shape()
        r.metrics["precond_fraction_seq"] = saved

    def test_main_runs(self, capsys):
        from repro.bench.krylov_fraction import main

        assert main(["--small"]) == 0
        assert "shape check: PASS" in capsys.readouterr().out
