"""The ``python -m repro lint`` command and the ``validate="static"``
execution path."""

import json

import numpy as np
import pytest

import repro
from repro.__main__ import main as repro_main
from repro.backends import ValidatingRunner, make_runner
from repro.lint.cli import builtin_loops, collect_loops


def run_cli(capsys, *argv):
    code = repro_main(["lint", *argv])
    return code, capsys.readouterr().out


# ----------------------------------------------------------------------
# Acceptance criteria: AFFINE-WRITE + DOALL-ABLE over examples/, both
# renderings
# ----------------------------------------------------------------------
def test_lint_examples_text_output(capsys):
    code, out = run_cli(capsys, "examples/")
    assert code == 0  # warnings don't fail the gate
    assert "AFFINE-WRITE" in out
    assert "DOALL-ABLE" in out
    assert "linted" in out


def test_lint_examples_json_output(capsys):
    code, out = run_cli(capsys, "examples/", "--json")
    assert code == 0
    payload = json.loads(out)
    rules = {
        d["rule"]
        for target in payload["targets"]
        for d in target["diagnostics"]
    }
    assert "AFFINE-WRITE" in rules
    assert "DOALL-ABLE" in rules
    sources = {t["source"] for t in payload["targets"]}
    assert any("static_analysis" in s for s in sources)


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------
def test_builtin_specs():
    assert len(builtin_loops("figure4:n=50,m=2,l=8")) == 1
    (loop,) = builtin_loops("chain:n=30,d=2").values()
    assert loop.n == 30
    (loop,) = builtin_loops("random:n=40,seed=5").values()
    assert loop.n == 40
    with pytest.raises(ValueError, match="unknown builtin"):
        builtin_loops("mystery")
    with pytest.raises(ValueError, match="unknown spec argument"):
        builtin_loops("figure4:n=50,bogus=1")
    with pytest.raises(ValueError, match="malformed"):
        builtin_loops("figure4:n")


def test_collect_loops_from_file_and_spec():
    triples = collect_loops(["examples/quickstart.py", "chain:n=20,d=1"])
    names = [name for _, name, _ in triples]
    assert "quickstart-figure4" in names
    assert len(triples) == 3


def test_collect_loops_skips_pycache(tmp_path):
    """A stale hook file inside ``__pycache__`` (running the suite leaves
    bytecode caches under ``workloads/``, and editors can leave stray
    ``.py`` siblings there) must be invisible to directory targets — it
    would otherwise be linted twice or crash the gate on a bad import."""
    target = tmp_path / "portfolio"
    target.mkdir()
    (target / "good.py").write_text(
        "import repro\n"
        "def build_loop():\n"
        "    return repro.chain_loop(10, 1)\n",
        encoding="utf-8",
    )
    cache = target / "__pycache__"
    cache.mkdir()
    # A hook file that would double-collect *and* a broken one that
    # would crash collection if either were imported.
    (cache / "good.py").write_text(
        "def build_loop():\n    return None\n", encoding="utf-8"
    )
    (cache / "stale.py").write_text(
        "def build_loops():\n    raise RuntimeError('stale bytecode twin')\n",
        encoding="utf-8",
    )
    triples = collect_loops([str(target)])
    assert len(triples) == 1
    source, name, loop = triples[0]
    assert source == str(target / "good.py")
    assert loop.n == 10


def test_cli_usage_errors(capsys):
    assert repro_main(["lint"]) == 2
    assert repro_main(["lint", "--bogus", "figure4"]) == 2
    assert repro_main(["lint", "figure4", "--rules=NOPE"]) == 2
    assert repro_main(["lint", "/nonexistent/dir.py"]) == 2
    err = capsys.readouterr().err
    assert "lint:" in err


def test_cli_rules_filter_and_schedule_options(capsys):
    code, out = run_cli(
        capsys,
        "chain:n=64,d=1",
        "--schedule=block",
        "--processors=4",
        "--rules=CHUNK-CYCLE",
        "--json",
    )
    assert code == 0
    payload = json.loads(out)
    rules = [
        d["rule"]
        for target in payload["targets"]
        for d in target["diagnostics"]
    ]
    assert rules and set(rules) == {"CHUNK-CYCLE"}
    assert payload["worst_severity"] == "warning"


def test_cli_strict_fails_on_warnings(capsys):
    code, _ = run_cli(
        capsys, "chain:n=64,d=1", "--schedule=block", "--strict"
    )
    assert code == 1


def test_cli_backend_race_check_is_clean(capsys):
    code, out = run_cli(
        capsys, "figure4:n=60,l=8", "--backend=threaded", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert all(
        d["rule"] != "HB-RACE"
        for t in payload["targets"]
        for d in t["diagnostics"]
    )


# ----------------------------------------------------------------------
# validate="static"
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["simulated", "threaded", "vectorized"])
def test_parallelize_validate_static(backend):
    loop = repro.random_irregular_loop(120, seed=4)
    result, plan = repro.parallelize(
        loop, backend=backend, processors=4, validate="static"
    )
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["race_check"]["passed"] is True
    assert isinstance(result.extras["lint"], list)


def test_parallelize_rejects_unknown_validate_mode():
    loop = repro.make_test_loop(16, 2, 8)
    with pytest.raises(ValueError, match="unknown validate mode"):
        repro.parallelize(loop, validate="dynamic")


def test_make_runner_validate_wraps_runner():
    runner = make_runner("threaded", processors=4, validate="static")
    assert isinstance(runner, ValidatingRunner)
    assert runner.name == "validating(threaded)"
    loop = repro.make_test_loop(80, 2, 8)
    result = runner.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["race_check"]["checked_edges"] > 0
    with pytest.raises(ValueError, match="unknown validate mode"):
        make_runner("threaded", validate="always")


def test_validating_runner_wraps_arbitrary_runner_instance():
    loop = repro.random_irregular_loop(90, seed=6)
    inner = make_runner("simulated", processors=4)
    result, _plan = repro.parallelize(
        loop, backend=inner, validate="static", processors=4
    )
    assert np.array_equal(result.y, loop.run_sequential())
    assert result.extras["race_check"]["passed"] is True


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def test_write_baseline_then_suppress(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code, out = run_cli(capsys, "figure4:n=60,m=2,l=7", f"--write-baseline={baseline}")
    assert code == 0
    assert "wrote" in out
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    assert all(key.count("|") == 2 for key in payload["findings"])
    assert any(key.startswith("DOALL-ABLE|") for key in payload["findings"])

    # With the baseline, even --strict passes and findings are suppressed.
    code, out = run_cli(
        capsys, "figure4:n=60,m=2,l=7", "--strict", f"--baseline={baseline}"
    )
    assert code == 0
    assert "suppressed" in out
    assert "DOALL-ABLE" not in out

    # A different loop surfaces *new* findings past the baseline.
    code, out = run_cli(
        capsys, "figure4:n=80,m=2,l=7", "--strict", f"--baseline={baseline}"
    )
    assert code == 1
    assert "DOALL-ABLE" in out


def test_baseline_json_output_lists_suppressed(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    run_cli(capsys, "chain:n=40,d=1", f"--write-baseline={baseline}")
    code, out = run_cli(
        capsys, "chain:n=40,d=1", "--json", f"--baseline={baseline}"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["suppressed"] >= 1
    (target,) = payload["targets"]
    assert target["diagnostics"] == []
    assert all(key.count("|") == 2 for key in target["suppressed"])


def test_baseline_usage_errors(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"version": 1, "findings": []}')
    code = repro_main(
        [
            "lint",
            "chain:n=20,d=1",
            f"--baseline={baseline}",
            f"--write-baseline={baseline}",
        ]
    )
    capsys.readouterr()
    assert code == 2

    malformed = tmp_path / "bad.json"
    malformed.write_text('{"findings": "nope"}')
    code = repro_main(["lint", "chain:n=20,d=1", f"--baseline={malformed}"])
    capsys.readouterr()
    assert code == 2

    missing = tmp_path / "missing.json"
    code = repro_main(["lint", "chain:n=20,d=1", f"--baseline={missing}"])
    capsys.readouterr()
    assert code == 2


def test_repo_baseline_keeps_ci_gate_green(capsys):
    """The committed baseline must cover every finding in examples/ and
    workloads/ — the exact invocation the CI gate runs."""
    code, _out = run_cli(
        capsys,
        "examples/",
        "workloads/",
        "--strict",
        "--baseline=lint_baseline.json",
    )
    assert code == 0
