"""Tests for the COO builder."""

import numpy as np
import pytest

from repro.errors import MatrixFormatError
from repro.sparse.coo import COOBuilder


class TestCOOBuilder:
    def test_single_entries(self):
        b = COOBuilder(2, 3)
        b.add(0, 1, 2.0)
        b.add(1, 2, -1.0)
        A = b.to_csr()
        np.testing.assert_allclose(
            A.to_dense(), [[0, 2, 0], [0, 0, -1]]
        )

    def test_duplicates_summed(self):
        b = COOBuilder(1, 1)
        b.add(0, 0, 1.0)
        b.add(0, 0, 2.5)
        A = b.to_csr()
        assert A.nnz == 1
        assert A.get(0, 0) == 3.5

    def test_cancellation_keeps_pattern(self):
        """Exact zeros from cancellation stay in the pattern (ILU(0) needs
        pattern stability)."""
        b = COOBuilder(1, 1)
        b.add(0, 0, 1.0)
        b.add(0, 0, -1.0)
        A = b.to_csr()
        assert A.nnz == 1
        assert A.get(0, 0) == 0.0

    def test_add_block(self):
        b = COOBuilder(4, 4)
        b.add_block(1, 2, np.array([[1.0, 2.0], [3.0, 4.0]]))
        A = b.to_csr()
        assert A.get(1, 2) == 1.0
        assert A.get(2, 3) == 4.0
        assert A.nnz == 4

    def test_empty_builder(self):
        A = COOBuilder(3, 3).to_csr()
        assert A.nnz == 0
        assert A.shape == (3, 3)

    def test_square_default(self):
        assert COOBuilder(5).n_cols == 5

    def test_row_out_of_range(self):
        b = COOBuilder(2, 2)
        with pytest.raises(MatrixFormatError, match="row index"):
            b.add(2, 0, 1.0)

    def test_col_out_of_range(self):
        b = COOBuilder(2, 2)
        with pytest.raises(MatrixFormatError, match="col index"):
            b.add(0, -1, 1.0)

    def test_batch_length_mismatch(self):
        b = COOBuilder(2, 2)
        with pytest.raises(MatrixFormatError, match="batch length"):
            b.add_batch([0, 1], [0], [1.0, 2.0])

    def test_entry_count_before_summing(self):
        b = COOBuilder(2, 2)
        b.add(0, 0, 1.0)
        b.add(0, 0, 1.0)
        assert b.entry_count == 2
        assert b.to_csr().nnz == 1

    def test_rows_sorted_in_result(self):
        b = COOBuilder(2, 4)
        b.add(1, 3, 1.0)
        b.add(1, 0, 2.0)
        b.add(0, 2, 3.0)
        A = b.to_csr()
        cols, _ = A.row(1)
        np.testing.assert_array_equal(cols, [0, 3])
