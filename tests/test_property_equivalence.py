"""Property-based tests: every parallel strategy is semantically equal to
the sequential oracle, for arbitrary runtime-dependence structures.

This is the library's central contract (DESIGN.md §6).  Hypothesis drives
the loop generator through sizes, term densities, init kinds, seeds,
processor counts, and schedules.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.threaded import ThreadedRunner
from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop

loop_params = st.fixed_dictionaries(
    {
        "n": st.integers(0, 80),
        "max_terms": st.integers(0, 5),
        "y_extra": st.integers(0, 12),
        "seed": st.integers(0, 10_000),
        "external_init": st.booleans(),
    }
)


def close(a, b):
    np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


@given(
    params=loop_params,
    processors=st.integers(1, 24),
    schedule=st.sampled_from(["cyclic", "block", "dynamic", "guided"]),
    chunk=st.integers(1, 8),
)
@settings(max_examples=120, deadline=None)
def test_preprocessed_doacross_matches_oracle(
    params, processors, schedule, chunk
):
    loop = random_irregular_loop(**params)
    runner = PreprocessedDoacross(
        processors=processors, schedule=schedule, chunk=chunk
    )
    close(runner.run(loop).y, loop.run_sequential())


@given(params=loop_params, processors=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_doconsider_matches_oracle(params, processors):
    loop = random_irregular_loop(**params)
    result = Doconsider(processors=processors).run(loop)
    close(result.y, loop.run_sequential())


@given(
    params=loop_params,
    processors=st.integers(1, 12),
    block=st.integers(1, 90),
)
@settings(max_examples=60, deadline=None)
def test_stripmined_matches_oracle(params, processors, block):
    loop = random_irregular_loop(**params)
    runner = PreprocessedDoacross(processors=processors)
    close(runner.run_stripmined(loop, block=block).y, loop.run_sequential())


@given(
    n=st.integers(1, 60),
    m=st.integers(1, 4),
    l=st.integers(1, 14),
    processors=st.integers(1, 16),
    linear=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_figure4_standard_and_linear_match_oracle(n, m, l, processors, linear):
    loop = make_test_loop(n=n, m=m, l=l)
    runner = PreprocessedDoacross(processors=processors)
    close(runner.run(loop, linear=linear).y, loop.run_sequential())


@given(params=loop_params, threads=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_threaded_backend_matches_oracle(params, threads):
    loop = random_irregular_loop(**params)
    y = ThreadedRunner(threads=threads).run_preprocessed(loop).y
    close(y, loop.run_sequential())


@given(params=loop_params)
@settings(max_examples=40, deadline=None)
def test_all_simulated_strategies_agree_with_each_other(params):
    """Cross-strategy agreement: natural, reordered, and strip-mined runs
    all produce bit-identical results (same term order per iteration)."""
    loop = random_irregular_loop(**params)
    runner = PreprocessedDoacross(processors=5)
    natural = runner.run(loop).y
    reordered = Doconsider(doacross=runner).run(loop).y
    stripmined = runner.run_stripmined(loop, block=max(1, loop.n // 3)).y
    np.testing.assert_array_equal(natural, reordered)
    np.testing.assert_array_equal(natural, stripmined)
