"""Cross-backend conformance matrix.

Every execution path — sequential oracle, simulated machine, real
threads, vectorized wavefronts, shared-memory processes, speculative
chunk rollback — must produce the *bitwise identical* ``y`` on the same
loop: the executors all sum a given iteration's terms in the same order,
so there is no associativity slack to hide behind (DESIGN.md §3).  The
matrix crosses the six backends with five workload families:

- ``chain`` — uniform-distance recurrence (the classic doacross shape);
- ``stencil`` — forward substitution over ILU(0) of a five-point
  Laplacian (the Table-1 substrate);
- ``gather-scatter`` — runtime permutation write with random reads
  (Figure 1: dependence known only at run time);
- the ``proven-affine`` portfolio (``workloads/proven_affine.py``) —
  loops the symbolic engine proves, so elision paths stay conformant;
- the ``symbolic-frontier`` portfolio
  (``workloads/symbolic_frontier.py``) — closed-form loops the engine
  honestly declines, plus the runtime-only fallback.

Alongside values, the matrix pins the RunResult metadata contract every
backend must honor (loop name, y shape, processor count, a real
wall-clock or cycle accounting).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.backends import MultiprocRunner, make_runner
from repro.core.results import RunResult
from repro.core.sequential import run_reference
from repro.lint.cli import loops_from_file
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop
from repro.workloads.synthetic import chain_loop, random_irregular_loop

_REPO = Path(__file__).resolve().parent.parent


def _stencil_loop(nx: int = 16, ny: int = 16):
    A = five_point(nx, ny)
    L, _upper = ilu0(A)
    rhs = np.arange(1.0, A.n_rows + 1) / A.n_rows
    return lower_solve_loop(L, rhs, name=f"stencil-trisolve-{nx}x{ny}")


def _workloads() -> dict:
    loops = {
        "chain": chain_loop(240, 3),
        "stencil": _stencil_loop(),
        "gather-scatter": random_irregular_loop(200, seed=5),
        "gather-scatter-external": random_irregular_loop(
            150, seed=9, external_init=True
        ),
    }
    for stem in ("proven_affine", "symbolic_frontier"):
        portfolio = loops_from_file(_REPO / "workloads" / f"{stem}.py")
        for name, loop in portfolio.items():
            loops[f"{stem.replace('_', '-')}:{name}"] = loop
    return loops


WORKLOADS = _workloads()

#: The real-concurrency and simulated execution paths; the sequential
#: oracle is the reference every cell is compared against.
BACKENDS = ("simulated", "threaded", "vectorized", "multiproc", "speculative")


@pytest.fixture(scope="module")
def multiproc_runner():
    """One persistent 2-worker pool for the whole matrix — the session
    LRU (more workloads than ``max_sessions``) gets exercised too."""
    runner = MultiprocRunner(workers=2)
    yield runner
    runner.close()


def _runner(backend: str, multiproc_runner):
    if backend == "multiproc":
        return multiproc_runner
    return make_runner(backend, processors=2)


def _check_metadata(result: RunResult, loop, backend: str) -> None:
    assert isinstance(result, RunResult)
    assert result.loop_name == loop.name
    assert result.strategy, f"{backend} returned an empty strategy label"
    assert result.processors >= 1
    assert result.y.shape == (loop.y_size,)
    assert result.y.dtype == np.float64
    if result.wall_seconds is None:
        assert result.total_cycles > 0, (
            f"{backend} reported neither wall clock nor cycles"
        )
    else:
        assert result.wall_seconds > 0


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_sequential_reference_metadata(workload):
    loop = WORKLOADS[workload]
    result = run_reference(loop)
    _check_metadata(result, loop, "sequential")
    assert result.strategy == "sequential"
    assert result.processors == 1
    assert np.array_equal(result.y, loop.run_sequential())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_matrix_cell_bitwise_equals_oracle(
    workload, backend, multiproc_runner
):
    loop = WORKLOADS[workload]
    runner = _runner(backend, multiproc_runner)
    result = runner.run(loop)
    reference = loop.run_sequential()
    assert np.array_equal(result.y, reference), (
        f"{backend} diverged from the sequential oracle on {workload}"
    )
    _check_metadata(result, loop, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matrix_cell_is_rerunnable(backend, multiproc_runner):
    """Scratch state (flags, renamed arrays, shared-memory sessions) must
    reset between runs: the second run is bitwise equal to the first."""
    loop = WORKLOADS["gather-scatter"]
    runner = _runner(backend, multiproc_runner)
    first = runner.run(loop)
    second = runner.run(loop)
    assert np.array_equal(first.y, second.y)
    assert np.array_equal(second.y, loop.run_sequential())


@pytest.mark.slow
@pytest.mark.parametrize(
    "backend", ("threaded", "vectorized", "multiproc", "speculative")
)
def test_large_stencil_conformance(backend, multiproc_runner):
    """The wall-clock backends on a 4096-iteration stencil solve — big
    enough that chunking, wavefront batching, and the busy-wait protocol
    all engage for real."""
    loop = _stencil_loop(64, 64)
    runner = _runner(backend, multiproc_runner)
    result = runner.run(loop)
    assert np.array_equal(result.y, loop.run_sequential())
