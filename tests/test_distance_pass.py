"""The DistancePass: proof-carrying group-synchronous sync elision.

Covers the planning decision (:func:`plan_distance_elision` and the
pass's ``distance_elision`` artifact) and the execution contract: every
distance-elided schedule must run under ``validate="sanitize"`` without
a single race report, produce output bitwise-identical to the
sequential oracle, set/check **zero** post/wait flags, and account one
barrier per iteration group.
"""

import numpy as np
import pytest

from repro.backends.cache import InspectorCache
from repro.core.sequential import run_reference
from repro.passes.distance import plan_distance_elision
from repro.passes.execute import plan_loop, run_with_spec
from repro.passes.spec import PlanSpec
from repro.workloads.synthetic import (
    affine_loop,
    chain_loop,
    random_irregular_loop,
)


def _counters(result) -> dict:
    assert result.telemetry is not None
    return result.telemetry.metrics.as_dict()["counters"]


def _stencil(n: int, d: int):
    """Variable reads at distances d and 2d: provable min_distance d."""
    return affine_loop(
        n, (1, 0), [(1, -d), (1, -2 * d)], name=f"stencil(n={n},d={d})"
    )


# ----------------------------------------------------------------------
# The planning decision
# ----------------------------------------------------------------------
def test_threaded_group_is_the_proven_bound():
    decision = plan_distance_elision(
        chain_loop(400, 8), "threaded", None, natural_order=True
    )
    assert decision is not None
    assert decision["min_distance"] == 8
    assert decision["group"] == 8
    assert decision["verdict"] == "constant-distance"


def test_multiproc_group_is_chunk_aligned_down():
    chain = chain_loop(400, 8)
    decision = plan_distance_elision(chain, "multiproc", 3, natural_order=True)
    assert decision is not None
    assert decision["group"] == 6  # 3 * (8 // 3): strips never straddle


def test_multiproc_requires_a_chunk_no_larger_than_the_bound():
    chain = chain_loop(400, 8)
    assert plan_distance_elision(chain, "multiproc", None, natural_order=True) is None
    assert plan_distance_elision(chain, "multiproc", 12, natural_order=True) is None


def test_no_elision_outside_natural_order_or_group_backends():
    chain = chain_loop(400, 8)
    assert plan_distance_elision(chain, "threaded", None, natural_order=False) is None
    assert plan_distance_elision(chain, "simulated", None, natural_order=True) is None


def test_no_elision_without_a_usable_bound():
    # Distance 1: grouping degenerates to sequential pairs — keep flags.
    assert (
        plan_distance_elision(chain_loop(64, 1), "threaded", None, natural_order=True)
        is None
    )
    # Runtime subscripts: the battery proves nothing.
    assert (
        plan_distance_elision(
            random_irregular_loop(64, seed=2), "threaded", None, natural_order=True
        )
        is None
    )


def test_certificate_carries_the_machine_checkable_evidence():
    decision = plan_distance_elision(
        chain_loop(400, 8), "threaded", None, natural_order=True
    )
    cert = decision["certificate"]
    assert cert["loop"] == "chain(n=400,d=8)"
    assert cert["min_distance"] == 8
    assert cert["vectors"][0]["test"] == "deptest-strong-siv"
    assert cert["vectors"][0]["steps"], "certificate must embed the proof"


# ----------------------------------------------------------------------
# The pass inside the pipeline
# ----------------------------------------------------------------------
def test_pass_publishes_the_artifact_only_under_analyze():
    chain = chain_loop(400, 8)
    spec = PlanSpec(backend="threaded", processors=4, analyze="symbolic")
    plan = plan_loop(chain, spec)
    artifact = plan.artifacts["distance_elision"]
    assert artifact is not None and artifact["group"] == 8
    # No symbolic analysis requested: the protocol must run as planned.
    bare = plan_loop(chain, PlanSpec(backend="threaded", processors=4))
    assert bare.artifacts.get("distance_elision") is None


def test_pass_declines_under_doconsider_reordering():
    # The bound is on iteration numbers; a wavefront reorder voids it.
    plan = plan_loop(
        chain_loop(400, 8),
        PlanSpec(
            backend="threaded",
            processors=4,
            analyze="symbolic",
            reorder="doconsider",
        ),
    )
    assert plan.artifacts["distance_elision"] is None


# ----------------------------------------------------------------------
# Execution: sanitize-clean, oracle-identical, zero flag traffic
# ----------------------------------------------------------------------
CASES = [
    ("threaded", dict(processors=4), chain_loop(400, 8), 8),
    ("threaded", dict(processors=4), _stencil(400, 6), 6),
    ("multiproc", dict(processors=2, chunk=4), chain_loop(400, 8), 8),
    ("multiproc", dict(processors=2, chunk=3), _stencil(400, 6), 6),
    ("vectorized", dict(), chain_loop(400, 8), 8),
    ("vectorized", dict(), _stencil(400, 6), 6),
]


@pytest.mark.parametrize(
    "backend,kwargs,loop,distance",
    CASES,
    ids=[f"{b}-{l.name.split('(')[0]}" for b, _k, l, _d in CASES],
)
def test_elided_schedule_is_sanitize_clean_and_oracle_identical(
    backend, kwargs, loop, distance
):
    spec = PlanSpec(
        backend=backend,
        analyze="symbolic",
        validate="sanitize",  # raises SanitizerError on any race
        observe=True,
        **kwargs,
    )
    result, _plan = run_with_spec(loop, spec, cache=InspectorCache())

    oracle = run_reference(loop).y
    np.testing.assert_array_equal(result.y, oracle)

    elision = result.extras["distance_elision"]
    assert elision["min_distance"] == distance
    assert "certificate" not in elision  # extras stay human-sized

    chunk = kwargs.get("chunk")
    expected_group = (
        chunk * (distance // chunk) if backend == "multiproc" else distance
    )
    assert elision["group"] == expected_group

    counters = _counters(result)
    if backend == "vectorized":
        # The vectorized backend never ran a flag protocol; the group
        # shows up as widened wavefront levels instead.
        assert result.extras["distance_group"] == expected_group
    else:
        assert counters.get("flag_sets", 0) == 0
        assert counters.get("flag_checks", 0) == 0
        assert counters["sync_elisions"] > 0
        assert counters["group_barriers"] == -(-loop.n // expected_group)


@pytest.mark.parametrize("backend,kwargs", [
    ("threaded", dict(processors=4)),
    ("multiproc", dict(processors=2, chunk=4)),
])
def test_baseline_protocol_still_runs_without_analyze(backend, kwargs):
    chain = chain_loop(400, 8)
    spec = PlanSpec(backend=backend, observe=True, **kwargs)
    result, _plan = run_with_spec(chain, spec, cache=InspectorCache())
    np.testing.assert_array_equal(result.y, run_reference(chain).y)
    assert "distance_elision" not in result.extras
    counters = _counters(result)
    assert counters.get("flag_sets", 0) + counters.get("flag_checks", 0) > 0


def test_undersized_bound_keeps_the_flags_on_multiproc():
    # chunk 4 > min_distance 3: grouping would need straddling strips —
    # the pass must decline and the flag protocol must survive.
    chain = chain_loop(200, 3)
    spec = PlanSpec(
        backend="multiproc",
        processors=2,
        chunk=4,
        analyze="symbolic",
        validate="sanitize",
        observe=True,
    )
    result, _plan = run_with_spec(chain, spec, cache=InspectorCache())
    assert "distance_elision" not in result.extras
    np.testing.assert_array_equal(result.y, run_reference(chain).y)
