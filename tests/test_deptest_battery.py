"""Unit tests for the classical dependence-test battery.

Each test pins one rule path of :mod:`repro.analysis.deptest.battery`:
ZIV on constant pairs, the weak-zero-write SIV family, strong SIV on
uniform chains, GCD refutation, Banerjee bounds on variable-distance
loops, the congruence/interval refutations for closed-form non-affine
subscripts, the honest MIV decline, and the inapplicable verdicts for
runtime subscripts.  Constant-write cases call the rule helpers directly
because :class:`IrregularLoop` (correctly) rejects non-injective writes
at construction for ``n > 1``.
"""

import numpy as np
import pytest

from repro.analysis.checker import check_proof
from repro.analysis.deptest.battery import (
    RULE_BANERJEE,
    RULE_CONGRUENCE,
    RULE_GCD,
    RULE_INACTIVE,
    RULE_INTERVAL,
    RULE_MIV,
    RULE_STRONG_SIV,
    RULE_WEAK_SIV,
    RULE_ZIV,
    _weak_zero_write,
    _ziv,
    run_battery,
)
from repro.analysis.deptest.battery import test_slot as slot_test
from repro.analysis.deptest.vectors import (
    DIR_ANY,
    DIR_NONE,
    DependenceVector,
    direction_string,
)
from repro.ir.accesses import ReadSlot
from repro.ir.subscript import Add, Const, Index, IndirectSubscript, Mod, Mul
from repro.workloads.synthetic import (
    affine_loop,
    chain_loop,
    random_irregular_loop,
)


# ----------------------------------------------------------------------
# Direction strings
# ----------------------------------------------------------------------
def test_direction_string_covers_all_subsets():
    assert direction_string(True, True, True) == "<=>"
    assert direction_string(True, False, False) == "<"
    assert direction_string(False, True, True) == "=>"
    assert direction_string(False, False, False) == DIR_NONE


def test_vector_may_carry_true_semantics():
    lt = DependenceVector(0, RULE_ZIV, True, "<")
    anti = DependenceVector(0, RULE_ZIV, True, ">")
    unknown = DependenceVector(0, RULE_MIV, True, DIR_ANY)
    declined = DependenceVector(0, RULE_MIV, False, DIR_ANY)
    assert lt.may_carry_true
    assert not anti.may_carry_true
    assert unknown.may_carry_true
    assert declined.may_carry_true  # inapplicable must stay conservative


# ----------------------------------------------------------------------
# ZIV (both subscripts constant)
# ----------------------------------------------------------------------
def test_ziv_refutes_distinct_constants():
    vec = _ziv(0, 3, 5, 16, 0, 16, ())
    assert vec.test == RULE_ZIV
    assert vec.direction == DIR_NONE
    assert vec.min_distance is None
    assert not vec.may_carry_true
    assert vec.steps[0].checks[0].kind == "ne"


def test_ziv_alias_everywhere_over_the_full_range():
    vec = _ziv(0, 3, 3, 16, 0, 16, ())
    assert vec.direction == "<=>"
    assert vec.min_distance == 1  # distance 1 pairs exist, nothing better
    assert vec.distance is None  # no single shared distance


def test_ziv_last_iteration_reader_cannot_see_an_anti():
    # Reader active only at i = n-1: a writer after it does not exist.
    vec = _ziv(0, 3, 3, 16, 15, 16, ())
    assert vec.direction == "<="


def test_ziv_via_test_slot_on_a_singleton_loop():
    # n == 1 is the only loop size where a constant write is injective.
    loop = affine_loop(1, (0, 0), [(0, 0)], name="ziv1")
    vec = slot_test(loop, 0)
    assert vec.test == RULE_ZIV
    assert vec.direction == "="  # only the intra-iteration pair exists
    assert not vec.may_carry_true


# ----------------------------------------------------------------------
# Weak-zero-write SIV (constant write, strided read)
# ----------------------------------------------------------------------
def test_weak_zero_write_gcd_refutes_non_divisible_offset():
    # read 2*i never lands on the constant element 5.
    vec = _weak_zero_write(0, 5, 2, 0, 16, 0, 16, ())
    assert vec.test == RULE_GCD
    assert vec.direction == DIR_NONE
    assert vec.steps[0].checks[0].kind == "not-divides"


def test_weak_zero_write_refutes_out_of_range_reader():
    # The only aliasing reader would be i = 40, outside [0, 16).
    vec = _weak_zero_write(0, 40, 1, 0, 16, 0, 16, ())
    assert vec.test == RULE_WEAK_SIV
    assert vec.direction == DIR_NONE
    assert vec.steps[0].checks[0].kind == "ge"


def test_weak_zero_write_single_reader_mid_range():
    vec = _weak_zero_write(0, 5, 1, 0, 16, 0, 16, ())
    assert vec.test == RULE_WEAK_SIV
    assert vec.direction == "<=>"
    assert vec.min_distance == 1


def test_weak_zero_write_first_iteration_reader_has_no_true_dep():
    # i* = 0: no earlier writer exists, so '<' is impossible.
    vec = _weak_zero_write(0, 0, 1, 0, 16, 0, 16, ())
    assert vec.direction == "=>"
    assert vec.min_distance is None
    assert not vec.may_carry_true


# ----------------------------------------------------------------------
# Strong SIV / GCD / Banerjee (affine, non-constant)
# ----------------------------------------------------------------------
def test_strong_siv_exact_distance_on_a_chain():
    vec = slot_test(chain_loop(64, 8), 0)
    assert vec.test == RULE_STRONG_SIV
    assert vec.direction == "<"
    assert vec.distance == 8
    assert vec.may_carry_true


def test_strong_siv_anti_only_forward_read():
    # y[i] reads y[i+3]: writer is always *later* — pure anti.
    vec = slot_test(affine_loop(16, (1, 0), [(1, 3)], name="anti"), 0)
    assert vec.test == RULE_STRONG_SIV
    assert vec.direction == ">"
    assert vec.distance == -3
    assert not vec.may_carry_true


def test_gcd_refutes_incommensurate_strides():
    # write 2i, read 2i - 21: gcd(2,2)=2 does not divide 21.
    vec = slot_test(affine_loop(32, (2, 0), [(2, -21)], name="gcd"), 0)
    assert vec.test == RULE_GCD
    assert vec.direction == DIR_NONE
    assert not vec.may_carry_true


def test_banerjee_bounds_a_variable_distance_loop():
    # write i, read 2i - 21 on n=15: dependent pairs have distances
    # 21 - i_r for i_r in [11, 14] -> {7, 8, 9, 10}; exact distance
    # does not exist but the bound 7 does.
    vec = slot_test(affine_loop(15, (1, 0), [(2, -21)], name="ban"), 0)
    assert vec.test == RULE_BANERJEE
    assert vec.direction == "<"
    assert vec.distance is None
    assert vec.min_distance == 7


def test_weak_crossing_siv_all_three_directions():
    # write i, read 20 - i on n=16 crosses at i = 10: anti before,
    # intra at the crossing, true after.  The bound comes from the
    # continuous relaxation (delta >= 1), so it is 1 here even though
    # the smallest integral true distance is 2 — sound, not tight.
    vec = slot_test(affine_loop(16, (1, 0), [(-1, 20)], y_extra=5), 0)
    assert vec.test == RULE_WEAK_SIV
    assert vec.direction == "<=>"
    assert vec.distance is None
    assert vec.min_distance == 1


def test_inactive_slot_refutes_without_running_tests():
    loop = affine_loop(16, (1, 0), [(1, 0, 20, None)], name="inactive")
    vec = slot_test(loop, 0)
    assert vec.test == RULE_INACTIVE
    assert vec.direction == DIR_NONE


# ----------------------------------------------------------------------
# Closed-form but non-affine: congruence / interval / MIV
# ----------------------------------------------------------------------
def test_congruence_refutes_disjoint_residues():
    # write 2i+1 (always odd) vs read 2*(i mod 8) (always even).
    loop = affine_loop(
        32,
        Add(Mul(Index(), Const(2)), Const(1)),
        [Mul(Mod(Index(), 8), Const(2))],
        name="cong",
    )
    vec = slot_test(loop, 0)
    assert vec.test == RULE_CONGRUENCE
    assert vec.direction == DIR_NONE


def test_interval_refutes_disjoint_ranges():
    # write i in [0, 31] vs read (i mod 8) + 40 in [40, 47].
    loop = affine_loop(
        32,
        Index(),
        [Add(Mod(Index(), 8), Const(40))],
        y_extra=16,
        name="intv",
    )
    vec = slot_test(loop, 0)
    assert vec.test == RULE_INTERVAL
    assert vec.direction == DIR_NONE


def test_miv_declines_honestly_with_the_weakest_bound():
    # write i vs read i mod 8: ranges and residues overlap; the battery
    # must not refute and must fall back to the trivial bound.
    vec = slot_test(affine_loop(32, Index(), [Mod(Index(), 8)]), 0)
    assert vec.test == RULE_MIV
    assert vec.applicable
    assert vec.direction == DIR_ANY
    assert vec.min_distance == 1


# ----------------------------------------------------------------------
# Inapplicable verdicts (runtime subscripts)
# ----------------------------------------------------------------------
def test_runtime_read_table_yields_single_inapplicable_vector():
    result = run_battery(random_irregular_loop(32, seed=3))
    assert len(result.vectors) == 1
    assert not result.vectors[0].applicable
    assert not result.applicable
    assert result.min_distance is None
    assert result.may_carry_true()  # conservative
    assert "inapplicable" in result.describe()


def test_indirect_slot_subscript_is_inapplicable():
    idx = np.zeros(16, dtype=np.int64)
    loop = affine_loop(
        16, (1, 0), [ReadSlot(IndirectSubscript(idx))], name="ind"
    )
    vec = slot_test(loop, 0)
    assert not vec.applicable
    assert vec.direction == DIR_ANY
    assert vec.may_carry_true


def test_loop_without_reads_has_no_vectors():
    result = run_battery(affine_loop(16, (1, 0), [], name="noreads"))
    assert result.vectors == ()
    assert result.min_distance is None
    assert not result.may_carry_true()


# ----------------------------------------------------------------------
# BatteryResult composition
# ----------------------------------------------------------------------
def test_loop_min_distance_is_the_weakest_slot_bound():
    loop = affine_loop(64, (1, 0), [(1, -8), (1, -3)], name="two")
    result = run_battery(loop)
    assert [v.distance for v in result.vectors] == [8, 3]
    assert result.min_distance == 3
    assert result.applicable


def test_anti_only_slots_do_not_contribute_a_bound():
    result = run_battery(affine_loop(16, (1, 0), [(1, 3)], name="anti"))
    assert result.min_distance is None
    assert not result.may_carry_true()


def test_battery_result_round_trips_and_signatures():
    r8 = run_battery(chain_loop(64, 8))
    d = r8.as_dict()
    assert d["min_distance"] == 8
    assert d["vectors"][0]["test"] == RULE_STRONG_SIV
    assert d["vectors"][0]["steps"], "proof steps must serialize"
    assert "distance=8" in r8.describe()
    assert r8.signature() == run_battery(chain_loop(64, 8)).signature()
    assert r8.signature() != run_battery(chain_loop(64, 3)).signature()


@pytest.mark.parametrize(
    "loop",
    [
        chain_loop(64, 8),
        affine_loop(15, (1, 0), [(2, -21)], name="ban"),
        affine_loop(32, (2, 0), [(2, -21)], name="gcd"),
        affine_loop(32, Index(), [Mod(Index(), 8)], name="miv"),
    ],
    ids=["chain", "banerjee", "gcd", "miv"],
)
def test_battery_backed_verdicts_carry_sound_proofs(loop):
    assert check_proof(loop) == []


def test_battery_bound_matches_brute_force_on_the_banerjee_loop():
    loop = affine_loop(15, (1, 0), [(2, -21)], name="ban")
    writes = loop.write_subscript.materialize(loop.n)
    reads = loop.read_slots[0].subscript.materialize(loop.n)
    true_dists = [
        r - w
        for w in range(loop.n)
        for r in range(loop.n)
        if w < r and writes[w] == reads[r]
    ]
    assert min(true_dists) == run_battery(loop).min_distance
