"""The telemetry-driven perf doctor (ISSUE 8 tentpole, part 3).

Unit tests drive each diagnostic rule with synthetic telemetry; the
end-to-end acceptance test runs the issue's scenario — a narrow-wavefront
dependence chain on 8 threaded workers — and checks both that the doctor
flags it wait-bound and that the recommended backend is *measurably*
faster on the same loop.
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

from repro import chain_loop
from repro.backends import InspectorCache, make_runner
from repro.core.doacross import parallelize
from repro.obs import MetricsRegistry, Span, Telemetry
from repro.obs.spans import CAT_COMPUTE, CAT_PHASE, CAT_WAIT
from repro.obs.telemetry import CLOCK_WALL
from repro.passes import PlanSpec
from repro.perf.doctor import diagnose, diagnose_result
from repro.perf.findings import (
    FINDING_KINDS,
    SEV_CRITICAL,
    SEV_INFO,
    SEV_WARNING,
    Finding,
)


def telem(backend="threaded", spans=(), counters=None, gauges=None,
          hists=None):
    met = MetricsRegistry()
    for name, value in (counters or {}).items():
        met.count(name, value)
    for name, value in (gauges or {}).items():
        met.gauge(name, value)
    for name, values in (hists or {}).items():
        met.observe_many(name, values)
    return Telemetry(
        backend=backend, clock=CLOCK_WALL, spans=list(spans), metrics=met
    )


def lane(n, compute, wait=0.0, at=0.0):
    spans = [Span("compute", CAT_COMPUTE, at, at + compute, lane=n)]
    if wait:
        spans.append(
            Span("wait", CAT_WAIT, at + compute, at + compute + wait, lane=n)
        )
    return spans


def by_kind(findings):
    return {f.kind: f for f in findings}


class TestFindingObject:
    def test_rejects_unknown_kind_and_severity(self):
        with pytest.raises(ValueError, match="kind"):
            Finding(kind="mystery", severity=SEV_INFO, summary="x")
        with pytest.raises(ValueError, match="severity"):
            Finding(kind="wait_bound", severity="mild", summary="x")

    def test_as_dict_json_safe_and_one_line(self):
        import json

        f = Finding(
            kind="wait_bound",
            severity=SEV_CRITICAL,
            summary="waits dominate",
            evidence={"mean_wait_fraction": 0.9},
            recommendation={"backend": "vectorized"},
        )
        assert json.loads(json.dumps(f.as_dict())) == f.as_dict()
        line = f.one_line()
        assert "[critical]" in line and "backend='vectorized'" in line


class TestWaitBound:
    def test_critical_above_half(self):
        t = telem(spans=lane(0, compute=1.0, wait=9.0))
        finding = by_kind(diagnose(t))["wait_bound"]
        assert finding.severity == SEV_CRITICAL
        assert finding.recommendation == {"backend": "vectorized"}
        assert finding.evidence["mean_wait_fraction"] == pytest.approx(0.9)

    def test_warning_between_thresholds(self):
        t = telem(spans=lane(0, compute=7.0, wait=3.0))
        assert by_kind(diagnose(t))["wait_bound"].severity == SEV_WARNING

    def test_low_wait_share_is_healthy(self):
        t = telem(spans=lane(0, compute=9.5, wait=0.5))
        assert "wait_bound" not in by_kind(diagnose(t))

    def test_batched_backend_not_judged_wait_bound(self):
        # The vectorized backend has no per-element waits; the rule only
        # applies to point-to-point protocols.
        t = telem(backend="vectorized", spans=lane(0, 1.0, wait=9.0))
        assert "wait_bound" not in by_kind(diagnose(t))


class TestLoadImbalance:
    def test_skewed_lane_flagged(self):
        t = telem(spans=lane(0, compute=10.0) + lane(1, compute=1.0))
        finding = by_kind(diagnose(t))["load_imbalance"]
        assert finding.severity == SEV_WARNING
        assert finding.evidence["max_lane"] == 0
        assert finding.evidence["max_over_mean"] == pytest.approx(10 / 5.5)

    def test_balanced_lanes_healthy(self):
        t = telem(spans=lane(0, compute=5.0) + lane(1, compute=4.5))
        assert "load_imbalance" not in by_kind(diagnose(t))

    def test_single_lane_never_imbalanced(self):
        t = telem(spans=lane(0, compute=5.0))
        assert "load_imbalance" not in by_kind(diagnose(t))


class TestNarrowWavefronts:
    def test_chain_widths_critical_for_many_workers(self):
        t = telem(
            backend="vectorized",
            hists={"level_width": [1.0, 1.0, 1.0, 2.0]},
            gauges={"processors": 8},
        )
        finding = by_kind(diagnose(t))["narrow_wavefronts"]
        assert finding.severity == SEV_CRITICAL
        assert finding.recommendation == {"backend": "threaded"}

    def test_moderate_widths_warn(self):
        t = telem(
            backend="vectorized",
            hists={"level_width": [4.0, 4.0, 4.0]},
            gauges={"processors": 8},
        )
        assert by_kind(diagnose(t))["narrow_wavefronts"].severity == SEV_WARNING

    def test_wide_wavefronts_healthy(self):
        t = telem(
            backend="vectorized",
            hists={"level_width": [64.0, 128.0]},
            gauges={"processors": 8},
        )
        assert "narrow_wavefronts" not in by_kind(diagnose(t))

    def test_processors_argument_overrides_gauge(self):
        t = telem(backend="vectorized", hists={"level_width": [4.0, 4.0]})
        assert "narrow_wavefronts" not in by_kind(diagnose(t, processors=1))
        assert "narrow_wavefronts" in by_kind(diagnose(t, processors=16))


class TestInspectorDominant:
    def phases(self, inspector, executor):
        return [
            Span("inspector", CAT_PHASE, 0.0, inspector, lane=0),
            Span("executor", CAT_PHASE, inspector, inspector + executor,
                 lane=0),
        ]

    def test_dominant_inspector_flagged(self):
        t = telem(spans=self.phases(6.0, 2.0))
        finding = by_kind(diagnose(t))["inspector_dominant"]
        assert finding.recommendation == {"analyze": "symbolic"}
        assert finding.evidence["inspector_share"] == pytest.approx(0.75)

    def test_amortized_inspector_healthy(self):
        t = telem(spans=self.phases(1.0, 9.0))
        assert "inspector_dominant" not in by_kind(diagnose(t))

    def test_elided_inspector_not_judged(self):
        t = telem(spans=self.phases(6.0, 2.0))
        findings = diagnose(t, extras={"inspector_elided": True})
        assert "inspector_dominant" not in by_kind(findings)


class TestCacheAndEscalation:
    def test_cold_cache_is_info(self):
        t = telem(
            gauges={
                "inspector_cache_hits_total": 0,
                "inspector_cache_misses_total": 3,
            }
        )
        finding = by_kind(diagnose(t))["cache_cold"]
        assert finding.severity == SEV_INFO

    def test_warm_cache_healthy(self):
        t = telem(
            gauges={
                "inspector_cache_hits_total": 5,
                "inspector_cache_misses_total": 1,
            }
        )
        assert "cache_cold" not in by_kind(diagnose(t))

    def test_escalation_share_sets_severity(self):
        mostly = telem(
            backend="multiproc",
            counters={"wait_escalations": 8, "busy_waits": 10},
        )
        assert (
            by_kind(diagnose(mostly))["wait_escalation"].severity
            == SEV_WARNING
        )
        rare = telem(
            backend="multiproc",
            counters={"wait_escalations": 1, "busy_waits": 100},
        )
        assert by_kind(diagnose(rare))["wait_escalation"].severity == SEV_INFO

    def test_no_escalations_healthy(self):
        t = telem(backend="multiproc", counters={"busy_waits": 100})
        assert "wait_escalation" not in by_kind(diagnose(t))


class TestDiagnoseContract:
    def test_kinds_are_closed_vocabulary_and_sorted_by_severity(self):
        t = telem(
            spans=lane(0, compute=1.0, wait=9.0) + lane(1, compute=0.05),
            gauges={
                "inspector_cache_hits_total": 0,
                "inspector_cache_misses_total": 1,
            },
        )
        findings = diagnose(t)
        assert all(f.kind in FINDING_KINDS for f in findings)
        ranks = {"critical": 0, "warning": 1, "info": 2}
        severities = [ranks[f.severity] for f in findings]
        assert severities == sorted(severities)

    def test_diagnose_result_requires_telemetry(self):
        loop = chain_loop(50, 1)
        runner = make_runner(spec=PlanSpec(backend="vectorized"))
        result = runner.run(loop)
        with pytest.raises(ValueError, match="observe=True"):
            diagnose_result(result)

    def test_plan_spec_diagnose_attaches_findings(self):
        loop = chain_loop(120, 1)
        result, _ = parallelize(
            loop,
            spec=PlanSpec(backend="threaded", processors=4, diagnose=True),
        )
        assert result.telemetry is not None  # diagnose implies observe
        assert isinstance(result.extras["doctor"], list)
        for f in result.extras["doctor"]:
            assert set(f) == {
                "kind", "severity", "summary", "evidence", "recommendation",
            }


class TestDoctorCli:
    def test_builtin_loop_run_prints_findings(self, capsys):
        from repro.perf.cli import doctor_main

        assert doctor_main(
            ["chain:n=200,d=1", "--backend=threaded", "--processors=8"]
        ) == 0
        out = capsys.readouterr().out
        assert "wait_bound" in out
        assert "backend=vectorized" in out

    def test_json_output_parses(self, capsys):
        import json

        from repro.perf.cli import doctor_main

        doctor_main(["chain:n=200,d=1", "--json"])
        blob = json.loads(capsys.readouterr().out)
        assert any(f["kind"] == "wait_bound" for f in blob["findings"])

    def test_saved_artifact_diagnosed(self, tmp_path, capsys):
        import json

        from repro.bench.registry import write_artifact
        from repro.perf.cli import doctor_main

        loop = chain_loop(200, 1)
        result = make_runner(
            spec=PlanSpec(backend="threaded", processors=8, observe=True)
        ).run(loop)
        artifact = write_artifact(
            {
                "benchmark": "bench-x",
                "records": [{"backend": "threaded", "wall_seconds": 0.01}],
                "detail": {},
                "telemetry": result.telemetry.as_dict(),
            },
            tmp_path / "BENCH_x.json",
        )
        assert doctor_main([f"--telemetry={artifact}"]) == 0
        assert "wait_bound" in capsys.readouterr().out

    def test_saved_spans_jsonl_diagnosed(self, tmp_path, capsys):
        from repro.obs import write_spans_jsonl
        from repro.perf.cli import doctor_main

        loop = chain_loop(200, 1)
        result = make_runner(
            spec=PlanSpec(backend="threaded", processors=8, observe=True)
        ).run(loop)
        path = write_spans_jsonl(result.telemetry, tmp_path / "run.jsonl")
        assert doctor_main([f"--telemetry={path}"]) == 0
        assert "wait_bound" in capsys.readouterr().out

    def test_unreadable_telemetry_fails_cleanly(self, tmp_path, capsys):
        from repro.perf.cli import doctor_main

        assert doctor_main([f"--telemetry={tmp_path / 'nope.json'}"]) == 2
        assert "cannot load telemetry" in capsys.readouterr().out


class TestEndToEnd:
    """The issue's acceptance scenario: diagnose a wait-bound run, then
    verify the recommendation is measurably faster."""

    def test_recommendation_names_a_measurably_faster_backend(self):
        # A distance-1 chain serializes 8 threaded workers: every
        # iteration busy-waits on its predecessor's flag.
        loop = chain_loop(400, 1)
        result, _ = parallelize(
            loop,
            spec=PlanSpec(backend="threaded", processors=8, diagnose=True),
        )
        findings = {f["kind"]: f for f in result.extras["doctor"]}
        assert "wait_bound" in findings
        assert findings["wait_bound"]["severity"] in ("warning", "critical")
        recommended = findings["wait_bound"]["recommendation"]["backend"]
        assert recommended != "threaded"

        def median_wall(backend):
            # Warm runs (shared cache, min-of-3): the doctor's claim is
            # about steady-state executor speed, not cold preprocessing.
            cache = InspectorCache()
            runner = make_runner(
                spec=PlanSpec(backend=backend, processors=8), cache=cache
            )
            runner.run(loop)
            walls = []
            for _ in range(3):
                t0 = time.perf_counter()
                out = runner.run(loop)
                walls.append(time.perf_counter() - t0)
                assert np.array_equal(out.y, loop.run_sequential())
            return statistics.median(walls)

        assert median_wall(recommended) < median_wall("threaded")
