"""Tests for the normalized irregular-loop form and its sequential oracle."""

import numpy as np
import pytest

from repro.errors import InvalidLoopError, OutputDependenceError
from repro.ir.accesses import ReadTable
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE, IrregularLoop
from repro.ir.subscript import AffineSubscript, IndirectSubscript
from repro.machine.costs import WorkProfile


def simple_loop(write, reads, y_size=None, **kw):
    return IrregularLoop.from_arrays(write, reads, y_size=y_size, **kw)


class TestValidation:
    def test_output_dependence_detected(self):
        reads = ReadTable.from_lists([[], [], []])
        with pytest.raises(OutputDependenceError) as exc:
            simple_loop([0, 2, 0], reads)
        assert exc.value.index == 0
        assert (exc.value.first_writer, exc.value.second_writer) == (0, 2)

    def test_write_out_of_range(self):
        reads = ReadTable.from_lists([[]])
        with pytest.raises(InvalidLoopError, match="write index out of range"):
            IrregularLoop(
                n=1,
                y_size=1,
                write_subscript=IndirectSubscript([3]),
                reads=reads,
            )

    def test_read_out_of_range(self):
        reads = ReadTable.from_lists([[(9, 1.0)]])
        with pytest.raises(InvalidLoopError, match="read index out of range"):
            simple_loop([0], reads, y_size=1)

    def test_read_table_size_mismatch(self):
        reads = ReadTable.from_lists([[], []])
        with pytest.raises(InvalidLoopError, match="read table covers"):
            IrregularLoop(
                n=3,
                y_size=3,
                write_subscript=AffineSubscript(1, 0),
                reads=reads,
            )

    def test_external_init_requires_values(self):
        reads = ReadTable.from_lists([[]])
        with pytest.raises(InvalidLoopError, match="requires init_values"):
            simple_loop([0], reads, init_kind=INIT_EXTERNAL)

    def test_old_value_init_rejects_values(self):
        reads = ReadTable.from_lists([[]])
        with pytest.raises(InvalidLoopError, match="only allowed"):
            simple_loop(
                [0], reads, init_kind=INIT_OLD_VALUE, init_values=[1.0]
            )

    def test_init_values_length(self):
        reads = ReadTable.from_lists([[], []])
        with pytest.raises(InvalidLoopError):
            simple_loop(
                [0, 1],
                reads,
                init_kind=INIT_EXTERNAL,
                init_values=[1.0],
            )

    def test_y0_length(self):
        reads = ReadTable.from_lists([[]])
        with pytest.raises(InvalidLoopError):
            simple_loop([0], reads, y_size=2, y0=[1.0])

    def test_unknown_init_kind(self):
        reads = ReadTable.from_lists([[]])
        with pytest.raises(InvalidLoopError, match="init_kind"):
            simple_loop([0], reads, init_kind="bogus")


class TestSequentialOracle:
    def test_chain_recurrence(self):
        """y[i] = y[i] + 0.5 y[i-1]: hand-computed fixed sequence."""
        reads = ReadTable.from_lists(
            [[]] + [[(i - 1, 0.5)] for i in range(1, 4)]
        )
        loop = simple_loop([0, 1, 2, 3], reads, y0=np.ones(4))
        y = loop.run_sequential()
        np.testing.assert_allclose(y, [1.0, 1.5, 1.75, 1.875])

    def test_reads_see_latest_values(self):
        """Iteration 1 reads element 0 after iteration 0 updated it."""
        reads = ReadTable.from_lists([[], [(0, 1.0)]])
        loop = simple_loop(
            [0, 1],
            reads,
            init_kind=INIT_EXTERNAL,
            init_values=[10.0, 1.0],
            y0=np.zeros(2),
        )
        np.testing.assert_allclose(loop.run_sequential(), [10.0, 11.0])

    def test_antidependence_reads_old_value(self):
        """Iteration 0 reads element 1 before iteration 1 writes it."""
        reads = ReadTable.from_lists([[(1, 1.0)], []])
        loop = simple_loop(
            [0, 1],
            reads,
            init_kind=INIT_EXTERNAL,
            init_values=[0.0, 99.0],
            y0=np.array([0.0, 5.0]),
        )
        np.testing.assert_allclose(loop.run_sequential(), [5.0, 99.0])

    def test_intra_iteration_reads_partial_accumulator(self):
        """A term whose index equals this iteration's write target sees the
        partially accumulated value (the paper's check == 0 case)."""
        # y[0] starts at 2; term 1 adds 1*y[5]=3 -> acc 5;
        # term 2 adds 1*y[0] which is the live acc 5 -> acc 10.
        reads = ReadTable.from_lists([[(5, 1.0), (0, 1.0)]])
        y0 = np.zeros(6)
        y0[0] = 2.0
        y0[5] = 3.0
        loop = simple_loop([0], reads, y_size=6, y0=y0)
        np.testing.assert_allclose(loop.run_sequential()[0], 10.0)

    def test_term_order_matters_for_intra(self):
        """Reversing term order changes the intra-iteration result —
        confirming the oracle follows source order like the Fortran loop."""
        y0 = np.zeros(6)
        y0[0] = 2.0
        y0[5] = 3.0
        fwd = simple_loop(
            [0], ReadTable.from_lists([[(5, 1.0), (0, 1.0)]]), y_size=6, y0=y0
        ).run_sequential()
        rev = simple_loop(
            [0], ReadTable.from_lists([[(0, 1.0), (5, 1.0)]]), y_size=6, y0=y0
        ).run_sequential()
        assert fwd[0] == 10.0
        assert rev[0] == 7.0

    def test_empty_loop(self):
        loop = IrregularLoop(
            n=0,
            y_size=3,
            write_subscript=AffineSubscript(1, 0),
            reads=ReadTable.from_lists([]),
            y0=np.arange(3.0),
        )
        np.testing.assert_allclose(loop.run_sequential(), [0.0, 1.0, 2.0])


class TestConveniences:
    def test_from_arrays_infers_y_size(self):
        reads = ReadTable.from_lists([[(7, 1.0)], []])
        loop = simple_loop([0, 3], reads)
        assert loop.y_size == 8

    def test_with_name(self):
        reads = ReadTable.from_lists([[]])
        loop = simple_loop([0], reads, name="a")
        clone = loop.with_name("b")
        assert clone.name == "b"
        assert loop.name == "a"
        assert clone.write is loop.write

    def test_work_profile_attached(self):
        reads = ReadTable.from_lists([[]])
        profile = WorkProfile(overhead=9)
        loop = simple_loop([0], reads, work=profile)
        assert loop.work is profile

    def test_statically_analyzable_write(self):
        reads = ReadTable.from_lists([[]])
        affine = IrregularLoop(
            n=1,
            y_size=1,
            write_subscript=AffineSubscript(1, 0),
            reads=reads,
        )
        indirect = simple_loop([0], reads)
        assert affine.statically_analyzable_write()
        assert not indirect.statically_analyzable_write()

    def test_repr_mentions_name(self):
        reads = ReadTable.from_lists([[]])
        assert "myloop" in repr(simple_loop([0], reads, name="myloop"))

    def test_describe_reports_dependence_profile(self):
        from repro.workloads.testloop import make_test_loop

        text = make_test_loop(n=50, m=3, l=4).describe()
        assert "n=50" in text
        assert "true=" in text
        assert "intra=" in text
        assert "AffineSubscript" in text
        assert "distances 1..1" in text

    def test_describe_dependence_free(self):
        from repro.workloads.testloop import make_test_loop

        text = make_test_loop(n=20, m=1, l=3).describe()
        assert "true=0" in text
        assert "0% of iterations ordered" in text
