"""Tests for the linear-subscript doacross variant (paper §2.3)."""

import pytest

from repro.core.linear import LinearDoacross
from repro.errors import InvalidLoopError
from repro.machine.costs import CostModel
from repro.workloads.synthetic import random_irregular_loop
from repro.workloads.testloop import make_test_loop
from repro.sparse.stencils import five_point
from repro.sparse.ilu import ilu0
from repro.sparse.trisolve import lower_solve_loop
import numpy as np

from tests.conftest import assert_matches_oracle


class TestSemantics:
    @pytest.mark.parametrize("l", [2, 3, 4, 8, 13, 14])
    @pytest.mark.parametrize("m", [1, 4])
    def test_matches_oracle_on_figure4(self, runner16, m, l):
        loop = make_test_loop(n=120, m=m, l=l)
        result = runner16.run(loop, linear=True)
        assert_matches_oracle(result.y, loop)

    def test_matches_standard_variant_values(self, runner16):
        loop = make_test_loop(n=150, m=3, l=6)
        standard = runner16.run(loop)
        linear = runner16.run(loop, linear=True)
        np.testing.assert_allclose(standard.y, linear.y)

    def test_trisolve_identity_write_subscript(self, runner16):
        L, _ = ilu0(five_point(8, 8))
        rhs = np.ones(64)
        loop = lower_solve_loop(L, rhs)
        result = runner16.run(loop, linear=True)
        assert_matches_oracle(result.y, loop)

    def test_indirect_write_rejected(self, runner16):
        loop = random_irregular_loop(40, seed=0)
        with pytest.raises(InvalidLoopError, match="affine"):
            runner16.run(loop, linear=True)


class TestCostSavings:
    def test_no_inspector_phase(self, runner16):
        loop = make_test_loop(n=200, m=1, l=5)
        result = runner16.run(loop, linear=True)
        assert [p.name for p in result.phases] == [
            "executor",
            "postprocessor",
        ]
        assert result.breakdown.inspector == 0

    def test_strictly_cheaper_than_standard(self, runner16):
        """§2.3: eliminating the preprocessing phase (and one barrier)
        must show up as a strictly smaller makespan."""
        loop = make_test_loop(n=2000, m=1, l=7)
        standard = runner16.run(loop)
        linear = runner16.run(loop, linear=True)
        saved = standard.total_cycles - linear.total_cycles
        expected = standard.breakdown.inspector + CostModel().barrier(16)
        assert saved == expected

    def test_strategy_label(self, runner16):
        result = runner16.run(make_test_loop(n=50, m=1, l=4), linear=True)
        assert result.strategy == "linear-doacross"


class TestFacade:
    def test_linear_doacross_class(self):
        loop = make_test_loop(n=100, m=2, l=8)
        result = LinearDoacross(processors=8).run(loop)
        assert_matches_oracle(result.y, loop)
        assert result.breakdown.inspector == 0
