"""The ``profile`` command, the threaded smoke bench, and the benchmark
artifact schema gate."""

import json

import pytest

from repro.bench.bench_threaded import run_bench_threaded, write_bench_json
from repro.bench.schema import main as schema_main, validate_bench_payload
from repro.errors import TelemetryError
from repro.obs.cli import main as profile_main


SMALL = "--loop=figure4:n=200,m=2,l=8"


class TestProfileCommand:
    @pytest.mark.parametrize("backend", ("simulated", "threaded", "vectorized"))
    def test_table_output(self, capsys, backend):
        assert profile_main([f"--backend={backend}", SMALL]) == 0
        out = capsys.readouterr().out
        for phase in ("inspector", "executor", "postprocessor"):
            assert phase in out
        assert "metric" in out

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert (
            profile_main(
                ["--backend=threaded", SMALL, "--export=chrome", str(out_file)]
            )
            == 0
        )
        trace = json.loads(out_file.read_text())
        events = trace["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"X", "M"}
        for e in events:
            if e["ph"] == "X":
                assert {"name", "cat", "ts", "dur", "pid", "tid"} <= e.keys()
                assert e["ts"] >= 0 and e["dur"] >= 0
        assert trace["otherData"]["backend"] == "threaded"
        assert "wrote chrome export" in capsys.readouterr().out

    def test_jsonl_export(self, tmp_path, capsys):
        out_file = tmp_path / "spans.jsonl"
        assert (
            profile_main(
                ["--backend=vectorized", SMALL, "--export=jsonl", str(out_file)]
            )
            == 0
        )
        lines = out_file.read_text().strip().splitlines()
        assert json.loads(lines[0])["record"] == "telemetry"
        assert all(json.loads(line) for line in lines)

    def test_json_output_carries_telemetry(self, capsys):
        assert profile_main(["--backend=simulated", SMALL, "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["telemetry"]["clock"] == "cycles"
        assert blob["telemetry"]["spans"]

    def test_gantt_and_schedule_options(self, capsys):
        assert (
            profile_main(
                [
                    "--backend=simulated",
                    "--loop=chain:n=60,d=1",
                    "--processors=4",
                    "--schedule=cyclic",
                    "--chunk=1",
                    "--gantt",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "t = 0 .." in out
        assert "p0  |" in out

    def test_ignored_options_are_printed(self, capsys):
        assert (
            profile_main(["--backend=threaded", SMALL, "--schedule=block"])
            == 0
        )
        out = capsys.readouterr().out
        assert "ignored schedule='block'" in out or "ignored" in out

    @pytest.mark.parametrize(
        "argv",
        [
            ["--backend=quantum"],
            ["--loop=figure9:n=1"],
            ["--export=chrome"],  # missing output path
            ["--export=svg", "out.svg"],
            ["--frobnicate"],
            ["stray-positional"],
        ],
    )
    def test_bad_usage_exits_2(self, capsys, argv):
        assert profile_main(argv) == 2
        assert capsys.readouterr().out


class TestBenchThreaded:
    @pytest.fixture(scope="class")
    def bench(self):
        return run_bench_threaded(n=300)

    def test_shape_check_passes(self, bench):
        bench.check()
        assert bench.flag_sets == 300
        assert 0.0 <= bench.wait_fraction < 1.0

    def test_artifact_validates(self, bench, tmp_path):
        path = write_bench_json(bench, tmp_path / "BENCH_threaded.json")
        payload = json.loads(path.read_text())
        validate_bench_payload(payload)
        assert payload["benchmark"] == "bench-threaded"
        assert payload["records"][0]["backend"] == "threaded"
        assert payload["telemetry"]["clock"] == "wall_seconds"


class TestBenchSchema:
    def payload(self):
        return {
            "benchmark": "bench-x",
            "records": [{"backend": "threaded", "wall_seconds": 0.5}],
            "detail": {},
        }

    def test_accepts_minimal(self):
        validate_bench_payload(self.payload())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.update(benchmark=""),
            lambda p: p.update(records=[]),
            lambda p: p.update(records=[{"backend": "x"}]),
            lambda p: p.update(
                records=[{"backend": "x", "wall_seconds": -1.0}]
            ),
            lambda p: p.update(
                records=[{"backend": "x", "wall_seconds": True}]
            ),
            lambda p: p.pop("detail"),
            lambda p: p.update(telemetry={"schema_version": 0}),
        ],
    )
    def test_rejects(self, mutate):
        payload = self.payload()
        mutate(payload)
        with pytest.raises(TelemetryError):
            validate_bench_payload(payload)

    def test_cli_gate(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(self.payload()))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        missing = tmp_path / "missing.json"

        assert schema_main([str(good)]) == 0
        assert schema_main([str(good), str(bad)]) == 1
        assert schema_main([str(missing)]) == 1
        assert schema_main([]) == 2
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out and "MISSING" in out
