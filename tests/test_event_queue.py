"""Tests for the deterministic ready-queue."""

import pytest

from repro.machine.event_queue import ReadyQueue


class TestReadyQueue:
    def test_pops_in_time_order(self):
        q = ReadyQueue()
        q.push(30, 0)
        q.push(10, 1)
        q.push(20, 2)
        assert q.pop() == (10, 1)
        assert q.pop() == (20, 2)
        assert q.pop() == (30, 0)

    def test_ties_break_by_push_order(self):
        q = ReadyQueue()
        q.push(5, 3)
        q.push(5, 1)
        q.push(5, 2)
        assert [q.pop()[1] for _ in range(3)] == [3, 1, 2]

    def test_peek_time_matches_next_pop(self):
        q = ReadyQueue()
        q.push(7, 0)
        q.push(3, 1)
        assert q.peek_time() == 3
        assert q.pop() == (3, 1)
        assert q.peek_time() == 7

    def test_len_and_truthiness(self):
        q = ReadyQueue()
        assert not q
        assert len(q) == 0
        q.push(1, 0)
        assert q
        assert len(q) == 1
        q.pop()
        assert not q

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            ReadyQueue().peek_time()

    def test_interleaved_push_pop(self):
        q = ReadyQueue()
        q.push(10, 0)
        q.push(5, 1)
        assert q.pop() == (5, 1)
        q.push(1, 2)
        assert q.pop() == (1, 2)
        assert q.pop() == (10, 0)

    def test_many_entries_sorted(self):
        q = ReadyQueue()
        times = [97, 3, 41, 41, 0, 88, 12, 7, 55, 23]
        for i, t in enumerate(times):
            q.push(t, i)
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(times)
