"""Tests for processor/phase statistics records."""

import pytest

from repro.machine.stats import PhaseStats, ProcessorStats


class TestProcessorStats:
    def test_total_cycles(self):
        st = ProcessorStats(
            proc=0, compute_cycles=10, wait_cycles=5, resource_wait_cycles=2
        )
        assert st.total_cycles == 17

    def test_merge_sums_and_maxes(self):
        a = ProcessorStats(
            proc=1,
            compute_cycles=10,
            wait_cycles=2,
            flag_checks=3,
            iterations=4,
            finish_time=100,
        )
        b = ProcessorStats(
            proc=1,
            compute_cycles=5,
            wait_cycles=1,
            flag_checks=1,
            iterations=2,
            finish_time=60,
        )
        m = a.merge(b)
        assert m.compute_cycles == 15
        assert m.wait_cycles == 3
        assert m.flag_checks == 4
        assert m.iterations == 6
        assert m.finish_time == 100

    def test_merge_rejects_mismatched_processor(self):
        with pytest.raises(ValueError):
            ProcessorStats(proc=0).merge(ProcessorStats(proc=1))


class TestPhaseStats:
    def _phase(self):
        return PhaseStats(
            name="executor",
            processors=[
                ProcessorStats(
                    proc=0, compute_cycles=80, wait_cycles=20, finish_time=100
                ),
                ProcessorStats(
                    proc=1, compute_cycles=50, wait_cycles=0, finish_time=50
                ),
            ],
        )

    def test_span_is_latest_finish(self):
        assert self._phase().span == 100

    def test_totals(self):
        p = self._phase()
        assert p.total_compute == 130
        assert p.total_wait == 20

    def test_utilization_counts_waits_as_waste(self):
        p = self._phase()
        assert p.utilization() == pytest.approx(130 / 200)

    def test_empty_phase(self):
        p = PhaseStats(name="x")
        assert p.span == 0
        assert p.utilization() == 0.0

    def test_summary_line_mentions_name_and_span(self):
        line = self._phase().summary_line()
        assert "executor" in line
        assert "span=100" in line
