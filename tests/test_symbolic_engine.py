"""The symbolic dependence engine: domains, proofs, verdicts, checker."""

import numpy as np
import pytest

import repro
from repro.analysis import (
    VERDICT_CONSTANT_DISTANCE,
    VERDICT_DOALL,
    VERDICT_INJECTIVE_WRITE,
    VERDICT_RUNTIME_ONLY,
    abstract_eval,
    analyze_loop,
    check_proof,
    cross_check,
    evaluate_check,
    facts_for_subscript,
)
from repro.analysis.domains import (
    AFFINE_TOP,
    AffineFact,
    CongruenceFact,
    IntervalFact,
    MonotonicityFact,
)
from repro.analysis.proofs import Check
from repro.errors import ProofError
from repro.ir.subscript import AffineSubscript, ExprSubscript, Index
from repro.workloads.synthetic import affine_loop


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------
def test_affine_domain_transfer():
    two_i = AffineFact(2, 0)
    plus3 = AffineFact(0, 3)
    assert two_i.add(plus3) == AffineFact(2, 3)
    assert two_i.mul(plus3) == AffineFact(6, 0)
    # i * i is not affine.
    assert AffineFact(1, 0).mul(AffineFact(1, 0)).is_top
    # (4i + 2) // 2 is exact; (4i + 2) // 3 is not.
    assert AffineFact(4, 2).floordiv(2) == AffineFact(2, 1)
    assert AffineFact(4, 2).floordiv(3).is_top
    assert AFFINE_TOP.add(two_i).is_top


def test_congruence_domain_transfer():
    even = CongruenceFact.make(2, 0)
    odd = CongruenceFact.make(2, 1)
    assert even.add(odd) == CongruenceFact.make(2, 1)
    const3 = CongruenceFact.make(0, 3)
    assert const3.is_constant
    # 3 * (2k) ≡ 0 (mod 6).
    assert const3.mul(even) == CongruenceFact.make(6, 0)
    # (4k + 2) mod 4 is the constant 2; (4k + 2) mod 8 keeps gcd 4.
    four_plus2 = CongruenceFact.make(4, 2)
    assert four_plus2.mod(4) == CongruenceFact.make(0, 2)
    assert four_plus2.mod(8) == CongruenceFact.make(4, 2)
    assert four_plus2.floordiv(2) == CongruenceFact.make(2, 1)


def test_interval_domain_transfer():
    a = IntervalFact(0, 9)
    b = IntervalFact(-2, 3)
    assert a.add(b) == IntervalFact(-2, 12)
    assert a.mul(b) == IntervalFact(-18, 27)
    assert a.mod(16) == a  # already inside [0, 16)
    assert a.mod(4) == IntervalFact(0, 3)
    assert a.floordiv(2) == IntervalFact(0, 4)
    assert a.disjoint_from(IntervalFact(10, 20))
    assert not a.disjoint_from(IntervalFact(9, 20))


def test_monotonicity_domain_transfer():
    up = MonotonicityFact(1, strict=True)
    assert up.scale(-3).direction == -1
    assert up.scale(0).direction == 0
    assert up.add(MonotonicityFact(0)).is_strictly_monotone
    # Opposite directions mix to unknown.
    assert up.add(MonotonicityFact(-1)).direction is None
    # Floor division keeps direction but drops strictness.
    assert up.floordiv(2).direction == 1
    assert not up.floordiv(2).strict


# ----------------------------------------------------------------------
# Abstract evaluation
# ----------------------------------------------------------------------
def test_abstract_eval_refolds_exact_affine():
    i = Index()
    facts = abstract_eval((i * 2) // 2, 0, 99)
    assert facts.affine == AffineFact(1, 0)
    assert facts.monotonicity.is_strictly_monotone
    assert facts.interval == IntervalFact(0, 99)


def test_abstract_eval_mod_and_floordiv():
    i = Index()
    facts = abstract_eval(i % 8, 0, 99)
    assert facts.affine.is_top
    assert facts.interval == IntervalFact(0, 7)
    # i // 2 is monotone but not strictly.
    half = abstract_eval(i // 2, 0, 99)
    assert half.monotonicity.direction == 1
    assert not half.monotonicity.strict


def test_facts_for_subscript_kinds():
    assert facts_for_subscript(
        AffineSubscript(2, 1), 0, 9
    ).affine == AffineFact(2, 1)
    expr = facts_for_subscript(ExprSubscript(Index() * 3), 0, 9)
    assert expr.affine == AffineFact(3, 0)
    # Runtime data: nothing to say.
    loop = repro.random_irregular_loop(16, seed=0)
    assert facts_for_subscript(loop.write_subscript, 0, 15) is None


# ----------------------------------------------------------------------
# Proof checks
# ----------------------------------------------------------------------
def test_evaluate_check_kinds():
    assert evaluate_check(Check("divides", (2, 6)))
    assert not evaluate_check(Check("divides", (4, 6)))
    assert evaluate_check(Check("not-divides", (4, 6)))
    assert evaluate_check(Check("incongruent", (0, 1, 2)))
    assert not evaluate_check(Check("incongruent", (0, 2, 2)))
    assert evaluate_check(Check("disjoint-intervals", (0, 3, 4, 9)))
    assert evaluate_check(Check("empty-range", (5, 5)))
    with pytest.raises(ValueError, match="unknown check kind"):
        evaluate_check(Check("mystery", (1,)))


# ----------------------------------------------------------------------
# Verdicts per loop shape
# ----------------------------------------------------------------------
def test_chain_is_constant_distance():
    verdict = analyze_loop(repro.chain_loop(64, 3))
    assert verdict.kind == VERDICT_CONSTANT_DISTANCE
    assert verdict.distance == 3
    assert verdict.elidable
    (slot,) = verdict.slots
    assert slot.kind == "true"
    assert slot.dep_range == (3, 64)


def test_figure4_odd_l_is_doall_proven():
    verdict = analyze_loop(repro.make_test_loop(64, 2, 7))
    assert verdict.kind == VERDICT_DOALL
    assert verdict.elidable
    assert not verdict.true_slots()


def test_figure4_even_l_is_injective_write_mixed_distances():
    verdict = analyze_loop(repro.make_test_loop(64, 2, 8))
    assert verdict.kind == VERDICT_INJECTIVE_WRITE
    assert verdict.elidable  # fully classified, distances differ
    assert {s.distance for s in verdict.true_slots()} == {2, 3}


def test_congruence_disjoint_stride_is_doall():
    loop = affine_loop(50, (2, 0), [(2, 1)], name="parity")
    verdict = analyze_loop(loop)
    assert verdict.kind == VERDICT_DOALL
    (slot,) = verdict.slots
    assert slot.rule in ("same-stride-distance", "congruence-disjoint")


def test_opaque_loop_is_runtime_only():
    verdict = analyze_loop(repro.random_irregular_loop(64, seed=3))
    assert verdict.kind == VERDICT_RUNTIME_ONLY
    assert not verdict.elidable


def test_anti_only_slot_blocks_doall_but_not_elision():
    # Read at i+1: the writer of the read element comes later — anti.
    loop = affine_loop(40, (1, 0), [(1, 1)], name="look-ahead")
    verdict = analyze_loop(loop)
    assert verdict.kind == VERDICT_DOALL
    assert verdict.has_anti()
    (slot,) = verdict.slots
    assert slot.kind == "anti"


def test_verdict_memoized_on_loop_object():
    loop = repro.chain_loop(32, 1)
    first = analyze_loop(loop)
    assert first is analyze_loop(loop)
    # use_cache=False recomputes (and refreshes the memo).
    fresh = analyze_loop(loop, use_cache=False)
    assert fresh is not first
    assert fresh.signature() == first.signature()


def test_verdict_serialization_round_trip():
    verdict = analyze_loop(repro.chain_loop(32, 2))
    payload = verdict.as_dict()
    assert payload["kind"] == VERDICT_CONSTANT_DISTANCE
    assert payload["elidable"] is True
    assert payload["proof"]["steps"]
    assert "constant distance" in verdict.describe() or "d=2" in (
        verdict.describe()
    )


# ----------------------------------------------------------------------
# Checker: proof audit and runtime cross-check
# ----------------------------------------------------------------------
def test_check_proof_clean_on_real_verdicts():
    for loop in (
        repro.chain_loop(48, 2),
        repro.make_test_loop(48, 2, 8),
        repro.random_irregular_loop(48, seed=1),
    ):
        assert check_proof(loop) == []


def test_cross_check_clean_and_counts_terms():
    loop = repro.make_test_loop(48, 2, 8)
    report = cross_check(loop)
    assert report.ok
    assert report.checked_terms == loop.reads.total_terms
    assert "OK" in report.describe()


def test_cross_check_rejects_tampered_verdict():
    from dataclasses import replace

    loop = repro.chain_loop(48, 2)
    verdict = analyze_loop(loop)
    lie = replace(verdict, distance=3)
    report = cross_check(loop, lie)
    assert not report.ok
    with pytest.raises(ProofError, match="cross-check"):
        cross_check(loop, lie, strict=True)


def _redeclared(base, slots, name):
    """The same loop arrays under different (possibly lying) slot
    declarations."""
    from repro.ir.loop import IrregularLoop

    return IrregularLoop(
        n=base.n,
        y_size=base.y_size,
        write_subscript=base.write_subscript,
        reads=base.reads,
        y0=base.y0,
        name=name,
        read_slots=slots,
    )


def test_cross_check_catches_wrong_slot_declaration():
    from repro.ir.accesses import ReadSlot

    base = repro.chain_loop(48, 2)
    # Same arrays, but the declared slot claims distance 1 instead of 2.
    wrong = _redeclared(
        base, [ReadSlot(AffineSubscript(1, -1), start=2)], "lying-chain"
    )
    verdict = analyze_loop(wrong)
    report = cross_check(wrong, verdict)
    assert not report.ok
    assert any("declared subscript" in p for p in report.problems)


def test_slot_term_map_rejects_untiled_slots():
    from repro.analysis import slot_term_map
    from repro.ir.accesses import ReadSlot

    base = repro.chain_loop(24, 1)
    wrong = _redeclared(
        base,
        [ReadSlot(AffineSubscript(1, -1), start=1, stop=5)],
        "short-slot",
    )
    with pytest.raises(ProofError, match="term"):
        slot_term_map(wrong)


def test_proof_steps_name_their_rules():
    verdict = analyze_loop(repro.chain_loop(32, 4))
    rules = {step.rule for step in verdict.proof.steps}
    assert "affine-injective" in rules
    assert "same-stride-distance" in rules
    assert "compose-verdict" in rules
    assert verdict.proof.failed_checks() == []
    assert np.all(
        [isinstance(s.describe(), str) for s in verdict.proof.steps]
    )
