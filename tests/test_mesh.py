"""Tests for the unstructured-mesh sweep workload."""

import numpy as np
import pytest

from repro.core.doacross import PreprocessedDoacross
from repro.core.doconsider import Doconsider
from repro.errors import InvalidLoopError
from repro.graph.coloring import greedy_coloring, validate_coloring
from repro.graph.levels import compute_levels
from repro.workloads.mesh import (
    MeshAdjacency,
    mesh_orderings,
    random_mesh,
    sweep_loop,
)
from tests.conftest import assert_matches_oracle


@pytest.fixture(scope="module")
def mesh():
    return random_mesh(400, seed=11)


class TestRandomMesh:
    def test_symmetric(self, mesh):
        mesh.validate_symmetric()

    def test_deterministic(self):
        a = random_mesh(100, seed=3)
        b = random_mesh(100, seed=3)
        np.testing.assert_array_equal(a.ptr, b.ptr)
        np.testing.assert_array_equal(a.adj, b.adj)

    def test_connected_via_bfs(self, mesh):
        orders = mesh_orderings(mesh)
        assert sorted(orders["bfs"].tolist()) == list(range(mesh.n))

    def test_bounded_degree(self, mesh):
        # Geometric graphs with r ~ 1/sqrt(n) have O(1) expected degree.
        assert mesh.degrees().mean() < 20

    def test_single_vertex(self):
        m = random_mesh(1, seed=0)
        assert m.n == 1
        assert m.n_edges == 0

    def test_invalid_size(self):
        with pytest.raises(InvalidLoopError):
            random_mesh(0)


class TestSweepLoop:
    def test_natural_order_matches_oracle(self, mesh):
        loop = sweep_loop(mesh)
        result = PreprocessedDoacross(processors=8).run(loop)
        assert_matches_oracle(result.y, loop)

    @pytest.mark.parametrize("name", ["natural", "random", "bfs", "coloring"])
    def test_every_stock_ordering_matches_its_own_oracle(self, mesh, name):
        order = mesh_orderings(mesh)[name]
        loop = sweep_loop(mesh, order=order)
        result = PreprocessedDoacross(processors=8).run(loop)
        assert_matches_oracle(result.y, loop)

    def test_orders_are_different_computations(self, mesh):
        """Gauss-Seidel order changes the iterate (not a bug — each order
        is its own computation, verified against its own oracle)."""
        orders = mesh_orderings(mesh)
        y_nat = sweep_loop(mesh, orders["natural"]).run_sequential()
        y_col = sweep_loop(mesh, orders["coloring"]).run_sequential()
        assert not np.allclose(y_nat, y_col)

    def test_order_length_validated(self, mesh):
        with pytest.raises(InvalidLoopError):
            sweep_loop(mesh, order=np.arange(5))

    def test_custom_name(self, mesh):
        assert sweep_loop(mesh, name="x").name == "x"


class TestOrderingStructure:
    def test_coloring_is_valid(self, mesh):
        colors = greedy_coloring(mesh.ptr, mesh.adj)
        validate_coloring(mesh.ptr, mesh.adj, colors)

    def test_coloring_order_has_wavefronts_equal_to_colors(self, mesh):
        """Sweeping color by color: a vertex's swept neighbors all have
        smaller colors, so the dependence level of every vertex is at most
        its color index — wavefront count ≤ color count."""
        colors = greedy_coloring(mesh.ptr, mesh.adj)
        order = mesh_orderings(mesh)["coloring"]
        loop = sweep_loop(mesh, order=order)
        schedule = compute_levels(loop)
        assert schedule.n_levels <= int(colors.max()) + 1

    def test_coloring_order_much_flatter_than_bfs(self, mesh):
        """BFS numbering chains the sweep along the traversal tree (deep
        wavefronts); color order is the flat extreme."""
        orders = mesh_orderings(mesh)
        bfs_levels = compute_levels(
            sweep_loop(mesh, orders["bfs"])
        ).n_levels
        color_levels = compute_levels(
            sweep_loop(mesh, orders["coloring"])
        ).n_levels
        assert color_levels < bfs_levels / 3

    def test_coloring_never_deeper_than_natural(self, mesh):
        orders = mesh_orderings(mesh)
        natural_levels = compute_levels(sweep_loop(mesh)).n_levels
        color_levels = compute_levels(
            sweep_loop(mesh, orders["coloring"])
        ).n_levels
        assert color_levels <= natural_levels

    def test_colored_sweep_runs_faster_than_bfs_in_parallel(self, mesh):
        """The payoff: the color-ordered sweep's doacross beats the
        BFS-ordered sweep's doacross (different computations, same work
        volume)."""
        runner = PreprocessedDoacross(processors=16)
        orders = mesh_orderings(mesh)
        bfs = runner.run(sweep_loop(mesh, orders["bfs"]))
        colored = runner.run(sweep_loop(mesh, orders["coloring"]))
        assert colored.total_cycles < bfs.total_cycles

    def test_five_point_grid_colors_red_black(self):
        """The classic sanity check: the 5-point stencil's grid graph is
        bipartite, so greedy coloring finds exactly two colors — the
        red-black ordering of structured-grid Gauss-Seidel."""
        from repro.sparse.stencils import five_point

        grid = MeshAdjacency.from_csr_pattern(five_point(8, 8))
        grid.validate_symmetric()
        colors = greedy_coloring(grid.ptr, grid.adj)
        validate_coloring(grid.ptr, grid.adj, colors)
        assert int(colors.max()) == 1  # two colors: red and black

    def test_red_black_sweep_has_two_wavefronts(self):
        from repro.graph.coloring import color_order
        from repro.sparse.stencils import five_point

        grid = MeshAdjacency.from_csr_pattern(five_point(8, 8))
        colors = greedy_coloring(grid.ptr, grid.adj)
        loop = sweep_loop(grid, order=color_order(colors))
        assert compute_levels(loop).n_levels == 2

    def test_doconsider_on_colored_sweep_near_plateau(self, mesh):
        """Color order + doconsider: wavefronts are already flat, so
        doconsider adds little — their totals should be close."""
        runner = PreprocessedDoacross(processors=16)
        loop = sweep_loop(mesh, mesh_orderings(mesh)["coloring"])
        plain = runner.run(loop)
        reordered = Doconsider(doacross=runner).run(loop)
        assert reordered.total_cycles <= plain.total_cycles
        assert reordered.total_cycles > 0.7 * plain.total_cycles
