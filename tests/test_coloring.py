"""Tests for greedy graph coloring."""

import numpy as np
import pytest

from repro.graph.coloring import color_order, greedy_coloring, validate_coloring


def csr_from_edges(n, edges):
    """Symmetric CSR adjacency from an undirected edge list."""
    nbrs = [set() for _ in range(n)]
    for a, b in edges:
        nbrs[a].add(b)
        nbrs[b].add(a)
    ptr = np.zeros(n + 1, dtype=np.int64)
    ptr[1:] = np.cumsum([len(s) for s in nbrs])
    adj = np.array(
        [u for s in nbrs for u in sorted(s)], dtype=np.int64
    )
    return ptr, adj


class TestGreedyColoring:
    def test_path_two_colors(self):
        ptr, adj = csr_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        colors = greedy_coloring(ptr, adj)
        validate_coloring(ptr, adj, colors)
        assert colors.max() == 1  # a path is 2-colorable and greedy finds it

    def test_triangle_three_colors(self):
        ptr, adj = csr_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        colors = greedy_coloring(ptr, adj)
        validate_coloring(ptr, adj, colors)
        assert colors.max() == 2

    def test_edgeless_graph_one_color(self):
        ptr, adj = csr_from_edges(5, [])
        colors = greedy_coloring(ptr, adj)
        assert (colors == 0).all()

    def test_star_two_colors(self):
        ptr, adj = csr_from_edges(6, [(0, k) for k in range(1, 6)])
        colors = greedy_coloring(ptr, adj)
        validate_coloring(ptr, adj, colors)
        assert colors.max() == 1

    def test_bounded_by_max_degree_plus_one(self):
        rng = np.random.default_rng(3)
        n = 40
        edges = {
            (min(a, b), max(a, b))
            for a, b in rng.integers(0, n, size=(120, 2))
            if a != b
        }
        ptr, adj = csr_from_edges(n, edges)
        colors = greedy_coloring(ptr, adj)
        validate_coloring(ptr, adj, colors)
        max_degree = int(np.diff(ptr).max())
        assert colors.max() <= max_degree

    def test_visit_order_affects_greedy(self):
        # Crown-like graph where a bad order wastes colors.
        ptr, adj = csr_from_edges(4, [(0, 1), (2, 3)])
        natural = greedy_coloring(ptr, adj)
        assert natural.max() == 1

    def test_validate_catches_conflict(self):
        ptr, adj = csr_from_edges(2, [(0, 1)])
        with pytest.raises(AssertionError, match="connects color"):
            validate_coloring(ptr, adj, np.array([0, 0]))

    def test_validate_catches_uncolored(self):
        ptr, adj = csr_from_edges(2, [(0, 1)])
        with pytest.raises(AssertionError, match="uncolored"):
            validate_coloring(ptr, adj, np.array([0, -1]))


class TestColorOrder:
    def test_groups_by_color_stable(self):
        colors = np.array([1, 0, 1, 0, 2])
        order = color_order(colors)
        np.testing.assert_array_equal(order, [1, 3, 0, 2, 4])

    def test_permutation(self):
        rng = np.random.default_rng(0)
        colors = rng.integers(0, 4, size=30)
        order = color_order(colors)
        assert sorted(order.tolist()) == list(range(30))
