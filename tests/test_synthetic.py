"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import InvalidLoopError
from repro.ir.analysis import uniform_distance
from repro.ir.loop import INIT_EXTERNAL, INIT_OLD_VALUE
from repro.workloads.synthetic import chain_loop, random_irregular_loop


class TestRandomIrregularLoop:
    def test_write_subscript_injective(self):
        for seed in range(5):
            loop = random_irregular_loop(60, seed=seed)
            assert len(np.unique(loop.write)) == 60

    def test_seed_reproducible(self):
        a = random_irregular_loop(40, seed=9)
        b = random_irregular_loop(40, seed=9)
        np.testing.assert_array_equal(a.write, b.write)
        np.testing.assert_allclose(a.reads.coeff, b.reads.coeff)
        np.testing.assert_allclose(a.y0, b.y0)

    def test_seeds_differ(self):
        a = random_irregular_loop(40, seed=1)
        b = random_irregular_loop(40, seed=2)
        assert not np.array_equal(a.write, b.write)

    def test_term_count_bound(self):
        loop = random_irregular_loop(100, max_terms=2, seed=0)
        assert loop.reads.term_counts().max() <= 2

    def test_external_init(self):
        loop = random_irregular_loop(20, seed=0, external_init=True)
        assert loop.init_kind == INIT_EXTERNAL
        assert len(loop.init_values) == 20

    def test_default_old_value_init(self):
        assert random_irregular_loop(20, seed=0).init_kind == INIT_OLD_VALUE

    def test_y_extra_leaves_unwritten_elements(self):
        loop = random_irregular_loop(30, y_extra=10, seed=0)
        assert loop.y_size == 40

    def test_coeff_scale_respected(self):
        loop = random_irregular_loop(50, seed=3, coeff_scale=0.1)
        assert np.abs(loop.reads.coeff).max() <= 0.1

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidLoopError):
            random_irregular_loop(-1)


class TestChainLoop:
    def test_uniform_distance(self):
        assert uniform_distance(chain_loop(30, 4)) == 4

    def test_leading_iterations_have_no_reads(self):
        loop = chain_loop(10, 3)
        counts = loop.reads.term_counts()
        np.testing.assert_array_equal(counts[:3], 0)
        np.testing.assert_array_equal(counts[3:], 1)

    def test_identity_write(self):
        loop = chain_loop(10, 2)
        np.testing.assert_array_equal(loop.write, np.arange(10))

    def test_known_values(self):
        y = chain_loop(4, 1, coeff=0.5).run_sequential()
        np.testing.assert_allclose(y, [1.0, 1.5, 1.75, 1.875])

    def test_validation(self):
        with pytest.raises(InvalidLoopError):
            chain_loop(0, 1)
        with pytest.raises(InvalidLoopError):
            chain_loop(10, 0)
