"""The benchmark history pipeline (ISSUE 8 tentpole, part 1): provenance
stamping, artifact normalization, the append-only trajectory, the bench
registry's single artifact writer, and the ``bench-all`` orchestrator.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.bench.registry import REGISTRY, bench_by_name, write_artifact
from repro.bench.schema import validate_history_row, validate_meta
from repro.perf.history import (
    append_history,
    git_sha,
    history_rows,
    load_history,
    machine_fingerprint,
    run_metadata,
)


def payload(benchmark="bench-x", records=None):
    return {
        "benchmark": benchmark,
        "records": records
        if records is not None
        else [
            {"n": 100, "backend": "threaded", "wall_seconds": 0.01},
            {"n": 100, "backend": "vectorized", "wall_seconds": 0.002,
             "speedup": 5.0},
        ],
        "detail": {},
    }


class TestProvenance:
    def test_git_sha_in_this_checkout_is_hex(self):
        sha = git_sha()
        assert len(sha) == 40
        int(sha, 16)

    def test_git_sha_outside_checkout_is_unknown(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"

    def test_machine_fingerprint_shape(self):
        fp = machine_fingerprint()
        assert fp["cpu_count"] >= 1
        assert fp["python"].count(".") == 2
        assert isinstance(fp["platform"], str)

    def test_run_metadata_validates(self):
        meta = run_metadata()
        validate_meta(meta, "meta")
        assert meta["schema_version"] == 1
        assert meta["date"].endswith("+00:00") or meta["date"].endswith("Z")


class TestHistoryRows:
    def test_one_row_per_record_with_provenance_flat(self):
        meta = run_metadata()
        rows = history_rows(payload(), meta)
        assert len(rows) == 2
        for row in rows:
            assert row["benchmark"] == "bench-x"
            assert row["git_sha"] == meta["git_sha"]
            assert row["date"] == meta["date"]
            assert row["machine"] == meta["machine"]
            validate_history_row(row, 0)
        assert rows[1]["speedup"] == 5.0  # extra keys ride along

    def test_missing_n_defaults_to_none(self):
        rows = history_rows(
            payload(records=[{"backend": "threaded", "wall_seconds": 0.01}])
        )
        assert rows[0]["n"] is None
        validate_history_row(rows[0], 0)

    def test_meta_defaults_to_payload_meta(self):
        p = payload()
        p["meta"] = run_metadata()
        p["meta"]["git_sha"] = "f" * 40
        rows = history_rows(p)
        assert rows[0]["git_sha"] == "f" * 40

    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        rows = history_rows(payload(), run_metadata())
        append_history(rows, path)
        append_history(rows[:1], path)  # append-only: grows, never rewrites
        loaded = load_history(path)
        assert len(loaded) == 3
        assert loaded[0] == json.loads(json.dumps(rows[0]))

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_history(path)

    def test_load_rejects_non_object_line(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_history(path)


class TestHistoryRowValidation:
    def good(self):
        row = history_rows(payload(), run_metadata())[0]
        return row

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r: r.update(benchmark=""),
            lambda r: r.update(backend=3),
            lambda r: r.update(n="hundred"),
            lambda r: r.update(wall_seconds=-1.0),
            lambda r: r.pop("wall_seconds"),
            lambda r: r.update(git_sha=""),
            lambda r: r.update(machine={"cpu_count": 0, "python": "3.11.1"}),
        ],
    )
    def test_rejects(self, mutate):
        row = self.good()
        mutate(row)
        with pytest.raises(TelemetryError):
            validate_history_row(row, 0)


class TestRegistry:
    def test_registry_names_are_unique_and_resolvable(self):
        names = [s.name for s in REGISTRY]
        assert len(names) == len(set(names))
        for name in names:
            assert bench_by_name(name).name == name

    def test_unknown_bench_raises_with_known_names(self):
        with pytest.raises(KeyError, match="bench-threaded"):
            bench_by_name("bench-nonsense")

    def test_write_artifact_stamps_and_validates(self, tmp_path):
        path = write_artifact(payload(), tmp_path / "BENCH_x.json")
        blob = json.loads(path.read_text())
        validate_meta(blob["meta"], "meta")
        assert blob["benchmark"] == "bench-x"
        assert path.read_text().endswith("\n")

    def test_write_artifact_rejects_invalid_payload(self, tmp_path):
        bad = payload(records=[{"backend": "threaded"}])  # no wall_seconds
        with pytest.raises(TelemetryError):
            write_artifact(bad, tmp_path / "BENCH_bad.json")
        assert not (tmp_path / "BENCH_bad.json").exists()

    def test_write_artifact_does_not_mutate_caller_payload(self, tmp_path):
        p = payload()
        write_artifact(p, tmp_path / "BENCH_x.json")
        assert "meta" not in p


class TestBenchAllCli:
    def test_list_shows_registry(self, capsys):
        from repro.perf.cli import bench_all_main

        assert bench_all_main(["--list"]) == 0
        out = capsys.readouterr().out
        for spec in REGISTRY:
            assert spec.name in out

    def test_unknown_only_name_fails_cleanly(self, capsys):
        from repro.perf.cli import bench_all_main

        assert bench_all_main(["--only=bench-nonsense"]) == 2
        assert "bench-nonsense" in capsys.readouterr().out

    def test_quick_single_bench_builds_valid_history(self, tmp_path, capsys):
        from repro.perf.cli import bench_all_main

        history = tmp_path / "BENCH_history.jsonl"
        rc = bench_all_main(
            [
                "--quick",
                "--only=bench-threaded",
                f"--out-dir={tmp_path}",
                f"--history={history}",
            ]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_threaded.json").exists()
        rows = load_history(history)
        assert rows
        for pos, row in enumerate(rows):
            validate_history_row(row, pos)
        # All rows of one sweep share one provenance stamp.
        assert len({row["git_sha"] for row in rows}) == 1
        assert rows[0]["git_sha"] == git_sha()

    def test_no_history_flag_skips_append(self, tmp_path):
        from repro.perf.cli import bench_all_main

        history = tmp_path / "h.jsonl"
        rc = bench_all_main(
            [
                "--quick",
                "--only=bench-threaded",
                f"--out-dir={tmp_path}",
                f"--history={history}",
                "--no-history",
            ]
        )
        assert rc == 0
        assert not history.exists()
