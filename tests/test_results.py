"""Tests for run-result records and the paper's efficiency definition."""

import numpy as np
import pytest

from repro.core.results import PhaseBreakdown, RunResult
from repro.machine.costs import CostModel


def make_result(total=1000, seq=8000, p=16, **kw):
    return RunResult(
        loop_name="test",
        strategy="preprocessed-doacross",
        processors=p,
        y=np.zeros(4),
        total_cycles=total,
        sequential_cycles=seq,
        cost_model=CostModel(),
        **kw,
    )


class TestPhaseBreakdown:
    def test_total(self):
        b = PhaseBreakdown(inspector=10, executor=100, postprocessor=20, barriers=6)
        assert b.total == 136

    def test_as_dict(self):
        b = PhaseBreakdown(inspector=1)
        assert b.as_dict()["inspector"] == 1
        assert set(b.as_dict()) == {
            "inspector",
            "executor",
            "postprocessor",
            "barriers",
        }


class TestRunResult:
    def test_speedup_and_efficiency_definition(self):
        """Efficiency is the paper's T_seq / (p * T_par)."""
        r = make_result(total=1000, seq=8000, p=16)
        assert r.speedup == pytest.approx(8.0)
        assert r.efficiency == pytest.approx(8000 / (16 * 1000))

    def test_zero_total_cycles(self):
        r = make_result(total=0, seq=100)
        assert r.speedup == float("inf")
        r2 = make_result(total=0, seq=0)
        assert r2.speedup == 1.0

    def test_ms_rendering(self):
        r = make_result(total=20_000, seq=40_000)
        assert r.total_ms == pytest.approx(2.0)
        assert r.sequential_ms == pytest.approx(4.0)

    def test_summary_contains_key_facts(self):
        r = make_result()
        r.breakdown = PhaseBreakdown(inspector=5, executor=50)
        r.extras["note"] = "hello"
        s = r.summary()
        assert "strategy=preprocessed-doacross" in s
        assert "efficiency=" in s
        assert "inspector=5" in s
        assert "note=hello" in s
