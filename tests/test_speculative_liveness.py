"""Liveness of the speculative backend under a hostile conflict detector.

The speculative backend's liveness story is the retry budget: unlike the
threaded/multiproc backends (whose busy-waits need a
:class:`~repro.errors.WaitTimeout` ceiling, ``test_wait_liveness.py``),
speculation never blocks — the only way it can fail to make progress is
a conflict detector that keeps vetoing commits.  These tests inject
exactly that fault through the documented
:meth:`~repro.backends.SpeculativeRunner._conflicts` seam — a paranoid
detector that reports *every* chunk as conflicting — and demand that the
backend drains its ``max_rounds`` budget, falls back to sequential
chunk-order execution, and returns the bitwise oracle answer within a
hard wall-clock ceiling instead of livelocking.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backends import SpeculativeRunner
from repro.workloads.synthetic import chain_loop, random_irregular_loop

#: Generous ceiling for the sabotaged runs: each is a few dozen
#: milliseconds of real work, so 2s means "completed, not livelocked".
CEILING_SECONDS = 2.0


def _paranoid(monkeypatch) -> None:
    """Every chunk conflicts, every round, forever."""
    monkeypatch.setattr(
        SpeculativeRunner,
        "_conflicts",
        lambda self, reads, writes, pending, deferred: True,
    )


class TestParanoidDetectorLiveness:
    def test_budget_drains_into_fallback_in_bounded_time(
        self, monkeypatch
    ):
        _paranoid(monkeypatch)
        loop = chain_loop(256, 1)
        runner = SpeculativeRunner(workers=2, chunk=16)
        start = time.perf_counter()
        result = runner.run(loop)
        assert time.perf_counter() - start < CEILING_SECONDS
        assert np.array_equal(result.y, loop.run_sequential())
        stats = result.extras["speculation"]
        assert stats["sequential_fallback"]
        assert stats["rounds"] == runner.max_rounds
        # Nothing ever commits speculatively: the fallback executes
        # every chunk, and every round rolled every chunk back.
        assert stats["fallback_chunks"] == stats["chunks"]
        assert (
            stats["chunks_rolled_back"]
            == runner.max_rounds * stats["chunks"]
        )

    @pytest.mark.parametrize("max_rounds", [1, 3])
    def test_any_budget_is_honored(self, monkeypatch, max_rounds):
        _paranoid(monkeypatch)
        loop = random_irregular_loop(120, seed=7)
        runner = SpeculativeRunner(
            workers=2, chunk=8, max_rounds=max_rounds
        )
        start = time.perf_counter()
        result = runner.run(loop)
        assert time.perf_counter() - start < CEILING_SECONDS
        assert np.array_equal(result.y, loop.run_sequential())
        assert result.extras["speculation"]["rounds"] == max_rounds

    def test_fallback_run_still_satisfies_the_sanitizer(
        self, monkeypatch
    ):
        """The fallback path is not exempt from the dependence contract:
        its shadow log must replay clean — every cross-chunk true
        dependence covered by the commit chain."""
        from repro.sanitize import SanitizingRunner

        _paranoid(monkeypatch)
        loop = chain_loop(96, 1)
        runner = SanitizingRunner(SpeculativeRunner(workers=2, chunk=8))
        result = runner.run(loop)
        assert np.array_equal(result.y, loop.run_sequential())
        assert result.extras["sanitize"]["violations"] == []
        assert result.extras["speculation"]["sequential_fallback"]

    def test_telemetry_counts_the_wasted_rounds(self, monkeypatch):
        """Observed sabotaged runs put the damage on the record: the
        speculation_rounds / chunks_rolled_back / fallback_chunks
        counters are how the perf trajectory would surface a
        misbehaving detector in production."""
        from repro.backends import make_runner
        from repro.passes.spec import PlanSpec

        _paranoid(monkeypatch)
        runner = make_runner(
            spec=PlanSpec(backend="speculative", processors=2, observe=True)
        )
        result = runner.run(chain_loop(64, 1), chunk=8)
        counters = result.telemetry.metrics.as_dict()["counters"]
        assert counters["speculation_rounds"] == 8
        assert counters["chunks_rolled_back"] == 8 * 8
        assert counters["fallback_chunks"] == 8

    def test_healthy_detector_never_falls_back_on_doall(self):
        """Positive control for the injection seam: with the real
        detector, a conflict-free loop commits in one round — the
        paranoid behavior above is the fault, not the norm."""
        from repro.workloads.synthetic import conflict_frontier_loop

        loop = conflict_frontier_loop(128, 16, 0.0)
        result = SpeculativeRunner(workers=2, chunk=16).run(loop)
        stats = result.extras["speculation"]
        assert not stats["sequential_fallback"]
        assert stats["rounds"] == 1
