"""Tests for subscript functions and the closed-form writer inverse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidLoopError
from repro.ir.subscript import AffineSubscript, IndirectSubscript


class TestAffineSubscript:
    def test_call_and_materialize_agree(self):
        sub = AffineSubscript(2, 3)
        values = sub.materialize(5)
        assert list(values) == [sub(i) for i in range(5)]
        assert list(values) == [3, 5, 7, 9, 11]

    def test_statically_known(self):
        assert AffineSubscript(1, 0).statically_known
        assert not IndirectSubscript([0, 1]).statically_known

    def test_injective_unless_constant(self):
        assert AffineSubscript(2, 0).is_injective(100)
        assert AffineSubscript(-1, 5).is_injective(100)
        assert not AffineSubscript(0, 5).is_injective(2)
        assert AffineSubscript(0, 5).is_injective(1)

    def test_writer_of_hits(self):
        sub = AffineSubscript(2, 2)  # writes 2, 4, 6, ...
        assert sub.writer_of(2, 10) == 0
        assert sub.writer_of(8, 10) == 3

    def test_writer_of_misses(self):
        sub = AffineSubscript(2, 2)
        assert sub.writer_of(3, 10) == -1  # odd: not divisible
        assert sub.writer_of(22, 10) == -1  # beyond range
        assert sub.writer_of(0, 10) == -1  # before range

    def test_writer_of_negative_stride(self):
        sub = AffineSubscript(-1, 9)  # 9, 8, 7, ...
        assert sub.writer_of(9, 10) == 0
        assert sub.writer_of(0, 10) == 9
        assert sub.writer_of(10, 10) == -1

    def test_writer_of_constant_subscript(self):
        sub = AffineSubscript(0, 5)
        assert sub.writer_of(5, 1) == 0
        assert sub.writer_of(4, 1) == -1

    def test_writer_of_many_matches_scalar(self):
        sub = AffineSubscript(3, -1)
        offs = np.arange(-5, 40)
        many = sub.writer_of_many(offs, 12)
        scalar = np.array([sub.writer_of(int(o), 12) for o in offs])
        np.testing.assert_array_equal(many, scalar)

    @given(
        c=st.integers(-5, 5).filter(lambda v: v != 0),
        d=st.integers(-20, 20),
        n=st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_writer_of_inverts_materialize(self, c, d, n):
        sub = AffineSubscript(c, d)
        for i, off in enumerate(sub.materialize(n)):
            assert sub.writer_of(int(off), n) == i

    def test_shifted(self):
        assert AffineSubscript(2, 1).shifted(4) == AffineSubscript(2, 5)

    def test_composed(self):
        outer = AffineSubscript(2, 1)
        inner = AffineSubscript(3, 4)
        comp = outer.composed(inner)
        for i in range(10):
            assert comp(i) == outer(inner(i))

    def test_equality_and_hash(self):
        assert AffineSubscript(2, 3) == AffineSubscript(2, 3)
        assert AffineSubscript(2, 3) != AffineSubscript(3, 2)
        assert hash(AffineSubscript(1, 1)) == hash(AffineSubscript(1, 1))


class TestIndirectSubscript:
    def test_materialize_prefix(self):
        sub = IndirectSubscript([5, 3, 9, 1])
        np.testing.assert_array_equal(sub.materialize(3), [5, 3, 9])

    def test_materialize_too_long_raises(self):
        with pytest.raises(InvalidLoopError, match="only"):
            IndirectSubscript([1, 2]).materialize(3)

    def test_call(self):
        sub = IndirectSubscript([7, 8])
        assert sub(1) == 8

    def test_injectivity_from_values(self):
        assert IndirectSubscript([3, 1, 2]).is_injective(3)
        assert not IndirectSubscript([3, 1, 3]).is_injective(3)
        assert IndirectSubscript([3, 1, 3]).is_injective(2)

    def test_rejects_2d(self):
        with pytest.raises(InvalidLoopError):
            IndirectSubscript([[1, 2], [3, 4]])

    def test_repr_truncates(self):
        r = repr(IndirectSubscript(list(range(100))))
        assert "..." in r
        assert "len=100" in r
