"""Tests for the loop-source front end."""

import numpy as np
import pytest

from repro.core.doacross import PreprocessedDoacross, parallelize
from repro.errors import InvalidLoopError
from repro.ir.frontend import loop_from_source
from repro.ir.subscript import AffineSubscript, IndirectSubscript
from repro.sparse.ilu import ilu0
from repro.sparse.stencils import five_point
from repro.sparse.trisolve import lower_solve_loop
from repro.workloads.testloop import make_test_loop


class TestUniformTemplate:
    def test_figure4_loop_matches_builder(self):
        """The Figure-4 loop written as source must reproduce
        make_test_loop exactly (structure and semantics)."""
        n, m, l = 80, 3, 6
        reference = make_test_loop(n=n, m=m, l=l)
        shift = l + 2
        # 0-based: index = 2(i0+1) + 2(j0+1) − L + shift = 2i + 2j + (4−L+shift).
        source = f"""
        for i in range({n}):
            for j in range({m}):
                y[2*i + {2 + shift}] += val[j] * y[2*i + 2*j + {4 - l + shift}]
        """
        loop = loop_from_source(
            source,
            arrays={"val": np.full(m, 0.5 / m)},
            y0=reference.y0,
            y_size=reference.y_size,
        )
        np.testing.assert_array_equal(loop.write, reference.write)
        np.testing.assert_array_equal(loop.reads.index, reference.reads.index)
        np.testing.assert_allclose(
            loop.run_sequential(), reference.run_sequential()
        )

    def test_indirect_write_subscript(self):
        a = np.array([3, 0, 2])
        b = np.array([1, 1, 0])
        source = """
        for i in range(3):
            for j in range(1):
                y[a[i]] += 0.5 * y[b[i]]
        """
        loop = loop_from_source(source, arrays={"a": a, "b": b})
        assert isinstance(loop.write_subscript, IndirectSubscript)
        np.testing.assert_array_equal(loop.write, a)
        np.testing.assert_array_equal(loop.reads.index, b)

    def test_affine_write_detected(self):
        source = """
        for i in range(10):
            for j in range(1):
                y[2*i + 3] += 0.1 * y[j]
        """
        loop = loop_from_source(source, arrays={})
        assert isinstance(loop.write_subscript, AffineSubscript)
        assert (loop.write_subscript.c, loop.write_subscript.d) == (2, 3)

    def test_affine_detection_enables_linear_plan(self):
        source = """
        for i in range(20):
            for j in range(1):
                y[i + 30] += 0.5 * y[i]
        """
        loop = loop_from_source(source, arrays={})
        _, plan = parallelize(loop, processors=4)
        assert plan.strategy == "linear"

    def test_explicit_init_old_value(self):
        source = """
        for i in range(4):
            y[i] = y[i]
            for j in range(1):
                y[i] += 1 * y[i + 4]
        """
        loop = loop_from_source(source, arrays={}, y0=np.arange(8.0))
        assert loop.init_kind == "old_value"
        np.testing.assert_allclose(
            loop.run_sequential()[:4], np.arange(4.0) + np.arange(4.0, 8.0)
        )

    def test_external_init(self):
        rhs = np.array([5.0, 6.0])
        source = """
        for i in range(2):
            y[i] = rhs[i]
            for j in range(1):
                y[i] += 0 * y[i]
        """
        loop = loop_from_source(source, arrays={"rhs": rhs})
        assert loop.init_kind == "external"
        np.testing.assert_allclose(loop.run_sequential(), rhs)

    def test_minus_equals_negates(self):
        source = """
        for i in range(2):
            y[i] = rhs[i]
            for j in range(1):
                y[i] -= w[j] * y[i + 2]
        """
        loop = loop_from_source(
            source,
            arrays={"rhs": np.ones(2), "w": np.array([2.0])},
            y0=np.array([0.0, 0.0, 3.0, 4.0]),
        )
        np.testing.assert_allclose(
            loop.run_sequential()[:2], [1 - 6.0, 1 - 8.0]
        )

    def test_scalar_bound_binding(self):
        source = """
        for i in range(N):
            for j in range(M):
                y[i] += 0.25 * y[i + N]
        """
        loop = loop_from_source(source, arrays={"N": 6, "M": 2})
        assert loop.n == 6
        assert loop.reads.term_count(0) == 2


class TestCsrTemplate:
    def test_trisolve_matches_builder(self):
        """The Figure-7 loop written as source must reproduce
        lower_solve_loop's semantics."""
        L, _ = ilu0(five_point(6, 6))
        rhs = np.linspace(1.0, 2.0, L.n_rows)
        reference = lower_solve_loop(L, rhs)
        # Strict-lower CSR arrays (drop each row's trailing diagonal).
        keep = np.ones(L.nnz, dtype=bool)
        keep[L.indptr[1:] - 1] = False
        counts = L.row_nnz() - 1
        ptr = np.zeros(L.n_rows + 1, dtype=np.int64)
        ptr[1:] = np.cumsum(counts)
        source = f"""
        for i in range({L.n_rows}):
            y[i] = rhs[i]
            for k in range(ptr[i], ptr[i + 1]):
                y[i] -= coeff[k] * y[index[k]]
        """
        loop = loop_from_source(
            source,
            arrays={
                "rhs": rhs,
                "ptr": ptr,
                "coeff": L.data[keep],
                "index": L.indices[keep],
            },
        )
        np.testing.assert_allclose(
            loop.run_sequential(), reference.run_sequential()
        )
        # And it parallelizes like any other loop.
        result = PreprocessedDoacross(processors=8).run(loop)
        np.testing.assert_allclose(result.y, reference.run_sequential())

    def test_empty_rows_allowed(self):
        source = """
        for i in range(3):
            y[i] = rhs[i]
            for k in range(lo[i], hi[i]):
                y[i] += c[k] * y[idx[k]]
        """
        loop = loop_from_source(
            source,
            arrays={
                "rhs": np.ones(3),
                "lo": np.array([0, 0, 1]),
                "hi": np.array([0, 1, 2]),
                "c": np.array([2.0, 3.0]),
                "idx": np.array([0, 1]),
            },
        )
        np.testing.assert_array_equal(loop.reads.term_counts(), [0, 1, 1])

    def test_inverted_bounds_rejected(self):
        source = """
        for i in range(2):
            y[i] = rhs[i]
            for k in range(lo[i], hi[i]):
                y[i] += c[k] * y[idx[k]]
        """
        with pytest.raises(InvalidLoopError, match="hi < lo"):
            loop_from_source(
                source,
                arrays={
                    "rhs": np.ones(2),
                    "lo": np.array([0, 1]),
                    "hi": np.array([0, 0]),
                    "c": np.array([1.0]),
                    "idx": np.array([0]),
                },
            )


class TestValidation:
    def test_unbound_array(self):
        source = """
        for i in range(2):
            for j in range(1):
                y[i] += 1 * y[mystery[i]]
        """
        with pytest.raises(InvalidLoopError, match="mystery"):
            loop_from_source(source, arrays={})

    def test_out_of_range_binding(self):
        source = """
        for i in range(5):
            for j in range(1):
                y[a[i]] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="out of range"):
            loop_from_source(source, arrays={"a": np.array([0, 1])})

    def test_not_a_for_loop(self):
        with pytest.raises(InvalidLoopError, match="top-level"):
            loop_from_source("x = 1", arrays={})

    def test_while_inner_rejected(self):
        source = """
        for i in range(2):
            while True:
                pass
        """
        with pytest.raises(InvalidLoopError, match="inner 'for'"):
            loop_from_source(source, arrays={})

    def test_mismatched_write_targets(self):
        source = """
        for i in range(2):
            y[i] = y[i]
            for j in range(1):
                y[i + 1] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="different y elements"):
            loop_from_source(source, arrays={})

    def test_division_rejected(self):
        source = """
        for i in range(2):
            for j in range(1):
                y[i] += 1 * y[i // 2]
        """
        with pytest.raises(InvalidLoopError, match="unsupported operator"):
            loop_from_source(source, arrays={})

    def test_syntax_error_wrapped(self):
        with pytest.raises(InvalidLoopError):
            loop_from_source("for i in range(: pass", arrays={})

    def test_same_loop_variable_rejected(self):
        source = """
        for i in range(2):
            for i in range(1):
                y[i] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="differ"):
            loop_from_source(source, arrays={})

    def test_float_bound_rejected(self):
        source = """
        for i in range(2.5):
            for j in range(1):
                y[i] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="integer literal"):
            loop_from_source(source, arrays={})

    def test_tuple_loop_target_rejected(self):
        source = """
        for a, b in range(3):
            for j in range(1):
                y[a] += 1 * y[a]
        """
        with pytest.raises(InvalidLoopError, match="simple name"):
            loop_from_source(source, arrays={})

    def test_range_with_step_rejected(self):
        source = """
        for i in range(2):
            for j in range(0, 4, 2):
                y[i] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="range"):
            loop_from_source(source, arrays={})

    def test_multi_statement_inner_body_rejected(self):
        source = """
        for i in range(2):
            for j in range(1):
                y[i] += 1 * y[i]
                y[i] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="exactly"):
            loop_from_source(source, arrays={})

    def test_accumulation_without_product_rejected(self):
        source = """
        for i in range(2):
            for j in range(1):
                y[i] += y[i]
        """
        with pytest.raises(InvalidLoopError, match="coeff"):
            loop_from_source(source, arrays={})

    def test_write_to_non_y_array_rejected(self):
        source = """
        for i in range(2):
            for j in range(1):
                z[i] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match=r"y\[\.\.\.\]"):
            loop_from_source(source, arrays={})

    def test_times_equals_rejected(self):
        source = """
        for i in range(2):
            for j in range(1):
                y[i] *= 2 * y[i]
        """
        with pytest.raises(InvalidLoopError, match=r"\+= or -="):
            loop_from_source(source, arrays={})

    def test_negative_iteration_count_rejected(self):
        source = """
        for i in range(-3):
            for j in range(1):
                y[i] += 1 * y[i]
        """
        with pytest.raises(InvalidLoopError, match="negative"):
            loop_from_source(source, arrays={})

    def test_two_d_array_rejected(self):
        import numpy as np

        source = """
        for i in range(2):
            for j in range(1):
                y[i] += 1 * y[a[i]]
        """
        with pytest.raises(InvalidLoopError, match="1-D"):
            loop_from_source(source, arrays={"a": np.zeros((2, 2))})
